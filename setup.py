"""Setup shim.

This environment has no network and no ``wheel`` package, so PEP 660
editable installs fail; this shim lets ``pip install -e . --no-build-isolation
--no-use-pep517`` (legacy ``setup.py develop``) work offline.  All real
metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
