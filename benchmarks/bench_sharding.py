"""Sharded-engine benchmark — records/sec scaling vs shard count.

Runs the identical streaming workload (stationary stream, KNN reservoir
miner, privacy refresh off — the pure data path) at increasing shard
counts and reports sustained records/second plus the speedup over the
single-shard serial reference.  Because the engine is bit-deterministic,
the benchmark also doubles as an end-to-end correctness check: every
configuration must reproduce the reference accuracy-deviation series
exactly.

Two entry points:

* ``pytest benchmarks/bench_sharding.py`` — pytest-benchmark harness,
  saves the rendered block under ``benchmarks/results/``;
* ``python benchmarks/bench_sharding.py [--quick]`` — standalone sweep
  (no pytest needed), printing the scaling table; ``--quick`` shrinks the
  workload for CI smoke runs.

The workload sizes the per-window shard work (KNN distance blocks over a
large reservoir, stacked transform matmuls) to dominate the driver's
sequential control plane; on a multi-core host the process backend is
expected to clear 1.5x at 4 shards.  Budget knobs:
``REPRO_BENCH_SHARD_WINDOWS``, ``REPRO_BENCH_SHARD_WINDOW_SIZE``,
``REPRO_BENCH_SHARD_CAPACITY``, ``REPRO_BENCH_SHARD_COUNTS``.
"""

import argparse
import os
import sys

from repro.analysis.reporting import ascii_table, series_block
from repro.streaming import StreamConfig, make_stream, run_stream_session

from _util import budget_from_env, save_block

N_WINDOWS = budget_from_env("REPRO_BENCH_SHARD_WINDOWS", 24)
WINDOW_SIZE = budget_from_env("REPRO_BENCH_SHARD_WINDOW_SIZE", 256)
CAPACITY = budget_from_env("REPRO_BENCH_SHARD_CAPACITY", 2048)
SHARD_COUNTS = tuple(
    int(v)
    for v in os.environ.get("REPRO_BENCH_SHARD_COUNTS", "1,2,4").split(",")
)


def _run(shards, backend, n_windows=N_WINDOWS, window_size=WINDOW_SIZE,
         capacity=CAPACITY):
    source = make_stream(
        "wine", kind="stationary", n_records=n_windows * window_size, seed=0
    )
    config = StreamConfig(
        k=3,
        window_size=window_size,
        classifier="knn",
        classifier_params=(("capacity", capacity),),
        compute_privacy=False,
        shards=shards,
        shard_backend=backend,
        seed=0,
    )
    return run_stream_session(source, config)


def _sweep(backend, shard_counts, **kwargs):
    """Run the sweep; returns (rows, reference_result)."""
    reference = _run(1, "serial", **kwargs)
    rows = [["1", "serial", f"{reference.throughput:,.0f}", "1.00x", "yes"]]
    for shards in shard_counts:
        if shards == 1:
            continue
        result = _run(shards, backend, **kwargs)
        identical = (
            result.deviation_series() == reference.deviation_series()
            and result.accuracy_perturbed == reference.accuracy_perturbed
        )
        rows.append(
            [
                str(shards),
                backend,
                f"{result.throughput:,.0f}",
                f"{result.throughput / reference.throughput:.2f}x",
                "yes" if identical else "NO",
            ]
        )
        assert identical, (
            f"shards={shards} ({backend}) diverged from the serial reference"
        )
    return rows, reference


def test_sharding_scaling(benchmark):
    """pytest-benchmark entry: time the 4-shard run, save the sweep table."""
    rows, reference = _sweep("process", SHARD_COUNTS)
    top = max(SHARD_COUNTS)
    result = benchmark.pedantic(
        lambda: _run(top, "process"), rounds=1, iterations=1
    )
    assert result.deviation_series() == reference.deviation_series()
    save_block(
        "sharding_scaling",
        series_block(
            f"Sharding - records/sec scaling (wine, stationary, k=3, "
            f"KNN capacity {CAPACITY}, window {WINDOW_SIZE})",
            ascii_table(
                ["shards", "backend", "records/sec", "speedup", "identical"],
                rows,
            ),
        ),
    )


def main(argv=None):
    """Standalone sweep: ``python benchmarks/bench_sharding.py [--quick]``."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: a small workload, shards 1 and 4 only",
    )
    parser.add_argument(
        "--backend",
        default="process",
        choices=["serial", "thread", "process"],
    )
    args = parser.parse_args(argv)

    kwargs = {}
    shard_counts = SHARD_COUNTS
    if args.quick:
        kwargs = {"n_windows": 8, "window_size": 64, "capacity": 256}
        shard_counts = (1, 4)
    rows, _ = _sweep(args.backend, shard_counts, **kwargs)
    print(
        series_block(
            f"Sharding - records/sec scaling ({args.backend} backend"
            f"{', quick' if args.quick else ''})",
            ascii_table(
                ["shards", "backend", "records/sec", "speedup", "identical"],
                rows,
            ),
        )
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
