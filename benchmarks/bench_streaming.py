"""Streaming benchmarks — sustained throughput and re-adaptation latency.

Two measurements for the online subsystem:

1. records/second of the full streaming pipeline (windowing, incremental
   normalization, per-party perturbation + adaptation, reservoir-KNN
   prequential mining) on a stationary stream, privacy evaluation off —
   the pure data-path number;
2. wall-clock latency of one space re-negotiation (simnet exchange of
   target parameters and adaptors, model migration included) measured on
   an abrupt-drift stream, privacy refresh on — the cost a drift event
   adds to the pipeline.
"""

import numpy as np

from repro.analysis.reporting import format_mapping, series_block
from repro.streaming import StreamConfig, make_stream, run_stream_session

from _util import budget_from_env, save_block

N_WINDOWS = budget_from_env("REPRO_BENCH_STREAM_WINDOWS", 40)
WINDOW_SIZE = budget_from_env("REPRO_BENCH_STREAM_WINDOW_SIZE", 64)


def test_stream_throughput(benchmark):
    source = make_stream(
        "wine", kind="stationary", n_records=N_WINDOWS * WINDOW_SIZE, seed=0
    )
    config = StreamConfig(
        k=3, window_size=WINDOW_SIZE, compute_privacy=False, seed=0
    )

    result = benchmark(lambda: run_stream_session(source, config))
    save_block(
        "streaming_throughput",
        series_block(
            "Streaming - sustained throughput (wine, stationary, k=3, KNN)",
            format_mapping(
                {
                    "records": result.records_processed,
                    "windows": result.windows and len(result.windows),
                    "records/sec": result.throughput,
                    "re-adaptations": result.readaptations,
                    "deviation (points)": result.deviation,
                }
            ),
        ),
    )
    assert result.readaptations == 0
    assert len(result.windows) == N_WINDOWS


def test_stream_readaptation_latency(benchmark):
    source = make_stream(
        "wine", kind="abrupt", n_records=N_WINDOWS * WINDOW_SIZE, seed=0
    )
    config = StreamConfig(k=3, window_size=WINDOW_SIZE, seed=0)

    result = benchmark.pedantic(
        lambda: run_stream_session(source, config), rounds=1, iterations=1
    )
    latencies = [e.latency for e in result.events]
    save_block(
        "streaming_readaptation",
        series_block(
            "Streaming - re-adaptation latency (wine, abrupt drift, k=3)",
            format_mapping(
                {
                    "negotiations": len(result.events),
                    "re-adaptations": result.readaptations,
                    "mean latency (ms)": 1000 * float(np.mean(latencies)),
                    "max latency (ms)": 1000 * float(np.max(latencies)),
                    "negotiation msgs": result.messages_sent,
                    "negotiation bytes": result.bytes_sent,
                    "deviation (points)": result.deviation,
                }
            ),
        ),
    )
    assert result.readaptations >= 1
