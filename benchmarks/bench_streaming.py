"""Streaming benchmarks — sustained throughput and re-adaptation latency.

Three measurements for the online subsystem:

1. records/second of the full streaming pipeline (windowing, incremental
   normalization, per-party perturbation + adaptation, reservoir-KNN
   prequential mining) on a stationary stream, privacy evaluation off —
   the pure data-path number;
2. wall-clock latency of one space re-negotiation (simnet exchange of
   target parameters and adaptors, model migration included) measured on
   an abrupt-drift stream, privacy refresh on — the cost a drift event
   adds to the pipeline;
3. the window transform before/after: the original per-party
   perturb-then-adapt loop vs the stacked single-matmul transform the
   sharded engine runs (``A_it(G_i(x)) = R_t x + t_t + noise``), with an
   equivalence check on the noise-free part.
"""

import time

import numpy as np

from repro.analysis.reporting import format_mapping, series_block
from repro.core.adaptation import compute_adaptor
from repro.core.normalization import MinMaxNormalizer
from repro.core.perturbation import sample_perturbation
from repro.sharding import transform_window
from repro.streaming import StreamConfig, make_stream, run_stream_session

from _util import budget_from_env, save_block

N_WINDOWS = budget_from_env("REPRO_BENCH_STREAM_WINDOWS", 40)
WINDOW_SIZE = budget_from_env("REPRO_BENCH_STREAM_WINDOW_SIZE", 64)


def test_stream_throughput(benchmark):
    source = make_stream(
        "wine", kind="stationary", n_records=N_WINDOWS * WINDOW_SIZE, seed=0
    )
    config = StreamConfig(
        k=3, window_size=WINDOW_SIZE, compute_privacy=False, seed=0
    )

    result = benchmark(lambda: run_stream_session(source, config))
    save_block(
        "streaming_throughput",
        series_block(
            "Streaming - sustained throughput (wine, stationary, k=3, KNN)",
            format_mapping(
                {
                    "records": result.records_processed,
                    "windows": result.windows and len(result.windows),
                    "records/sec": result.throughput,
                    "re-adaptations": result.readaptations,
                    "deviation (points)": result.deviation,
                }
            ),
        ),
    )
    assert result.readaptations == 0
    assert len(result.windows) == N_WINDOWS


def test_stream_readaptation_latency(benchmark):
    source = make_stream(
        "wine", kind="abrupt", n_records=N_WINDOWS * WINDOW_SIZE, seed=0
    )
    config = StreamConfig(k=3, window_size=WINDOW_SIZE, seed=0)

    result = benchmark.pedantic(
        lambda: run_stream_session(source, config), rounds=1, iterations=1
    )
    latencies = [e.latency for e in result.events]
    save_block(
        "streaming_readaptation",
        series_block(
            "Streaming - re-adaptation latency (wine, abrupt drift, k=3)",
            format_mapping(
                {
                    "negotiations": len(result.events),
                    "re-adaptations": result.readaptations,
                    "mean latency (ms)": 1000 * float(np.mean(latencies)),
                    "max latency (ms)": 1000 * float(np.max(latencies)),
                    "negotiation msgs": result.messages_sent,
                    "negotiation bytes": result.bytes_sent,
                    "deviation (points)": result.deviation,
                }
            ),
        ),
    )
    assert result.readaptations >= 1


def test_window_transform_stacked_vs_looped(benchmark):
    """Before/after of the per-window transform: party loop vs stacked matmul."""
    k, n, d = 3, 512, 13
    rng = np.random.default_rng(0)
    X = rng.normal(size=(n, d))
    minimums, maximums = X.min(axis=0), X.max(axis=0)
    perturbations = [sample_perturbation(d, rng) for _ in range(k)]
    target = sample_perturbation(d, rng, noise_sigma=0.0)
    adaptors = [compute_adaptor(p, target) for p in perturbations]
    task = {
        "X": X,
        "norm_kind": "minmax",
        "norm_a": minimums,
        "norm_b": maximums,
        "rotation": target.rotation,
        "translation": target.translation,
        "adaptor_rotations": np.stack([a.rotation_adaptor for a in adaptors]),
        "sigmas": np.zeros(k),  # noise-free so both paths are comparable
        "noise_root": 0,
        "window_index": 0,
    }

    def looped():
        # The seed implementation: normalize, then per party perturb the
        # party's rows and adapt them into the target space.
        X_norm = MinMaxNormalizer(minimums=minimums, maximums=maximums).transform(X)
        X_target = np.empty_like(X_norm)
        parties = np.arange(n) % k
        for party in range(k):
            rows = parties == party
            perturbed = perturbations[party].without_noise().apply(X_norm[rows].T)
            X_target[rows] = np.asarray(
                adaptors[party].apply(np.asarray(perturbed))
            ).T
        return X_target

    np.testing.assert_allclose(
        transform_window(task)["X_target"], looped(), atol=1e-9
    )

    rounds = 300
    began = time.perf_counter()
    for _ in range(rounds):
        looped()
    looped_seconds = (time.perf_counter() - began) / rounds
    stacked = benchmark(lambda: transform_window(task))
    stacked_seconds = benchmark.stats.stats.mean
    save_block(
        "streaming_transform_stacked",
        series_block(
            "Streaming - window transform, per-party loop vs stacked matmul",
            format_mapping(
                {
                    "rows x dims": f"{n} x {d} (k={k})",
                    "looped (us)": looped_seconds * 1e6,
                    "stacked (us)": stacked_seconds * 1e6,
                    "speedup": looped_seconds / stacked_seconds,
                }
            ),
        ),
    )
    assert stacked is not None
