"""Figure 5 — KNN accuracy deviation across the 12 datasets.

Runs the full SAP pipeline (partition, local perturbation, random exchange,
space adaptation, pooled training at the miner) with a KNN classifier for
every dataset under both partition distributions, and reports the deviation
from the unperturbed baseline trained on the identical rows.

Reproduced shape: deviations within a few accuracy points, mostly <= 0."""

import numpy as np

from repro.analysis.figures import figure5_series
from repro.analysis.reporting import ascii_table, series_block
from repro.datasets.registry import DATASET_NAMES

from _util import budget_from_env, save_block

REPEATS = budget_from_env("REPRO_BENCH_FIG5_REPEATS", 2)


def test_fig5_knn_accuracy_deviation(benchmark):
    series = benchmark.pedantic(
        lambda: figure5_series(k=5, repeats=REPEATS, seed=0),
        rounds=1,
        iterations=1,
    )

    headers = ["dataset", "SAP - Uniform", "SAP - Class"]
    rows = [
        [name, series[(name, "uniform")], series[(name, "class")]]
        for name in DATASET_NAMES
    ]
    save_block(
        "fig5_knn_accuracy",
        series_block(
            "Figure 5 - KNN accuracy deviation (percentage points, "
            f"{REPEATS} repeats)",
            ascii_table(headers, rows, float_format="{:+.2f}"),
        ),
    )

    values = np.array(list(series.values()))
    # Paper's band: deviations within roughly [-7, +3] points.
    assert np.all(values > -12.0) and np.all(values < 6.0)
    # Most datasets lose at most a little accuracy (mean deviation <= 0).
    assert values.mean() <= 0.5
