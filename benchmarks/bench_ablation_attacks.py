"""Ablation — which adversary model binds the privacy guarantee.

DESIGN.md ablation #3: evaluate one random geometric perturbation against
each attack separately.  The expected ordering (naive weakest, the
known-sample family strongest) is the SDM'07 result that motivates both
the optimizer and the noise component."""

from repro.analysis.experiments import attack_ablation
from repro.analysis.reporting import format_mapping, series_block

from _util import save_block


def test_ablation_attack_suite(benchmark):
    stats = benchmark.pedantic(
        lambda: attack_ablation(dataset="diabetes", noise_sigma=0.05, seed=0),
        rounds=1,
        iterations=1,
    )
    save_block(
        "ablation_attacks",
        series_block(
            "Ablation - per-attack privacy guarantee (diabetes, sigma=0.05)",
            format_mapping(stats),
        ),
    )
    # The guarantee equals the strongest attack, and insider attacks beat
    # the naive statistics-only attack.
    per_attack = {k: v for k, v in stats.items() if k != "guarantee"}
    assert stats["guarantee" ] == min(per_attack.values())
    assert per_attack["known_sample"] <= per_attack["naive"]
