"""Figure 3 — sample optimality rates vs the number of parties.

Partitions Diabetes/Shuttle/Votes into k = 5..10 local tables under both
partition distributions, runs each party's randomized optimization, and
reports the mean optimality rate ``rho_bar / b_hat`` — the paper's Figure 3
series (values in roughly [0.8, 1.0])."""

from repro.analysis.figures import figure3_series
from repro.analysis.reporting import ascii_table, series_block

from _util import budget_from_env, save_block

N_ROUNDS = budget_from_env("REPRO_BENCH_FIG3_ROUNDS", 10)
K_VALUES = (5, 6, 7, 8, 9, 10)


def test_fig3_optimality_rates(benchmark):
    series = benchmark.pedantic(
        lambda: figure3_series(
            k_values=K_VALUES, n_rounds=N_ROUNDS, local_steps=5, seed=0
        ),
        rounds=1,
        iterations=1,
    )

    headers = ["dataset - scheme"] + [f"k={k}" for k in K_VALUES]
    rows = []
    for (name, scheme), rates in sorted(series.items()):
        rows.append([f"{name} - {scheme}"] + [rates[k] for k in K_VALUES])
    save_block(
        "fig3_optimality_rates",
        series_block(
            "Figure 3 - optimality rate vs number of parties",
            ascii_table(headers, rows),
        ),
    )

    # Reproduced shape: rates live in the paper's (0.75, 1.0] band.
    for rates in series.values():
        for value in rates.values():
            assert 0.6 < value <= 1.0
