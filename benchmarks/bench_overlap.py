"""Pipelined-rounds benchmark — overlap vs serial dispatch latency hiding.

Runs the same streaming session twice per configuration over a thread
worker pool: once with ``overlap=False`` (the driver blocks on every
round's transforms and predictions) and once with ``overlap=True`` (round
``N+1``'s transforms and round ``N``'s predictions occupy the pool while
the driver runs the control plane).  Reports records/second for both and
the speedup, i.e. how much driver round-dispatch latency the pipeline
hides.  Because overlap is bit-deterministic, the benchmark doubles as a
correctness check: every pipelined run must reproduce the serial-dispatch
fingerprint exactly.

On a single hardware core the two dispatch modes collapse to the same
wall time (there is nobody to overlap *with*); the speedup column is
meaningful on multi-core hosts.

Two entry points:

* ``pytest benchmarks/bench_overlap.py`` — pytest-benchmark harness,
  saves the rendered block under ``benchmarks/results/``;
* ``python benchmarks/bench_overlap.py [--quick]`` — standalone sweep
  (no pytest needed); ``--quick`` shrinks the stream for CI smoke runs.

Budget knobs: ``REPRO_BENCH_OVERLAP_WINDOWS``,
``REPRO_BENCH_OVERLAP_WINDOW_SIZE``, ``REPRO_BENCH_OVERLAP_SHARDS``
(comma-separated sweep).
"""

import argparse
import os
import sys
import time

from repro.analysis.reporting import ascii_table, series_block
from repro.streaming import StreamConfig, make_stream, run_stream_session

from _util import budget_from_env, record_trajectory, save_block

N_WINDOWS = budget_from_env("REPRO_BENCH_OVERLAP_WINDOWS", 24)
WINDOW_SIZE = budget_from_env("REPRO_BENCH_OVERLAP_WINDOW_SIZE", 64)
SHARD_LEVELS = tuple(
    int(v)
    for v in os.environ.get("REPRO_BENCH_OVERLAP_SHARDS", "2,4,8").split(",")
)


def _fingerprint(result):
    """The deterministic core of a stream result, for identity checks."""
    return (
        result.deviation_series(),
        result.messages_sent,
        result.data_bytes_sent,
        [(e.reason, e.window) for e in result.events],
    )


def _run(n_windows, window_size, shards, overlap, backend="thread", seed=0):
    """One timed session; returns (result, wall seconds)."""
    source = make_stream(
        "wine", kind="stationary", n_records=n_windows * window_size, seed=seed
    )
    config = StreamConfig(
        k=3,
        window_size=window_size,
        compute_privacy=False,
        shards=shards,
        shard_backend=backend,
        overlap=overlap,
        seed=seed,
    )
    began = time.perf_counter()
    result = run_stream_session(source, config)
    return result, time.perf_counter() - began


def _sweep(n_windows, window_size, shard_levels):
    """Serial-dispatch vs pipelined, one row + raw metrics per shard level."""
    rows, metrics = [], {}
    for shards in shard_levels:
        serial, serial_wall = _run(n_windows, window_size, shards, overlap=False)
        piped, piped_wall = _run(n_windows, window_size, shards, overlap=True)
        identical = _fingerprint(piped) == _fingerprint(serial)
        assert identical, f"shards={shards}: overlap diverged from serial dispatch"
        assert piped.overlap and not serial.overlap
        serial_rps = serial.records_processed / serial_wall
        piped_rps = piped.records_processed / piped_wall
        speedup = serial_wall / piped_wall
        metrics[f"shards={shards}"] = {
            "serial_records_per_s": round(serial_rps, 1),
            "overlap_records_per_s": round(piped_rps, 1),
            "speedup": round(speedup, 3),
        }
        rows.append(
            [
                str(shards),
                f"{serial_rps:,.0f}",
                f"{piped_rps:,.0f}",
                f"{speedup:.2f}x",
                "yes" if identical else "NO",
            ]
        )
    return rows, metrics


HEADERS = ["shards", "serial rec/s", "overlap rec/s", "speedup", "identical"]


def test_overlap_throughput(benchmark):
    """pytest-benchmark entry: time the widest level, save the sweep table."""
    rows, _ = _sweep(N_WINDOWS, WINDOW_SIZE, SHARD_LEVELS)
    top = max(SHARD_LEVELS)
    result, _ = benchmark.pedantic(
        lambda: _run(N_WINDOWS, WINDOW_SIZE, top, overlap=True),
        rounds=1,
        iterations=1,
    )
    assert result.overlap
    save_block(
        "overlap_throughput",
        series_block(
            f"Pipelined rounds - overlap vs serial dispatch (wine, "
            f"{N_WINDOWS}x{WINDOW_SIZE}, thread pool)",
            ascii_table(HEADERS, rows),
        ),
    )


def main(argv=None):
    """Standalone sweep: ``python benchmarks/bench_overlap.py [--quick]``."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: a small stream, shards 2 and 4 only",
    )
    parser.add_argument(
        "--out",
        metavar="BENCH_JSON",
        help="append this run to a perf-trajectory file (e.g. BENCH_overlap.json)",
    )
    parser.add_argument(
        "--timestamp",
        help="entry timestamp (default: $REPRO_BENCH_TIMESTAMP, else now UTC)",
    )
    args = parser.parse_args(argv)

    n_windows, window_size = N_WINDOWS, WINDOW_SIZE
    shard_levels = SHARD_LEVELS
    if args.quick:
        n_windows, window_size = 6, 32
        shard_levels = (2, 4)
    rows, metrics = _sweep(n_windows, window_size, shard_levels)
    print(
        series_block(
            f"Pipelined rounds - overlap vs serial dispatch (thread pool"
            f"{', quick' if args.quick else ''})",
            ascii_table(HEADERS, rows),
        )
    )
    if args.out:
        record_trajectory(
            args.out,
            "overlap",
            {
                "n_windows": n_windows,
                "window_size": window_size,
                "quick": args.quick,
                **metrics,
            },
            timestamp=args.timestamp,
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
