"""Pipelined-rounds benchmark — overlap vs serial dispatch latency hiding.

Runs the same streaming session twice per configuration over a thread
worker pool: once with ``overlap=False`` (the driver blocks on every
round's transforms and predictions) and once with ``overlap=True`` (round
``N+1``'s transforms and round ``N``'s predictions occupy the pool while
the driver runs the control plane).  Reports records/second for both and
the speedup, i.e. how much driver round-dispatch latency the pipeline
hides.  Because overlap is bit-deterministic, the benchmark doubles as a
correctness check: every pipelined run must reproduce the serial-dispatch
fingerprint exactly.

On a single hardware core the two dispatch modes collapse to the same
wall time (there is nobody to overlap *with*); the speedup column is
meaningful on multi-core hosts.

Two entry points:

* ``pytest benchmarks/bench_overlap.py`` — pytest-benchmark harness,
  saves the rendered block under ``benchmarks/results/``;
* ``python benchmarks/bench_overlap.py [--quick]`` — standalone sweep
  (no pytest needed); ``--quick`` shrinks the stream for CI smoke runs.

Budget knobs: ``REPRO_BENCH_OVERLAP_WINDOWS``,
``REPRO_BENCH_OVERLAP_WINDOW_SIZE``, ``REPRO_BENCH_OVERLAP_SHARDS``
(comma-separated sweep).
"""

import argparse
import os
import sys
import time

from repro.analysis.reporting import ascii_table, series_block
from repro.streaming import StreamConfig, make_stream, run_stream_session

from _util import budget_from_env, save_block

N_WINDOWS = budget_from_env("REPRO_BENCH_OVERLAP_WINDOWS", 24)
WINDOW_SIZE = budget_from_env("REPRO_BENCH_OVERLAP_WINDOW_SIZE", 64)
SHARD_LEVELS = tuple(
    int(v)
    for v in os.environ.get("REPRO_BENCH_OVERLAP_SHARDS", "2,4,8").split(",")
)


def _fingerprint(result):
    """The deterministic core of a stream result, for identity checks."""
    return (
        result.deviation_series(),
        result.messages_sent,
        result.data_bytes_sent,
        [(e.reason, e.window) for e in result.events],
    )


def _run(n_windows, window_size, shards, overlap, backend="thread", seed=0):
    """One timed session; returns (result, wall seconds)."""
    source = make_stream(
        "wine", kind="stationary", n_records=n_windows * window_size, seed=seed
    )
    config = StreamConfig(
        k=3,
        window_size=window_size,
        compute_privacy=False,
        shards=shards,
        shard_backend=backend,
        overlap=overlap,
        seed=seed,
    )
    began = time.perf_counter()
    result = run_stream_session(source, config)
    return result, time.perf_counter() - began


def _sweep(n_windows, window_size, shard_levels):
    """Serial-dispatch vs pipelined rows, one per shard level."""
    rows = []
    for shards in shard_levels:
        serial, serial_wall = _run(n_windows, window_size, shards, overlap=False)
        piped, piped_wall = _run(n_windows, window_size, shards, overlap=True)
        identical = _fingerprint(piped) == _fingerprint(serial)
        assert identical, f"shards={shards}: overlap diverged from serial dispatch"
        assert piped.overlap and not serial.overlap
        rows.append(
            [
                str(shards),
                f"{serial.records_processed / serial_wall:,.0f}",
                f"{piped.records_processed / piped_wall:,.0f}",
                f"{serial_wall / piped_wall:.2f}x",
                "yes" if identical else "NO",
            ]
        )
    return rows


HEADERS = ["shards", "serial rec/s", "overlap rec/s", "speedup", "identical"]


def test_overlap_throughput(benchmark):
    """pytest-benchmark entry: time the widest level, save the sweep table."""
    rows = _sweep(N_WINDOWS, WINDOW_SIZE, SHARD_LEVELS)
    top = max(SHARD_LEVELS)
    result, _ = benchmark.pedantic(
        lambda: _run(N_WINDOWS, WINDOW_SIZE, top, overlap=True),
        rounds=1,
        iterations=1,
    )
    assert result.overlap
    save_block(
        "overlap_throughput",
        series_block(
            f"Pipelined rounds - overlap vs serial dispatch (wine, "
            f"{N_WINDOWS}x{WINDOW_SIZE}, thread pool)",
            ascii_table(HEADERS, rows),
        ),
    )


def main(argv=None):
    """Standalone sweep: ``python benchmarks/bench_overlap.py [--quick]``."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: a small stream, shards 2 and 4 only",
    )
    args = parser.parse_args(argv)

    n_windows, window_size = N_WINDOWS, WINDOW_SIZE
    shard_levels = SHARD_LEVELS
    if args.quick:
        n_windows, window_size = 6, 32
        shard_levels = (2, 4)
    rows = _sweep(n_windows, window_size, shard_levels)
    print(
        series_block(
            f"Pipelined rounds - overlap vs serial dispatch (thread pool"
            f"{', quick' if args.quick else ''})",
            ascii_table(HEADERS, rows),
        )
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
