"""Serving-engine benchmark — sessions/sec and shard-pool utilization.

Submits the same mixed batch+stream workload to a
:class:`repro.serve.MiningService` at increasing concurrency
(``max_inflight``) over one shared worker pool, and reports sustained
sessions/second, the speedup over sequential submission, and the shared
pool's utilization.  Because the engine is bit-deterministic, the
benchmark doubles as a correctness check: every concurrency level must
reproduce the sequential reference result-for-result.

Two entry points:

* ``pytest benchmarks/bench_serve.py`` — pytest-benchmark harness, saves
  the rendered block under ``benchmarks/results/``;
* ``python benchmarks/bench_serve.py [--quick]`` — standalone sweep (no
  pytest needed); ``--quick`` shrinks the workload for CI smoke runs.

Budget knobs: ``REPRO_BENCH_SERVE_SESSIONS``,
``REPRO_BENCH_SERVE_WINDOWS``, ``REPRO_BENCH_SERVE_WINDOW_SIZE``,
``REPRO_BENCH_SERVE_INFLIGHT`` (comma-separated sweep).
"""

import argparse
import os
import sys
import time

from repro.analysis.reporting import ascii_table, series_block
from repro.serve import MiningService, SessionSpec

from _util import budget_from_env, record_trajectory, save_block

N_SESSIONS = budget_from_env("REPRO_BENCH_SERVE_SESSIONS", 12)
N_WINDOWS = budget_from_env("REPRO_BENCH_SERVE_WINDOWS", 6)
WINDOW_SIZE = budget_from_env("REPRO_BENCH_SERVE_WINDOW_SIZE", 64)
INFLIGHT_LEVELS = tuple(
    int(v)
    for v in os.environ.get("REPRO_BENCH_SERVE_INFLIGHT", "1,2,4,8").split(",")
)


def _workload(n_sessions, n_windows, window_size):
    """The mixed workload: alternating batch and stream specs, two tenants."""
    specs = []
    for index in range(n_sessions):
        tenant = "acme" if index % 2 == 0 else "globex"
        if index % 2 == 0:
            specs.append(
                SessionSpec(
                    kind="batch", dataset="wine", k=3, seed=index, tenant=tenant
                )
            )
        else:
            specs.append(
                SessionSpec(
                    kind="stream",
                    dataset="wine",
                    k=3,
                    windows=n_windows,
                    window_size=window_size,
                    compute_privacy=False,
                    seed=index,
                    tenant=tenant,
                )
            )
    return specs


def _fingerprint(result):
    """The deterministic core of a result, for cross-run comparison."""
    if hasattr(result, "deviation_series"):
        return ("stream", result.deviation_series(), result.messages_sent)
    return ("batch", result.accuracy_perturbed, result.messages_sent)


def _run(specs, max_inflight, backend="thread", workers=None):
    """One service run; returns (results, wall seconds, utilization)."""
    began = time.perf_counter()
    with MiningService(
        max_inflight=max_inflight,
        shard_backend=backend,
        shard_workers=workers if workers is not None else max(2, max_inflight // 2),
    ) as service:
        results = service.run(specs)
        stats = service.stats()
    wall = time.perf_counter() - began
    return results, wall, stats.pool.utilization


def _sweep(specs, inflight_levels, backend="thread"):
    """Run the sweep; returns (table rows, reference fingerprints, metrics)."""
    reference, base_wall, base_util = _run(specs, 1, backend="serial")
    fingerprints = [_fingerprint(r) for r in reference]
    metrics = {
        "inflight=1 (serial)": {
            "sessions_per_s": round(len(specs) / base_wall, 2),
            "speedup": 1.0,
            "pool_utilization": round(base_util, 3),
        }
    }
    rows = [
        [
            "1 (serial)",
            f"{len(specs) / base_wall:.2f}",
            "1.00x",
            f"{base_util * 100:.0f}%",
            "yes",
        ]
    ]
    for level in inflight_levels:
        if level == 1:
            continue
        results, wall, util = _run(specs, level, backend=backend)
        identical = [_fingerprint(r) for r in results] == fingerprints
        metrics[f"inflight={level}"] = {
            "sessions_per_s": round(len(specs) / wall, 2),
            "speedup": round(base_wall / wall, 3),
            "pool_utilization": round(util, 3),
        }
        rows.append(
            [
                str(level),
                f"{len(specs) / wall:.2f}",
                f"{base_wall / wall:.2f}x",
                f"{util * 100:.0f}%",
                "yes" if identical else "NO",
            ]
        )
        assert identical, (
            f"max_inflight={level} diverged from sequential submission"
        )
    return rows, fingerprints, metrics


HEADERS = ["max_inflight", "sessions/sec", "speedup", "pool util", "identical"]


def test_serve_throughput(benchmark):
    """pytest-benchmark entry: time the widest level, save the sweep table."""
    specs = _workload(N_SESSIONS, N_WINDOWS, WINDOW_SIZE)
    rows, fingerprints, _ = _sweep(specs, INFLIGHT_LEVELS)
    top = max(INFLIGHT_LEVELS)
    results, _, _ = benchmark.pedantic(
        lambda: _run(specs, top), rounds=1, iterations=1
    )
    assert [_fingerprint(r) for r in results] == fingerprints
    save_block(
        "serve_throughput",
        series_block(
            f"Serving - sessions/sec vs concurrency ({N_SESSIONS} mixed "
            f"sessions, wine, stream {N_WINDOWS}x{WINDOW_SIZE})",
            ascii_table(HEADERS, rows),
        ),
    )


def main(argv=None):
    """Standalone sweep: ``python benchmarks/bench_serve.py [--quick]``."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: a small workload, max_inflight 1 and 4 only",
    )
    parser.add_argument(
        "--backend",
        default="thread",
        choices=["serial", "thread", "process"],
    )
    parser.add_argument(
        "--out",
        metavar="BENCH_JSON",
        help="append this run to a perf-trajectory file (e.g. BENCH_serve.json)",
    )
    parser.add_argument(
        "--timestamp",
        help="entry timestamp (default: $REPRO_BENCH_TIMESTAMP, else now UTC)",
    )
    args = parser.parse_args(argv)

    n_sessions, n_windows, window_size = N_SESSIONS, N_WINDOWS, WINDOW_SIZE
    inflight_levels = INFLIGHT_LEVELS
    if args.quick:
        n_sessions, n_windows, window_size = 6, 3, 32
        inflight_levels = (1, 4)
    specs = _workload(n_sessions, n_windows, window_size)
    rows, _, metrics = _sweep(specs, inflight_levels, backend=args.backend)
    print(
        series_block(
            f"Serving - sessions/sec vs concurrency ({args.backend} pool"
            f"{', quick' if args.quick else ''})",
            ascii_table(HEADERS, rows),
        )
    )
    if args.out:
        record_trajectory(
            args.out,
            "serve",
            {
                "n_sessions": n_sessions,
                "n_windows": n_windows,
                "window_size": window_size,
                "backend": args.backend,
                "quick": args.quick,
                **metrics,
            },
            timestamp=args.timestamp,
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
