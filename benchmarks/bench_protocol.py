"""Protocol benchmarks — identifiability audit and end-to-end cost.

Two measurements:

1. the Monte-Carlo identifiability audit backing the paper's
   ``pi_i = 1/(k-1)`` claim (with our tag-join exchange the measured
   per-dataset attribution is ~1/k, inside the paper's bound);
2. wall-clock, message, and byte cost of one complete protocol run over
   the simulated network (KNN miner, wine dataset)."""

from repro.analysis.experiments import identifiability_monte_carlo
from repro.analysis.reporting import ascii_table, format_mapping, series_block
from repro.core.session import run_sap_session
from repro.datasets.registry import load_dataset
from repro.parties.config import ClassifierSpec, SAPConfig

from _util import budget_from_env, save_block

MC_RUNS = budget_from_env("REPRO_BENCH_MC_RUNS", 3000)


def test_protocol_identifiability(benchmark):
    stats_by_k = benchmark.pedantic(
        lambda: [
            identifiability_monte_carlo(k, n_runs=MC_RUNS, seed=0)
            for k in (2, 3, 5, 8, 10)
        ],
        rounds=1,
        iterations=1,
    )
    headers = list(stats_by_k[0])
    save_block(
        "protocol_identifiability",
        series_block(
            "Protocol - source identifiability (Monte Carlo vs analytic)",
            ascii_table(
                headers, [[row[h] for h in headers] for row in stats_by_k]
            ),
        ),
    )
    for stats in stats_by_k:
        assert stats["empirical_max"] <= stats["analytic"] + 0.05


def test_protocol_end_to_end_cost(benchmark):
    table = load_dataset("wine")
    config = SAPConfig(
        k=5, classifier=ClassifierSpec("knn", {"n_neighbors": 5}), seed=0
    )

    result = benchmark(lambda: run_sap_session(table, config))
    save_block(
        "protocol_cost",
        series_block(
            "Protocol - end-to-end cost (wine, k=5, KNN)",
            format_mapping(
                {
                    "messages": result.messages_sent,
                    "payload bytes": result.bytes_sent,
                    "virtual duration (ms)": result.virtual_duration * 1000,
                    "SAP accuracy": result.accuracy_perturbed,
                    "standard accuracy": result.accuracy_standard,
                    "deviation (points)": result.deviation,
                }
            ),
        ),
    )
    assert result.messages_sent >= config.k * 4
