"""Invariance matrix — which classifiers geometric perturbation preserves.

The ICDM'05 companion paper's taxonomy, measured: for each learner, train
on the original table and on a rotated+translated copy and record the
fraction of identical predictions on transformed probes.  Distance/
inner-product learners (KNN, SVM-RBF, LDA, linear models) should agree
(near-)exactly; the per-column learners (naive Bayes, decision tree) are
the negative controls the paper excludes."""

import numpy as np

from repro.analysis.reporting import ascii_table, series_block
from repro.core.normalization import MinMaxNormalizer
from repro.core.perturbation import perturb_rows, sample_perturbation
from repro.datasets.registry import load_dataset
from repro.parties.config import ClassifierSpec, make_classifier

from _util import save_block

LEARNERS = (
    ClassifierSpec("knn", {"n_neighbors": 5}),
    ClassifierSpec("svm_rbf", {"C": 1.0}),
    ClassifierSpec("lda"),
    ClassifierSpec("linear_svm", {"epochs": 15}),
    ClassifierSpec("perceptron", {"epochs": 10}),
    ClassifierSpec("naive_bayes"),
    ClassifierSpec("decision_tree", {"max_depth": 6}),
)

INVARIANT = {"knn", "svm_rbf", "lda"}
NON_INVARIANT = {"naive_bayes", "decision_tree"}


def measure_matrix(seed: int = 0):
    rng = np.random.default_rng(seed)
    table = load_dataset("wine")
    X = MinMaxNormalizer().fit_transform(table.X)
    y = table.y
    perturbation = sample_perturbation(X.shape[1], rng, noise_sigma=0.0)
    X_p = perturb_rows(perturbation, X)
    probes = rng.uniform(0, 1, size=(250, X.shape[1]))
    probes_p = perturb_rows(perturbation, probes)

    rows = []
    for spec in LEARNERS:
        plain = make_classifier(spec).fit(X, y)
        rotated = make_classifier(spec).fit(X_p, y)
        agreement = float(
            np.mean(plain.predict(probes) == rotated.predict(probes_p))
        )
        accuracy = float(np.mean(rotated.predict(X_p) == y))
        rows.append((spec.name, agreement, accuracy))
    return rows


def test_invariance_matrix(benchmark):
    rows = benchmark.pedantic(measure_matrix, rounds=1, iterations=1)
    save_block(
        "invariance_matrix",
        series_block(
            "Classifier invariance under rotation+translation (wine)",
            ascii_table(
                ["classifier", "prediction agreement", "train accuracy"],
                rows,
            ),
        ),
    )
    by_name = {name: agreement for name, agreement, _ in rows}
    for name in INVARIANT:
        assert by_name[name] == 1.0, f"{name} must be exactly invariant"
    for name in NON_INVARIANT:
        assert by_name[name] < 1.0, f"{name} should visibly change"
