"""Figure 4 — lower bound on the number of parties vs expected satisfaction.

Evaluates the closed-form bound k >= 1 + (1 - s0*O)/(1 - s0) over
s0 in [0.90, 0.99] for the three optimality rates the paper reads off
Figure 3 (Diabetes 0.95, Shuttle 0.89, Votes 0.98).  Reproduced shape:
monotone increasing in s0, diverging toward s0 -> 1, ordered by opt-rate."""

from repro.analysis.figures import FIGURE4_OPT_RATES, figure4_series
from repro.analysis.reporting import ascii_table, series_block

from _util import save_block


def test_fig4_minimum_parties(benchmark):
    series = benchmark.pedantic(figure4_series, rounds=1, iterations=1)

    s0_values = sorted(next(iter(series.values())))
    headers = ["dataset (opt-rate)"] + [f"s0={s0:.2f}" for s0 in s0_values]
    rows = []
    for name, by_s0 in sorted(series.items()):
        rows.append(
            [f"{name} ({FIGURE4_OPT_RATES[name]:.2f})"]
            + [by_s0[s0] for s0 in s0_values]
        )
    save_block(
        "fig4_minimum_parties",
        series_block(
            "Figure 4 - minimum number of parties vs expected satisfaction",
            ascii_table(headers, rows),
        ),
    )

    # Shape assertions: monotone in s0; lowest opt-rate needs most parties.
    for by_s0 in series.values():
        values = [by_s0[s0] for s0 in s0_values]
        assert values == sorted(values)
    assert series["shuttle"][0.99] > series["diabetes"][0.99] > series["votes"][0.99]
