"""Benchmark-suite configuration.

Adds the benchmarks directory to ``sys.path`` so the shared ``_util``
module imports regardless of how pytest was invoked."""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))
