"""Micro-benchmarks of the substrates (proper pytest-benchmark timings).

These are the only benches that use repeated timing rounds: they measure
the building blocks whose cost dominates the figure regenerations —
rotation sampling, perturbation application, the wire serializer + cipher,
KNN prediction, and SMO training."""

import numpy as np
import pytest

from repro.core.perturbation import sample_perturbation
from repro.core.rotation import haar_orthogonal
from repro.datasets.registry import load_dataset
from repro.mining.knn import KNNClassifier
from repro.mining.svm import BinarySVM
from repro.simnet import crypto
from repro.simnet.messages import deserialize_payload, serialize_payload


@pytest.fixture(scope="module")
def wine_rows():
    table = load_dataset("wine")
    return table.X, table.y


def test_bench_haar_rotation_sampling(benchmark):
    rng = np.random.default_rng(0)
    result = benchmark(lambda: haar_orthogonal(34, rng))
    assert result.shape == (34, 34)


def test_bench_perturbation_apply(benchmark):
    rng = np.random.default_rng(0)
    perturbation = sample_perturbation(16, rng, noise_sigma=0.05)
    X = rng.uniform(size=(16, 1000))
    result = benchmark(lambda: perturbation.apply(X, rng=rng))
    assert np.asarray(result).shape == (16, 1000)


def test_bench_payload_serialization(benchmark):
    payload = {"features": np.random.default_rng(0).uniform(size=(16, 700))}
    data = benchmark(lambda: serialize_payload(payload))
    assert deserialize_payload(data)["features"].shape == (16, 700)


def test_bench_transport_encryption(benchmark):
    rng = np.random.default_rng(0)
    key = crypto.derive_key("provider-0", "miner")
    plaintext = bytes(64 * 1024)

    def roundtrip():
        return crypto.decrypt(key, crypto.encrypt(key, plaintext, rng))

    assert benchmark(roundtrip) == plaintext


def test_bench_knn_predict(benchmark, wine_rows):
    X, y = wine_rows
    model = KNNClassifier(n_neighbors=5).fit(X, y)
    predictions = benchmark(lambda: model.predict(X))
    assert predictions.shape == y.shape


def test_bench_smo_training(benchmark, wine_rows):
    X, y = wine_rows
    binary = y != 2  # collapse to the first two cultivars
    X2, y2 = X[binary], y[binary]

    model = benchmark.pedantic(
        lambda: BinarySVM(kernel="rbf", C=1.0, seed=0).fit(X2, y2),
        rounds=3,
        iterations=1,
    )
    assert model.score(X2, y2) > 0.9
