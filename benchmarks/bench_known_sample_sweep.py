"""Ablation — attack strength vs the adversary's insider knowledge.

Sweeps the number of known input-output record pairs and reports the
privacy guarantee under the sample-based attacks (plain regression,
distance-inference matching, AK-ICA hybrid).  The reproduced claim: the
guarantee collapses toward the noise floor as the adversary accumulates
pairs — the reason the perturbation carries a noise component at all."""

from repro.analysis.experiments import known_sample_sweep
from repro.analysis.reporting import ascii_table, series_block

from _util import save_block

KNOWN_COUNTS = (0, 2, 5, 10, 20)


def test_known_sample_sweep(benchmark):
    rows = benchmark.pedantic(
        lambda: known_sample_sweep(
            dataset="diabetes", known_counts=KNOWN_COUNTS, noise_sigma=0.05,
            seed=0,
        ),
        rounds=1,
        iterations=1,
    )
    headers = list(rows[0])
    save_block(
        "known_sample_sweep",
        series_block(
            "Ablation - privacy vs known record pairs (diabetes, sigma=0.05)",
            ascii_table(headers, [[row[h] for h in headers] for row in rows]),
        ),
    )
    # With no pairs the sample attacks cannot bind; with 20 pairs the plain
    # regression approaches the noise floor.
    assert rows[0]["known_sample"] > rows[-1]["known_sample"]
    assert rows[-1]["known_sample"] < 0.6
