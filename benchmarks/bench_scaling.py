"""Scalability of the protocol: cost vs number of parties and table size.

Not a paper figure, but the natural systems question for a PODC artefact:
how do message count, payload volume, simulated wall-clock, and accuracy
behave as the federation grows?  Messages should grow linearly in k
(4k + O(1): per provider one dataset send, one forward, one adaptor, one
report, plus coordinator/miner control traffic), and payload volume should
be dominated by the two dataset hops."""

import numpy as np

from repro.analysis.reporting import ascii_table, series_block
from repro.core.session import run_sap_session
from repro.datasets.registry import load_dataset
from repro.datasets.schema import Dataset
from repro.parties.config import ClassifierSpec, SAPConfig

from _util import save_block


def sweep_parties(k_values=(2, 4, 6, 8, 12, 16), seed=0):
    table = load_dataset("credit_g")
    rows = []
    for k in k_values:
        config = SAPConfig(
            k=k, classifier=ClassifierSpec("knn", {"n_neighbors": 5}), seed=seed
        )
        result = run_sap_session(table, config)
        rows.append(
            (
                k,
                result.messages_sent,
                result.bytes_sent,
                result.virtual_duration * 1000,
                result.deviation,
            )
        )
    return rows


def sweep_rows(sizes=(200, 400, 800, 1600), seed=0):
    base = load_dataset("credit_g", seed=99)
    rng = np.random.default_rng(seed)
    rows = []
    for size in sizes:
        picks = np.sort(rng.choice(base.n_rows, size=min(size, base.n_rows), replace=False))
        # Upsample by tiling when more rows than the base are requested.
        while len(picks) < size:
            extra = rng.choice(base.n_rows, size=size - len(picks), replace=True)
            picks = np.concatenate([picks, extra])
        table = Dataset(
            name=f"credit_g[{size}]",
            X=base.X[picks].copy(),
            y=base.y[picks].copy(),
        )
        config = SAPConfig(
            k=5, classifier=ClassifierSpec("knn", {"n_neighbors": 5}), seed=seed
        )
        result = run_sap_session(table, config)
        rows.append(
            (
                size,
                result.bytes_sent,
                result.virtual_duration * 1000,
                result.deviation,
            )
        )
    return rows


def test_scaling_with_parties(benchmark):
    rows = benchmark.pedantic(sweep_parties, rounds=1, iterations=1)
    save_block(
        "scaling_parties",
        series_block(
            "Scaling - protocol cost vs number of parties (credit_g)",
            ascii_table(
                ["k", "messages", "bytes", "virtual ms", "deviation"],
                rows,
                float_format="{:.2f}",
            ),
        ),
    )
    messages = [row[1] for row in rows]
    ks = [row[0] for row in rows]
    # Linear growth in k: messages per party stay bounded.
    per_party = [m / k for m, k in zip(messages, ks)]
    assert max(per_party) <= 8.0
    assert messages == sorted(messages)


def test_scaling_with_table_size(benchmark):
    rows = benchmark.pedantic(sweep_rows, rounds=1, iterations=1)
    save_block(
        "scaling_rows",
        series_block(
            "Scaling - protocol cost vs table size (credit_g, k=5)",
            ascii_table(
                ["rows", "bytes", "virtual ms", "deviation"],
                rows,
                float_format="{:.2f}",
            ),
        ),
    )
    volumes = [row[1] for row in rows]
    assert volumes == sorted(volumes)
    # Payload volume is dominated by the two dataset hops: ~linear in rows.
    ratio = volumes[-1] / volumes[0]
    assert 4.0 < ratio < 16.0
