"""Ablation — satisfaction-aware target selection (protocol extension).

The paper fixes a single random target; this extension lets providers vote
over several candidates with scalar satisfaction estimates.  The bench
quantifies the satisfaction/guarantee gain at equal protocol cost
otherwise."""

from repro.analysis.experiments import target_selection_ablation
from repro.analysis.reporting import ascii_table, series_block

from _util import budget_from_env, save_block

REPEATS = budget_from_env("REPRO_BENCH_TARGETSEL_REPEATS", 3)


def test_ablation_target_selection(benchmark):
    rows = benchmark.pedantic(
        lambda: target_selection_ablation(
            dataset="heart", candidate_counts=(1, 2, 4, 8), k=4,
            repeats=REPEATS, seed=0,
        ),
        rounds=1,
        iterations=1,
    )
    headers = list(rows[0])
    save_block(
        "ablation_target_selection",
        series_block(
            "Ablation - target selection: random (paper) vs voting extension",
            ascii_table(headers, [[row[h] for h in headers] for row in rows]),
        ),
    )
    # More candidates should not reduce the mean global guarantee much.
    assert rows[-1]["mean_rho_global"] >= rows[0]["mean_rho_global"] - 0.05
