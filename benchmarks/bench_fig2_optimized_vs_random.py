"""Figure 2 — optimized perturbations give higher privacy than random ones.

Regenerates the distribution comparison behind the paper's Figure 2: the
minimum privacy guarantee of n random perturbations vs. n optimized ones on
one dataset.  The reproduced claim is *stochastic dominance*: the optimized
mean (and minimum) sits above the random one.
"""

import numpy as np

from repro.analysis.figures import figure2_series
from repro.analysis.reporting import format_mapping, series_block, text_histogram

from _util import budget_from_env, save_block

N_ROUNDS = budget_from_env("REPRO_BENCH_FIG2_ROUNDS", 40)


def test_fig2_optimized_vs_random(benchmark):
    series = benchmark.pedantic(
        lambda: figure2_series(
            dataset="diabetes", n_rounds=N_ROUNDS, local_steps=8, seed=0
        ),
        rounds=1,
        iterations=1,
    )
    random_vals = np.array(series["random"])
    optimized_vals = np.array(series["optimized"])

    body = "\n\n".join(
        [
            text_histogram(series["random"], label="random perturbations"),
            text_histogram(series["optimized"], label="optimized perturbations"),
            format_mapping(
                {
                    "rounds": N_ROUNDS,
                    "mean random": float(random_vals.mean()),
                    "mean optimized": float(optimized_vals.mean()),
                    "min random": float(random_vals.min()),
                    "min optimized": float(optimized_vals.min()),
                    "gain (mean)": float(
                        optimized_vals.mean() - random_vals.mean()
                    ),
                }
            ),
        ]
    )
    save_block(
        "fig2_optimized_vs_random",
        series_block("Figure 2 - privacy guarantee distribution (diabetes)", body),
    )

    # The paper's claim, asserted.
    assert optimized_vals.mean() > random_vals.mean()
    assert optimized_vals.min() >= random_vals.min()
