"""Ablation — random search vs hill climbing in the perturbation optimizer.

DESIGN.md ablation #1: does the local row-swap/Givens search add anything
over pure random restarts at matched round counts?"""

from repro.analysis.experiments import optimizer_ablation
from repro.analysis.reporting import format_mapping, series_block

from _util import budget_from_env, save_block

N_ROUNDS = budget_from_env("REPRO_BENCH_ABL_ROUNDS", 15)


def test_ablation_optimizer_strategy(benchmark):
    stats = benchmark.pedantic(
        lambda: optimizer_ablation(
            dataset="diabetes", n_rounds=N_ROUNDS, local_steps=8, seed=0
        ),
        rounds=1,
        iterations=1,
    )
    blocks = [
        format_mapping({"strategy": name, **values})
        for name, values in stats.items()
    ]
    save_block(
        "ablation_optimizer",
        series_block("Ablation - optimizer strategy", "\n\n".join(blocks)),
    )
    assert (
        stats["hill_climbing"]["rho_bar"]
        >= stats["random_search"]["rho_bar"] - 1e-9
    )
