"""Risk model — the numbers behind equations (1) and (2).

Sweeps the breach-risk equations over the number of parties and over
satisfaction levels, the quantitative backbone of Sections 2-3."""

from repro.analysis.experiments import risk_sweep
from repro.analysis.reporting import ascii_table, series_block
from repro.core.risk import risk_of_breach, sap_risk, source_identifiability

from _util import save_block


def test_risk_model_sweep(benchmark):
    rows = benchmark.pedantic(
        lambda: risk_sweep(
            k_values=(2, 3, 4, 5, 6, 8, 10, 15, 20), satisfaction=0.95,
            opt_rate=0.9,
        ),
        rounds=1,
        iterations=1,
    )

    headers = list(rows[0])
    table = ascii_table(headers, [[row[h] for h in headers] for row in rows])

    # Satisfaction sweep at fixed k = 5.
    sat_rows = []
    for s in (0.5, 0.7, 0.8, 0.9, 0.95, 1.0):
        sat_rows.append(
            [
                s,
                risk_of_breach(source_identifiability(5), s, 0.9, 1.0),
                sap_risk(1.0, 0.9, s, 5),
            ]
        )
    sat_table = ascii_table(["satisfaction", "risk_eq1", "risk_eq2"], sat_rows)

    save_block(
        "risk_model",
        series_block(
            "Risk model - equations (1) and (2)",
            table + "\n\nsatisfaction sweep at k=5, opt-rate 0.9\n" + sat_table,
        ),
    )

    # eq.(1) risk falls with k; eq.(2) is bounded below by the provider view.
    eq1 = [row["risk_eq1"] for row in rows]
    assert eq1 == sorted(eq1, reverse=True)
    standalone = rows[0]["standalone"]
    assert all(row["risk_eq2"] >= standalone - 1e-12 for row in rows[3:])
