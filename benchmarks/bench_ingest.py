"""Event-time ingestion benchmark — records/sec and seal latency vs skew.

Two measurements for the ingestion plane introduced by the event-time
redesign, reported alongside ``bench_streaming.py``'s end-to-end numbers:

1. **ingest throughput** — records/second through the bare
   :class:`~repro.streaming.ingest.IngestPlane` (gates, per-shard window
   buffers, watermark sealing; no mining), swept over arrival skew and
   watermark delay.  This is the pure cost of the push-based data plane.
2. **seal latency** — how long a window waits to seal, measured in
   *records past its last sequence number* (the event-space latency an
   operator trades against late-record risk), for the same sweep.

Two entry points:

* ``pytest benchmarks/bench_ingest.py`` — pytest-benchmark harness,
  saves the rendered block under ``benchmarks/results/``;
* ``python benchmarks/bench_ingest.py [--quick]`` — standalone sweep
  (no pytest needed); ``--quick`` shrinks the workload for CI smoke runs.

Budget knobs: ``REPRO_BENCH_INGEST_RECORDS``,
``REPRO_BENCH_INGEST_WINDOW_SIZE``.
"""

import argparse
import sys
import time

from repro.analysis.reporting import ascii_table, series_block
from repro.sharding import ShardPlan
from repro.streaming import IngestPlane, StreamConfig
from repro.streaming import make_stream, run_stream_session, skewed

from _util import budget_from_env, record_trajectory, save_block

N_RECORDS = budget_from_env("REPRO_BENCH_INGEST_RECORDS", 20_000)
WINDOW_SIZE = budget_from_env("REPRO_BENCH_INGEST_WINDOW_SIZE", 64)
SWEEP = ((0, 0), (4, 4), (16, 16), (16, 0), (64, 16))  # (skew, watermark)


def _materialize(n_records):
    """Pre-draw the stream so the sweep times ingestion, not generation."""
    return list(make_stream("wine", n_records=n_records, seed=0))


def _run_plane(records, skew, watermark, window_size, shards=4):
    """Push one arrival order through a fresh plane; return measurements."""
    arrivals = list(skewed(records, skew, seed=0)) if skew else records
    plane = IngestPlane(
        ShardPlan(shards, "round_robin", n_parties=3),
        window_kind="tumbling",
        window_size=window_size,
        providers=["provider-0", "provider-1", "coordinator"],
        watermark_delay=watermark,
        late_policy="readmit",
    )
    seal_lags = []
    began = time.perf_counter()
    for record in arrivals:
        for window in plane.push(record):
            # Event-space seal latency: how far the frontier had to run
            # past the window's end before it sealed.
            seal_lags.append(
                plane.frontier - plane.assigner.last_seq(window.index)
            )
    plane.finish()
    elapsed = time.perf_counter() - began
    stats = plane.stats()
    return {
        "elapsed": elapsed,
        "records/sec": len(records) / elapsed,
        "seal lag (records)": (
            sum(seal_lags) / len(seal_lags) if seal_lags else 0.0
        ),
        "late": stats.late,
        "max skew": stats.max_skew,
    }


def _sweep(n_records=N_RECORDS, window_size=WINDOW_SIZE, sweep=SWEEP,
           records=None):
    if records is None:
        records = _materialize(n_records)
    rows, metrics = [], {}
    for skew, watermark in sweep:
        m = _run_plane(records, skew, watermark, window_size)
        metrics[f"skew={skew},watermark={watermark}"] = {
            "records_per_s": round(m["records/sec"], 1),
            "seal_lag_records": round(m["seal lag (records)"], 2),
            "late": m["late"],
            "max_skew": m["max skew"],
        }
        rows.append(
            [
                str(skew),
                str(watermark),
                f"{m['records/sec']:,.0f}",
                f"{m['seal lag (records)']:.1f}",
                str(m["late"]),
                str(m["max skew"]),
            ]
        )
    return rows, metrics


_HEADERS = ["skew", "watermark", "records/sec", "seal lag", "late", "max skew"]


def test_ingest_plane_throughput(benchmark):
    """pytest-benchmark entry: time the in-order path, save the sweep."""
    records = _materialize(N_RECORDS)
    rows, _ = _sweep(records=records)
    result = benchmark.pedantic(
        lambda: _run_plane(records, 0, 0, WINDOW_SIZE), rounds=1, iterations=1
    )
    assert result["late"] == 0
    save_block(
        "ingest_throughput",
        series_block(
            f"Event-time ingestion - records/sec and seal latency "
            f"(wine, {N_RECORDS} records, window {WINDOW_SIZE})",
            ascii_table(_HEADERS, rows),
        ),
    )


def test_ingest_end_to_end_overhead(benchmark):
    """Full skewed session vs the in-order one: the data-plane overhead."""
    n_records = min(N_RECORDS, 16 * WINDOW_SIZE)

    def run(skew, watermark):
        source = make_stream("wine", n_records=n_records, seed=0)
        config = StreamConfig(
            k=3,
            window_size=WINDOW_SIZE,
            compute_privacy=False,
            skew=skew,
            watermark_delay=watermark,
            late_policy="readmit",
            seed=0,
        )
        return run_stream_session(source, config)

    in_order = run(0, 0)
    out_of_order = benchmark.pedantic(
        lambda: run(16, 16), rounds=1, iterations=1
    )
    assert out_of_order.ingest.late == 0
    assert out_of_order.deviation_series() == in_order.deviation_series()
    save_block(
        "ingest_end_to_end",
        series_block(
            "Event-time ingestion - end-to-end session, in-order vs skewed",
            ascii_table(
                ["arrival order", "records/sec", "late", "max skew"],
                [
                    ["in-order", f"{in_order.throughput:,.0f}", "0", "0"],
                    [
                        "skew 16 / watermark 16",
                        f"{out_of_order.throughput:,.0f}",
                        str(out_of_order.ingest.late),
                        str(out_of_order.ingest.max_skew),
                    ],
                ],
            ),
        ),
    )


def main(argv=None):
    """Standalone sweep: ``python benchmarks/bench_ingest.py [--quick]``."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: a small record budget",
    )
    parser.add_argument(
        "--out",
        metavar="BENCH_JSON",
        help="append this run to a perf-trajectory file (e.g. BENCH_ingest.json)",
    )
    parser.add_argument(
        "--timestamp",
        help="entry timestamp (default: $REPRO_BENCH_TIMESTAMP, else now UTC)",
    )
    args = parser.parse_args(argv)

    kwargs = {"n_records": N_RECORDS, "window_size": WINDOW_SIZE}
    if args.quick:
        kwargs = {"n_records": 4_000, "window_size": 64}
    rows, metrics = _sweep(**kwargs)
    print(
        series_block(
            f"Event-time ingestion - records/sec and seal latency vs skew"
            f"{' (quick)' if args.quick else ''}",
            ascii_table(_HEADERS, rows),
        )
    )
    if args.out:
        record_trajectory(
            args.out,
            "ingest",
            {
                "n_records": kwargs["n_records"],
                "window_size": kwargs["window_size"],
                "quick": args.quick,
                **metrics,
            },
            timestamp=args.timestamp,
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
