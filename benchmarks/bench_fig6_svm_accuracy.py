"""Figure 6 — SVM(RBF) accuracy deviation across the 12 datasets.

Same layout as Figure 5 with the second representative learner: a kernel
SVM trained with SMO on the pooled target-space table.

Reproduced shape: deviations within a few accuracy points, mostly <= 0."""

import numpy as np

from repro.analysis.figures import figure6_series
from repro.analysis.reporting import ascii_table, series_block
from repro.datasets.registry import DATASET_NAMES

from _util import budget_from_env, save_block

REPEATS = budget_from_env("REPRO_BENCH_FIG6_REPEATS", 1)


def test_fig6_svm_accuracy_deviation(benchmark):
    series = benchmark.pedantic(
        lambda: figure6_series(k=5, repeats=REPEATS, seed=0),
        rounds=1,
        iterations=1,
    )

    headers = ["dataset", "SAP - Uniform", "SAP - Class"]
    rows = [
        [name, series[(name, "uniform")], series[(name, "class")]]
        for name in DATASET_NAMES
    ]
    save_block(
        "fig6_svm_accuracy",
        series_block(
            "Figure 6 - SVM(RBF) accuracy deviation (percentage points, "
            f"{REPEATS} repeats)",
            ascii_table(headers, rows, float_format="{:+.2f}"),
        ),
    )

    values = np.array(list(series.values()))
    assert np.all(values > -14.0) and np.all(values < 6.0)
    assert values.mean() <= 0.5
