"""Cluster benchmark — scale-out throughput and live-migration cost.

Runs one all-stream workload four ways and reports sessions/second:

* a single :class:`repro.serve.MiningService` (the reference);
* a :class:`repro.cluster.ClusterController` at increasing replica
  counts over identical per-replica pools — once with in-process
  replicas and once with the ``process`` backend, so the framed-socket
  transport's overhead (spawn, wire serialization, heartbeats) is a
  visible column instead of folklore;
* the single long session ping-ponged between two replicas by live
  migration, measuring hops/second (checkpoint + evict + re-admit).

Because migration is bit-deterministic, the benchmark doubles as a
correctness check: every clustered run must reproduce the single-engine
reference result-for-result, migrations included.

Two entry points:

* ``pytest benchmarks/bench_cluster.py`` — pytest-benchmark harness,
  saves the rendered block under ``benchmarks/results/``;
* ``python benchmarks/bench_cluster.py [--quick]`` — standalone sweep;
  ``--quick`` shrinks the workload for CI smoke runs, and ``--out
  BENCH_cluster.json`` appends a trajectory entry for
  ``repro experiment gate``.

Budget knobs: ``REPRO_BENCH_CLUSTER_SESSIONS``,
``REPRO_BENCH_CLUSTER_WINDOWS``, ``REPRO_BENCH_CLUSTER_WINDOW_SIZE``,
``REPRO_BENCH_CLUSTER_REPLICAS`` (comma-separated sweep).
"""

import argparse
import os
import shutil
import sys
import tempfile
import time

from repro.analysis.reporting import ascii_table, series_block
from repro.cluster import ClusterController
from repro.serve import MiningService, SessionSpec

from _util import budget_from_env, record_trajectory, save_block

N_SESSIONS = budget_from_env("REPRO_BENCH_CLUSTER_SESSIONS", 12)
N_WINDOWS = budget_from_env("REPRO_BENCH_CLUSTER_WINDOWS", 6)
WINDOW_SIZE = budget_from_env("REPRO_BENCH_CLUSTER_WINDOW_SIZE", 64)
REPLICA_LEVELS = tuple(
    int(v)
    for v in os.environ.get("REPRO_BENCH_CLUSTER_REPLICAS", "1,2,4").split(",")
)


def _workload(n_sessions, n_windows, window_size):
    """All-stream two-tenant specs (streams are what can migrate)."""
    return [
        SessionSpec(
            kind="stream",
            dataset="wine",
            k=3,
            windows=n_windows,
            window_size=window_size,
            compute_privacy=False,
            seed=index,
            tenant="acme" if index % 2 == 0 else "globex",
        )
        for index in range(n_sessions)
    ]


def _fingerprint(result):
    return (result.deviation_series(), result.messages_sent, result.bytes_sent)


def _run_single(specs):
    began = time.perf_counter()
    with MiningService(
        max_inflight=2, shard_backend="thread", shard_workers=2
    ) as service:
        results = service.run(specs)
    return results, time.perf_counter() - began


def _run_cluster(specs, replicas, placement="hash", backend="inprocess"):
    began = time.perf_counter()
    with ClusterController(
        replicas=replicas,
        placement=placement,
        backend=backend,
        max_inflight=2,
        shard_backend="thread",
        shard_workers=2,
    ) as cluster:
        results = cluster.run(specs)
        stats = cluster.stats()
    return results, time.perf_counter() - began, stats


def _migration_ping_pong(window_size, max_hops=4, seed=0):
    """Ping-pong one session between two replicas; returns (hops, wall)."""
    spec = SessionSpec(
        kind="stream",
        dataset="wine",
        k=3,
        windows=8,
        window_size=window_size,
        compute_privacy=False,
        seed=seed,
    )
    scratch = tempfile.mkdtemp(prefix="repro-bench-cluster-")
    began = time.perf_counter()
    try:
        with ClusterController(
            replicas=2, max_inflight=2, checkpoint_dir=scratch,
            checkpoint_every=1,
        ) as cluster:
            session = cluster.submit(spec)
            hops = 0
            while hops < max_hops and not session.done():
                landed = cluster.migrate(
                    session.session_id, (session.replica + 1) % 2
                )
                if landed is None:  # completed before the next boundary
                    break
                hops += 1
            result = session.result()
        wall = time.perf_counter() - began
    finally:
        shutil.rmtree(scratch, ignore_errors=True)
    reference, _ = _run_single([spec])
    assert _fingerprint(result) == _fingerprint(reference[0]), (
        "migrated run diverged from the single-engine reference"
    )
    return hops, wall


def _sweep(specs, replica_levels):
    """Run the sweep; returns (table rows, fingerprints, metrics)."""
    reference, base_wall = _run_single(specs)
    fingerprints = [_fingerprint(r) for r in reference]
    metrics = {
        "n_sessions": len(specs),
        "single_engine": {
            "sessions_per_s": round(len(specs) / max(base_wall, 1e-9), 2),
        },
    }
    rows = [
        ["single engine", f"{len(specs) / base_wall:.2f}", "1.00x", "-", "yes"]
    ]
    for level in replica_levels:
        for backend in ("inprocess", "process"):
            results, wall, stats = _run_cluster(specs, level, backend=backend)
            identical = [_fingerprint(r) for r in results] == fingerprints
            assert stats.records == sum(
                s.records for s in stats.per_replica
            ), "merged ClusterStats lost records"
            key = (
                f"replicas={level}"
                if backend == "inprocess"
                else f"process_replicas={level}"
            )
            metrics[key] = {
                "sessions_per_s": round(len(specs) / max(wall, 1e-9), 2),
                "speedup": round(base_wall / max(wall, 1e-9), 3),
            }
            label = (
                f"{level} replicas"
                if backend == "inprocess"
                else f"{level} proc replicas"
            )
            rows.append(
                [
                    label,
                    f"{len(specs) / wall:.2f}",
                    f"{base_wall / wall:.2f}x",
                    f"{stats.completed}",
                    "yes" if identical else "NO",
                ]
            )
            assert identical, (
                f"replicas={level} backend={backend} diverged from the "
                f"single engine"
            )
    return rows, fingerprints, metrics


HEADERS = ["configuration", "sessions/sec", "speedup", "completed", "identical"]


def test_cluster_throughput(benchmark):
    """pytest-benchmark entry: time the widest level, save the sweep table."""
    specs = _workload(N_SESSIONS, N_WINDOWS, WINDOW_SIZE)
    rows, fingerprints, _ = _sweep(specs, REPLICA_LEVELS)
    top = max(REPLICA_LEVELS)
    results, _, _ = benchmark.pedantic(
        lambda: _run_cluster(specs, top), rounds=1, iterations=1
    )
    assert [_fingerprint(r) for r in results] == fingerprints
    hops, wall = _migration_ping_pong(WINDOW_SIZE)
    rows.append(
        ["migration x" + str(hops), f"{hops / max(wall, 1e-9):.2f} hops/s",
         "-", "1", "yes"]
    )
    save_block(
        "cluster_throughput",
        series_block(
            f"Cluster - sessions/sec vs replicas ({N_SESSIONS} stream "
            f"sessions, wine, {N_WINDOWS}x{WINDOW_SIZE})",
            ascii_table(HEADERS, rows),
        ),
    )


def main(argv=None):
    """Standalone sweep: ``python benchmarks/bench_cluster.py [--quick]``."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: a small workload, 2 replicas only",
    )
    parser.add_argument(
        "--out",
        metavar="BENCH_JSON",
        help="append this run to a perf-trajectory file "
        "(e.g. BENCH_cluster.json)",
    )
    parser.add_argument(
        "--timestamp",
        help="entry timestamp (default: $REPRO_BENCH_TIMESTAMP, else now UTC)",
    )
    args = parser.parse_args(argv)

    n_sessions, n_windows, window_size = N_SESSIONS, N_WINDOWS, WINDOW_SIZE
    replica_levels = REPLICA_LEVELS
    if args.quick:
        n_sessions, n_windows, window_size = 6, 3, 32
        replica_levels = (2,)
    specs = _workload(n_sessions, n_windows, window_size)
    rows, _, metrics = _sweep(specs, replica_levels)
    hops, wall = _migration_ping_pong(window_size)
    metrics["migration"] = {
        "hops": hops,
        "migrations_per_s": round(hops / max(wall, 1e-9), 2),
    }
    rows.append(
        ["migration x" + str(hops), f"{hops / max(wall, 1e-9):.2f} hops/s",
         "-", "1", "yes"]
    )
    print(
        series_block(
            f"Cluster - sessions/sec vs replicas"
            f"{' (quick)' if args.quick else ''}",
            ascii_table(HEADERS, rows),
        )
    )
    if args.out:
        record_trajectory(
            args.out,
            "cluster",
            {
                "n_windows": n_windows,
                "window_size": window_size,
                "quick": args.quick,
                **metrics,
            },
            timestamp=args.timestamp,
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
