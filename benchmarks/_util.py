"""Shared helpers for the benchmark harness.

Every benchmark regenerates one paper figure (or ablation) and both prints
the rendered series and writes it to ``benchmarks/results/<name>.txt`` so
EXPERIMENTS.md can be assembled from the saved artefacts.
"""

from __future__ import annotations

import os
from typing import Dict

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def save_block(name: str, block: str) -> None:
    """Print a rendered figure block and persist it under results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(block + "\n")
    print()
    print(block)


def budget_from_env(name: str, default: int) -> int:
    """Allow CI/users to scale benchmark budgets via environment variables
    (e.g. ``REPRO_BENCH_ROUNDS=50 pytest benchmarks/``)."""
    value = os.environ.get(name)
    if value is None:
        return default
    return max(1, int(value))
