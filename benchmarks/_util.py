"""Shared helpers for the benchmark harness.

Every benchmark regenerates one paper figure (or ablation) and both prints
the rendered series and writes it to ``benchmarks/results/<name>.txt`` so
EXPERIMENTS.md can be assembled from the saved artefacts.
"""

from __future__ import annotations

import json
import os
import platform
from datetime import datetime, timezone
from typing import Dict, Optional

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def save_block(name: str, block: str) -> None:
    """Print a rendered figure block and persist it under results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(block + "\n")
    print()
    print(block)


def budget_from_env(name: str, default: int) -> int:
    """Allow CI/users to scale benchmark budgets via environment variables
    (e.g. ``REPRO_BENCH_ROUNDS=50 pytest benchmarks/``)."""
    value = os.environ.get(name)
    if value is None:
        return default
    return max(1, int(value))


def machine_fingerprint() -> Dict[str, object]:
    """Coarse host identity attached to every trajectory entry, so numbers
    from different machines are never compared as if they were a trend."""
    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "cpus": os.cpu_count(),
    }


def bench_timestamp(explicit: Optional[str] = None) -> str:
    """Entry timestamp: ``--timestamp`` flag, else ``REPRO_BENCH_TIMESTAMP``
    (set by CI for reproducible artefacts), else the current UTC time."""
    if explicit:
        return explicit
    env = os.environ.get("REPRO_BENCH_TIMESTAMP")
    if env:
        return env
    return datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ")


def _validate_entries(path: str, entries: list) -> None:
    """Every trajectory entry must be a {timestamp, machine, metrics} record
    (a corrupted file should fail loudly, not grow quietly)."""
    for index, entry in enumerate(entries):
        if (
            not isinstance(entry, dict)
            or not isinstance(entry.get("timestamp"), str)
            or not isinstance(entry.get("machine"), dict)
            or not isinstance(entry.get("metrics"), dict)
        ):
            raise ValueError(
                f"{path}: entry {index} is not a "
                f"{{timestamp, machine, metrics}} record"
            )


def record_trajectory(
    path: str,
    bench: str,
    metrics: Dict[str, object],
    timestamp: Optional[str] = None,
) -> Dict[str, object]:
    """Append one ``{timestamp, machine, metrics}`` entry to a trajectory file.

    The file is a single JSON object ``{"bench": ..., "entries": [...]}``;
    re-running a benchmark with the same ``--out`` grows the history rather
    than overwriting it, which is what makes the file a perf *trajectory*.
    Entries whose ``(timestamp, machine)`` already appears are *not*
    re-appended — CI pins ``REPRO_BENCH_TIMESTAMP``, so retried jobs would
    otherwise bloat the committed files with exact duplicates.  Returns the
    appended entry (or the existing duplicate).
    """
    entry = {
        "timestamp": bench_timestamp(timestamp),
        "machine": machine_fingerprint(),
        "metrics": metrics,
    }
    history: Dict[str, object] = {"bench": bench, "entries": []}
    if os.path.exists(path):
        with open(path, encoding="utf-8") as handle:
            loaded = json.load(handle)
        if not isinstance(loaded, dict) or not isinstance(
            loaded.get("entries"), list
        ):
            raise ValueError(f"{path} is not a benchmark trajectory file")
        _validate_entries(path, loaded["entries"])
        history = loaded
    for existing in history["entries"]:
        if (
            existing["timestamp"] == entry["timestamp"]
            and existing["machine"] == entry["machine"]
        ):
            return existing
    history["bench"] = bench
    history["entries"].append(entry)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(history, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return entry
