"""Ablation — the common noise component's accuracy/privacy trade-off.

DESIGN.md ablation #2: sweeping sigma shows why the paper carries a noise
term at all (privacy against known-sample attacks) and what it costs
(classifier accuracy)."""

from repro.analysis.experiments import noise_sweep
from repro.analysis.reporting import ascii_table, series_block

from _util import save_block

SIGMAS = (0.0, 0.02, 0.05, 0.1, 0.2)


def test_ablation_noise_level(benchmark):
    rows = benchmark.pedantic(
        lambda: noise_sweep(dataset="diabetes", sigmas=SIGMAS, seed=0),
        rounds=1,
        iterations=1,
    )
    headers = list(rows[0])
    save_block(
        "ablation_noise",
        series_block(
            "Ablation - common noise level (diabetes, KNN, k=5)",
            ascii_table(headers, [[row[h] for h in headers] for row in rows]),
        ),
    )
    # Privacy strictly grows with sigma; accuracy deviation broadly worsens.
    privacies = [row["privacy"] for row in rows]
    assert privacies == sorted(privacies)
    assert rows[0]["privacy"] < rows[-1]["privacy"]
