"""Aggregate span files into per-round latency tables.

The tracer (:mod:`repro.obs.tracing`) writes one JSON object per finished
span; this module turns such a file — or any iterable of span dicts —
into the operator's view: where does a round spend its time?

* :func:`load_spans` — parse a JSONL span file;
* :func:`stage_summary` — per-stage duration statistics (count, p50,
  p95, mean, total) across every round of a run;
* :func:`rounds_table` — one row per round, stage durations side by
  side, the quickest way to spot a straggler round;
* :func:`render_latency_report` — both as one aligned text block
  (``repro report spans.jsonl``).

Percentiles use plain linear interpolation on the sorted durations
(numpy-free, deterministic), matching the fixed-bucket philosophy of the
metrics registry.
"""

from __future__ import annotations

import glob
import json
import os
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "STAGES",
    "load_spans",
    "load_span_sources",
    "percentile",
    "stage_summary",
    "rounds_table",
    "render_latency_report",
]

#: the round pipeline's stage taxonomy, in execution order, plus the
#: ingest plane's seal and the negotiation/session spans
STAGES: Tuple[str, ...] = (
    "control", "dispatch", "settle", "merge", "seal", "renegotiate",
)


def load_spans(path: str) -> List[Dict[str, Any]]:
    """Parse one JSONL span file into a list of span dicts.

    Raises a friendly :class:`ValueError` for unreadable files or
    malformed lines (with the line number), so the CLI can exit 2.
    """
    spans: List[Dict[str, Any]] = []
    try:
        with open(path, encoding="utf-8") as handle:
            for number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise ValueError(
                        f"{path}:{number}: not a JSON span record: {exc}"
                    ) from None
                if not isinstance(record, dict) or "name" not in record:
                    raise ValueError(
                        f"{path}:{number}: span records need a 'name' field"
                    )
                spans.append(record)
    except OSError as exc:
        raise ValueError(f"cannot read span file {path!r}: {exc}") from None
    return spans


def load_span_sources(
    paths: Sequence[str],
) -> Tuple[List[Dict[str, Any]], List[str]]:
    """Merge span files and/or directories into one span list.

    Each path is either a JSONL span file or a directory searched
    recursively for ``*.jsonl`` files (sorted, so merging is
    deterministic) — the multi-run experiment layout, where every run
    directory holds its own ``spans.jsonl``.  Returns the merged spans
    plus the resolved file list; an empty directory is a
    :class:`ValueError` rather than a silently empty report.
    """
    files: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            found = sorted(
                glob.glob(os.path.join(path, "**", "*.jsonl"), recursive=True)
            )
            if not found:
                raise ValueError(
                    f"no *.jsonl span files under directory {path!r}"
                )
            files.extend(found)
        else:
            files.append(path)
    spans: List[Dict[str, Any]] = []
    for file in files:
        spans.extend(load_spans(file))
    return spans, files


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0..100) by linear interpolation."""
    if not values:
        return 0.0
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    ordered = sorted(float(v) for v in values)
    if len(ordered) == 1:
        return ordered[0]
    position = (q / 100.0) * (len(ordered) - 1)
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    fraction = position - low
    return ordered[low] + (ordered[high] - ordered[low]) * fraction


def stage_summary(
    spans: Iterable[Dict[str, Any]],
    stages: Sequence[str] = STAGES,
) -> Dict[str, Dict[str, float]]:
    """Duration statistics per stage name, over every span of a run.

    Only span names in ``stages`` are aggregated (order preserved in the
    result); spans without a duration (still open at exit) are skipped.
    """
    wanted = set(stages)
    durations: Dict[str, List[float]] = {}
    for span in spans:
        name = span.get("name")
        duration = span.get("duration")
        if name in wanted and duration is not None:
            durations.setdefault(name, []).append(float(duration))
    out: Dict[str, Dict[str, float]] = {}
    for name in stages:
        values = durations.get(name)
        if not values:
            continue
        out[name] = {
            "count": float(len(values)),
            "p50": percentile(values, 50.0),
            "p95": percentile(values, 95.0),
            "mean": sum(values) / len(values),
            "total": sum(values),
        }
    return out


def rounds_table(
    spans: Iterable[Dict[str, Any]],
    stages: Sequence[str] = ("control", "dispatch", "settle", "merge"),
) -> List[Dict[str, Any]]:
    """One row per round: ``{"round": id, "<stage>": seconds, ...}``.

    A stage appearing twice for one round (it cannot, today) keeps the
    larger duration — the conservative reading of a malformed file.
    """
    wanted = set(stages)
    rows: Dict[int, Dict[str, Any]] = {}
    for span in spans:
        name = span.get("name")
        if name not in wanted:
            continue
        attrs = span.get("attrs") or {}
        round_id = attrs.get("round")
        duration = span.get("duration")
        if round_id is None or duration is None:
            continue
        row = rows.setdefault(int(round_id), {"round": int(round_id)})
        previous = row.get(name)
        if previous is None or duration > previous:
            row[name] = float(duration)
    return [rows[round_id] for round_id in sorted(rows)]


def _format_table(headers: List[str], rows: List[List[str]]) -> str:
    """Minimal right-aligned text table (keeps this module stdlib-only)."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.rjust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in rows:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _ms(seconds: float) -> str:
    return f"{seconds * 1000:.2f}"


def render_latency_report(
    spans: Iterable[Dict[str, Any]],
    max_rounds: Optional[int] = 20,
) -> str:
    """The human report: per-stage p50/p95 plus the per-round breakdown."""
    spans = list(spans)
    summary = stage_summary(spans)
    if not summary:
        return "(no stage spans)"
    stage_rows = [
        [
            name,
            str(int(stats["count"])),
            _ms(stats["p50"]),
            _ms(stats["p95"]),
            _ms(stats["mean"]),
            _ms(stats["total"]),
        ]
        for name, stats in summary.items()
    ]
    blocks = [
        "per-stage latency (ms)",
        _format_table(
            ["stage", "count", "p50", "p95", "mean", "total"], stage_rows
        ),
    ]
    per_round = rounds_table(spans)
    if per_round:
        shown = per_round if max_rounds is None else per_round[:max_rounds]
        stages = ["control", "dispatch", "settle", "merge"]
        round_rows = [
            [str(row["round"])]
            + [_ms(row[s]) if s in row else "-" for s in stages]
            for row in shown
        ]
        blocks.append("")
        blocks.append("per-round stage durations (ms)")
        blocks.append(_format_table(["round"] + stages, round_rows))
        if len(per_round) > len(shown):
            blocks.append(f"... ({len(per_round)} rounds total)")
    return "\n".join(blocks)
