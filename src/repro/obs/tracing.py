"""Tracing spans: who spent how long doing what, and inside what.

A :class:`Tracer` hands out :class:`Span` objects — named intervals with
monotonic-clock durations, explicit parent ids, and key/value attributes.
Completed spans are pushed to a sink: :class:`JsonlSink` appends one JSON
object per line to a file (thread-safe, so serve driver threads can share
one tracer), :class:`ListSink` accumulates dicts in memory for tests and
reports.

Two design points are deliberate and load-bearing:

* **Explicit parents, not thread-local stacks.**  The pipelined round
  driver interleaves rounds — round N+1's ``dispatch`` opens before round
  N's ``settle`` closes, on the same thread — so a context-var stack
  would mis-parent spans.  Call sites pass ``parent=`` explicitly.
* **Disabled tracing is free.**  :data:`NULL_TRACER` has
  ``enabled = False`` and returns one shared :class:`NullSpan` whose
  methods do nothing; instrumented call sites guard attribute building
  with ``if tracer.enabled`` so the hot path does no clock reads, no dict
  allocation, and no formatting when telemetry is off.  That is what
  keeps fingerprints bit-identical and throughput untouched.

Spans support both explicit ``start()``/``end()`` (a round's stages open
and close across multiple driver calls) and ``with`` blocks for simple
cases.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from typing import Any, Dict, List, Optional

__all__ = [
    "Span",
    "NullSpan",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "JsonlSink",
    "ListSink",
]


class ListSink:
    """Collect finished spans as plain dicts in memory (tests, reports)."""

    def __init__(self) -> None:
        self.spans: List[Dict[str, Any]] = []
        self._lock = threading.Lock()

    def emit(self, record: Dict[str, Any]) -> None:
        """Append one finished-span dict."""
        with self._lock:
            self.spans.append(record)

    def close(self) -> None:
        """No-op (symmetry with :class:`JsonlSink`)."""


class JsonlSink:
    """Append finished spans to ``path``, one JSON object per line."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._handle = open(path, "w", encoding="utf-8")
        self._lock = threading.Lock()

    def emit(self, record: Dict[str, Any]) -> None:
        """Write one finished-span dict as a JSON line."""
        line = json.dumps(record, sort_keys=True)
        with self._lock:
            self._handle.write(line + "\n")

    def close(self) -> None:
        """Flush and close the file (idempotent)."""
        with self._lock:
            if not self._handle.closed:
                self._handle.flush()
                self._handle.close()


class Span:
    """One named interval.  Emitted to the tracer's sink when it ends.

    A span records its wall-clock start (``time.time``, for humans) and a
    monotonic start (``time.monotonic``, for the duration), its parent's
    id (or ``None`` for a root), and arbitrary key/value attributes.
    """

    __slots__ = (
        "name", "span_id", "parent_id", "attrs",
        "_tracer", "_start_wall", "_start_mono", "duration", "_done",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        span_id: int,
        parent_id: Optional[int],
        attrs: Optional[Dict[str, Any]],
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.attrs: Dict[str, Any] = dict(attrs) if attrs else {}
        self._start_wall = time.time()
        self._start_mono = time.monotonic()
        self.duration: Optional[float] = None
        self._done = False

    @property
    def enabled(self) -> bool:
        return True

    def set(self, **attrs: Any) -> "Span":
        """Attach (or overwrite) attributes; chainable."""
        self.attrs.update(attrs)
        return self

    def end(self, **attrs: Any) -> None:
        """Close the span and emit it.  Idempotent."""
        if self._done:
            return
        self._done = True
        self.duration = time.monotonic() - self._start_mono
        if attrs:
            self.attrs.update(attrs)
        self._tracer._emit(self)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self.end()


class NullSpan:
    """The shared do-nothing span handed out by :class:`NullTracer`."""

    __slots__ = ()

    name = ""
    span_id = 0
    parent_id = None
    duration = None
    attrs: Dict[str, Any] = {}

    @property
    def enabled(self) -> bool:
        return False

    def set(self, **attrs: Any) -> "NullSpan":
        """Discard the attributes; chainable like :meth:`Span.set`."""
        return self

    def end(self, **attrs: Any) -> None:
        """Do nothing — disabled spans are never emitted."""

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        pass


_NULL_SPAN = NullSpan()


class Tracer:
    """Produce spans and push the finished ones to a sink.

    Span ids are unique per tracer (a thread-safe counter), so spans from
    concurrent sessions sharing one tracer never collide.
    """

    enabled = True

    def __init__(self, sink: Any) -> None:
        self.sink = sink
        self._ids = itertools.count(1)

    def span(
        self,
        name: str,
        parent: Optional[Any] = None,
        **attrs: Any,
    ) -> Span:
        """Open a span.  ``parent`` is a live span (or ``None`` for root)."""
        parent_id = None
        if parent is not None and parent.enabled:
            parent_id = parent.span_id
        return Span(self, name, next(self._ids), parent_id, attrs)

    def _emit(self, span: Span) -> None:
        self.sink.emit({
            "name": span.name,
            "span_id": span.span_id,
            "parent_id": span.parent_id,
            "start": span._start_wall,
            "duration": span.duration,
            "attrs": span.attrs,
        })

    def close(self) -> None:
        """Flush and close the sink."""
        self.sink.close()


class NullTracer:
    """The disabled tracer: ``enabled`` is False, spans are no-ops."""

    enabled = False

    def span(self, name: str, parent: Optional[Any] = None, **attrs: Any) -> NullSpan:
        """Hand out the one shared :class:`NullSpan`."""
        return _NULL_SPAN

    def close(self) -> None:
        """No-op — there is no sink."""


#: the shared disabled tracer — telemetry-off call sites route through it
NULL_TRACER = NullTracer()
