"""Registry collectors bridging the existing stat holders into metrics.

The stack's stat holders — the ingest plane's per-provider gates, the
metered shard pool's occupancy ledger, the serving engine's
:class:`~repro.serve.engine.ServiceStats` — predate the registry and keep
their own public dicts, which downstream consumers (and the fingerprint
tests) pin byte for byte.  Rather than rewriting their storage, each is
*re-expressed* as a snapshot-time collector: a closure registered with
:meth:`~repro.obs.metrics.MetricsRegistry.register_collector` that reads
the holder's counters and publishes them as gauges whenever the registry
is snapshotted or rendered.  The holders stay the source of truth; the
registry is a view.

Everything here takes the holder duck-typed (plain attribute reads), so
this module keeps the package's stdlib-only layering.
"""

from __future__ import annotations

from typing import Any, Callable

__all__ = [
    "cluster_collector",
    "ingest_collector",
    "pool_collector",
    "service_collector",
]

#: a registered collector's signature
Collector = Callable[[Any], None]


def ingest_collector(plane: Any) -> Collector:
    """Publish an :class:`~repro.streaming.ingest.IngestPlane`'s counters.

    Totals mirror ``IngestStats``; per-provider gauges carry a
    ``provider`` label with the gate's display name.
    """

    def collect(registry: Any) -> None:
        stats = plane.stats()
        registry.gauge(
            "repro_ingest_records", "Records ingested through provider gates."
        ).set(stats.records)
        registry.gauge(
            "repro_ingest_late_records", "Records that arrived after their window sealed."
        ).set(stats.late)
        registry.gauge(
            "repro_ingest_dropped_records", "Late records discarded by the drop policy."
        ).set(stats.dropped)
        registry.gauge(
            "repro_ingest_readmitted_records", "Late records readmitted to a later window."
        ).set(stats.readmitted)
        registry.gauge(
            "repro_ingest_upserted_records", "Late records re-emitted as corrections."
        ).set(stats.upserted)
        registry.gauge(
            "repro_ingest_max_skew", "Largest observed arrival lateness (records)."
        ).set(stats.max_skew)
        for gate in stats.providers:
            registry.gauge(
                "repro_ingest_provider_records",
                "Records ingested per provider gate.",
                provider=gate.name,
            ).set(gate.records)

    return collect


def pool_collector(pool: Any) -> Collector:
    """Publish a :class:`~repro.sharding.backends.MeteredBackend` ledger."""

    def collect(registry: Any) -> None:
        registry.gauge(
            "repro_pool_workers", "Workers in the shard pool."
        ).set(pool.n_workers)
        registry.gauge(
            "repro_pool_tasks_dispatched", "Shard tasks dispatched to the pool."
        ).set(pool.tasks_dispatched)
        registry.gauge(
            "repro_pool_batches_dispatched", "Task batches dispatched to the pool."
        ).set(pool.batches_dispatched)
        registry.gauge(
            "repro_pool_busy_seconds", "Integrated worker occupancy (seconds)."
        ).set(pool.busy_seconds)

    return collect


def service_collector(service: Any) -> Collector:
    """Publish a :class:`~repro.serve.engine.MiningService`'s stats.

    Session lifecycle counts are one gauge family labeled by ``state``;
    the shared pool's figures ride along from the same consistent
    :meth:`~repro.serve.engine.MiningService.stats` snapshot.
    """

    def collect(registry: Any) -> None:
        stats = service.stats()
        for state, value in (
            ("submitted", stats.submitted),
            ("rejected", stats.rejected),
            ("completed", stats.completed),
            ("failed", stats.failed),
            ("cancelled", stats.cancelled),
            ("active", stats.active),
        ):
            registry.gauge(
                "repro_serve_sessions",
                "Session lifecycle counts by state.",
                state=state,
            ).set(value)
        registry.gauge(
            "repro_serve_records", "Records mined across completed sessions."
        ).set(stats.records)
        registry.gauge(
            "repro_serve_messages", "Simnet messages across completed sessions."
        ).set(stats.messages)
        registry.gauge(
            "repro_serve_bytes", "Simnet bytes across completed sessions."
        ).set(stats.bytes)
        registry.gauge(
            "repro_serve_pool_utilization", "Shared pool utilization in [0, 1]."
        ).set(stats.pool.utilization)

    return collect


def cluster_collector(cluster: Any) -> Collector:
    """Publish a :class:`~repro.cluster.ClusterController`'s merged stats.

    Cluster-wide lifecycle counts are one gauge family labeled by
    ``state``; per-replica activity gets a ``replica`` label so hot
    replicas are visible before a rebalance sweep.  Replica transports
    additionally surface liveness (``repro_cluster_replica_up``, the
    heartbeat age) and wire traffic (frames/bytes both ways — zero for
    in-process replicas, whose "wire" is a function call).
    """

    def collect(registry: Any) -> None:
        stats = cluster.stats()
        for state, value in (
            ("submitted", stats.submitted),
            ("rejected", stats.rejected),
            ("completed", stats.completed),
            ("failed", stats.failed),
            ("cancelled", stats.cancelled),
            ("evicted", stats.evicted),
            ("active", stats.active),
            ("parked", stats.parked),
        ):
            registry.gauge(
                "repro_cluster_sessions",
                "Cluster-wide session lifecycle counts by state.",
                state=state,
            ).set(value)
        registry.gauge(
            "repro_cluster_replicas", "Engine replicas in the cluster."
        ).set(stats.replicas)
        registry.gauge(
            "repro_cluster_replicas_healthy",
            "Replicas currently passing health checks.",
        ).set(getattr(stats, "healthy_replicas", stats.replicas))
        registry.gauge(
            "repro_cluster_migrations", "Completed session migration hops."
        ).set(stats.migrations)
        registry.gauge(
            "repro_cluster_recoveries",
            "Sessions re-homed by crash recovery.",
        ).set(getattr(stats, "recoveries", 0))
        registry.gauge(
            "repro_cluster_rebalances", "Rebalance sweeps executed."
        ).set(stats.rebalances)
        for transport in getattr(cluster, "replicas", ()):
            index = str(getattr(transport, "index", "?"))
            registry.gauge(
                "repro_cluster_replica_up",
                "1 while the replica passes health checks, else 0.",
                replica=index,
            ).set(1 if getattr(transport, "healthy", True) else 0)
            registry.gauge(
                "repro_cluster_replica_heartbeat_age_seconds",
                "Seconds since the replica last proved liveness.",
                replica=index,
            ).set(getattr(transport, "heartbeat_age", 0.0))
            for name, doc in (
                ("frames_sent", "Protocol frames sent to the replica."),
                ("frames_received", "Protocol frames received from the replica."),
                ("wire_bytes_sent", "Wire bytes sent to the replica."),
                ("wire_bytes_received", "Wire bytes received from the replica."),
            ):
                registry.gauge(
                    f"repro_cluster_replica_{name}",
                    doc,
                    replica=index,
                ).set(getattr(transport, name, 0))
        for index, replica in enumerate(stats.per_replica):
            registry.gauge(
                "repro_cluster_replica_active",
                "Sessions active per replica.",
                replica=str(index),
            ).set(replica.active)
            registry.gauge(
                "repro_cluster_replica_completed",
                "Sessions completed per replica.",
                replica=str(index),
            ).set(replica.completed)
            registry.gauge(
                "repro_cluster_replica_utilization",
                "Per-replica pool utilization in [0, 1].",
                replica=str(index),
            ).set(replica.pool.utilization)

    return collect
