"""Declarative experiment sweeps: run tables, joined reports, a perf gate.

The paper's whole evaluation is a grid — scenario x parties x perturbation
knobs — and this module makes such grids one config file instead of one
hand-rolled script per cell:

* :class:`ExperimentConfig` — factors x levels x repetitions plus a base
  spec, loaded from one JSON or TOML file
  (:func:`load_experiment_config`);
* :func:`expand_run_table` — the deterministic cartesian expansion whose
  row type is the existing :class:`repro.serve.SessionSpec`;
* :func:`run_experiment` — executes every cell through
  :func:`repro.serve.engine.execute_spec` with its *own*
  :class:`~repro.obs.Telemetry` bundle, persists a per-run artifact
  directory (``spec.json`` + ``spans.jsonl`` + ``metrics.json`` +
  ``result.json`` with machine fingerprint and wall time), survives a
  crashed cell (an error artifact is written and the sweep continues),
  and resumes a partial sweep without re-running completed cells;
* :func:`load_runs` / :func:`render_experiment_report` — the report
  stage: joins the per-run metrics snapshots with the span latency
  tables of :mod:`repro.obs.report` into one factor-pivoted markdown (or
  minimal HTML) document;
* :func:`run_gate` — the trajectory regression gate: compares a fresh
  quick measurement (or a ``--current`` trajectory file) against the
  committed ``BENCH_*.json`` entries, matched by machine fingerprint,
  and reports a regression whenever a throughput metric drops by more
  than the tolerance (default 20%).

Layering: everything config/table/report/gate-shaped here imports only
the standard library, keeping the package's rule that any ``repro``
subpackage may import ``repro.obs``.  The two call sites that *execute*
sessions (:func:`run_experiment`'s cell loop and the gate's built-in
quick measurement) defer their ``repro.serve`` / ``repro.streaming``
imports to call time, which is safe because by then the execution layers
are fully importable.
"""

from __future__ import annotations

import json
import math
import os
import platform
import re
import time
from dataclasses import dataclass, field
from datetime import datetime, timezone
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from .metrics import snapshot_quantile
from .report import stage_summary

__all__ = [
    "ExperimentConfig",
    "RunCell",
    "ExperimentRun",
    "GateReport",
    "DiffReport",
    "load_experiment_config",
    "expand_run_table",
    "run_experiment",
    "load_runs",
    "render_experiment_report",
    "machine_fingerprint",
    "bench_timestamp",
    "load_trajectory",
    "flatten_metrics",
    "run_gate",
    "run_diff",
]

#: top-level keys an experiment config may carry
_CONFIG_KEYS = ("name", "description", "base", "factors", "repetitions")

#: per-run artifact file names
SPEC_FILE = "spec.json"
SPANS_FILE = "spans.jsonl"
METRICS_FILE = "metrics.json"
RESULT_FILE = "result.json"
MANIFEST_FILE = "experiment.json"


def machine_fingerprint() -> Dict[str, Any]:
    """Coarse host identity stamped on every artifact and trajectory entry,
    so numbers from different machines are never compared as a trend."""
    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "cpus": os.cpu_count(),
    }


def bench_timestamp(explicit: Optional[str] = None) -> str:
    """Artifact timestamp: explicit value, else ``REPRO_BENCH_TIMESTAMP``
    (pinned by CI for reproducible artifacts), else the current UTC time."""
    if explicit:
        return explicit
    env = os.environ.get("REPRO_BENCH_TIMESTAMP")
    if env:
        return env
    return datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ")


# ----------------------------------------------------------------------
# config
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ExperimentConfig:
    """One declarative sweep: ``base`` spec + ``factors`` x ``repetitions``.

    ``base`` holds the :class:`~repro.serve.SessionSpec` fields shared by
    every cell; each factor maps a spec field to the list of levels to
    sweep; ``repetitions`` repeats every factor combination with the
    cell's seed offset by the repetition index, so repeated cells draw
    fresh (but reproducible) randomness.
    """

    name: str
    factors: Tuple[Tuple[str, Tuple[Any, ...]], ...]
    base: Tuple[Tuple[str, Any], ...] = ()
    repetitions: int = 1
    description: str = ""

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not re.fullmatch(
            r"[A-Za-z0-9._-]+", self.name or ""
        ):
            raise ValueError(
                f"experiment name must be a non-empty [A-Za-z0-9._-]+ slug "
                f"(it names the results directory), got {self.name!r}"
            )
        if not isinstance(self.repetitions, int) or isinstance(
            self.repetitions, bool
        ) or self.repetitions < 1:
            raise ValueError(
                f"repetitions must be an integer >= 1, got {self.repetitions!r}"
            )
        if not self.factors:
            raise ValueError("an experiment needs at least one factor")
        for factor, levels in self.factors:
            if not levels:
                raise ValueError(f"factor {factor!r} has no levels")
        for key, _ in tuple(self.base) + tuple(self.factors):
            if key == "telemetry":
                raise ValueError(
                    "'telemetry' is a runtime attachment, not a sweepable "
                    "spec field; the runner builds one bundle per cell"
                )

    @property
    def factor_names(self) -> Tuple[str, ...]:
        """Factor names in declaration order (the run-table column order)."""
        return tuple(name for name, _ in self.factors)

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, Any]) -> "ExperimentConfig":
        """Build a config from one parsed JSON/TOML document.

        Unknown top-level keys fail loudly, like
        :meth:`SessionSpec.from_mapping` does for spec fields.
        """
        unknown = sorted(set(mapping) - set(_CONFIG_KEYS))
        if unknown:
            raise ValueError(
                f"unknown experiment config key(s): {', '.join(unknown)}; "
                f"available: {', '.join(_CONFIG_KEYS)}"
            )
        if "name" not in mapping:
            raise ValueError("experiment config needs a 'name'")
        factors = mapping.get("factors")
        if not isinstance(factors, Mapping) or not factors:
            raise ValueError(
                "experiment config needs a non-empty 'factors' mapping "
                "(spec field -> list of levels)"
            )
        normalized: List[Tuple[str, Tuple[Any, ...]]] = []
        for factor, levels in factors.items():
            if not isinstance(levels, Sequence) or isinstance(levels, (str, bytes)):
                raise ValueError(
                    f"factor {factor!r} levels must be a list, got {levels!r}"
                )
            normalized.append((str(factor), tuple(levels)))
        base = mapping.get("base", {})
        if not isinstance(base, Mapping):
            raise ValueError(f"'base' must be a mapping, got {base!r}")
        return cls(
            name=mapping["name"],
            factors=tuple(normalized),
            base=tuple(base.items()),
            repetitions=mapping.get("repetitions", 1),
            description=mapping.get("description", ""),
        )

    def to_mapping(self) -> Dict[str, Any]:
        """The JSON-friendly inverse of :meth:`from_mapping`."""
        return {
            "name": self.name,
            "description": self.description,
            "base": dict(self.base),
            "factors": {name: list(levels) for name, levels in self.factors},
            "repetitions": self.repetitions,
        }


def load_experiment_config(path: str) -> ExperimentConfig:
    """Load an :class:`ExperimentConfig` from a JSON or TOML file.

    The format follows the extension: ``.toml`` parses with
    :mod:`tomllib` (Python 3.11+; a friendly error tells older
    interpreters to use JSON), anything else parses as JSON.
    """
    if path.endswith(".toml"):
        try:
            import tomllib
        except ImportError:
            raise ValueError(
                f"TOML config {path!r} needs Python 3.11+ (tomllib); "
                f"use a JSON config on this interpreter"
            ) from None
        try:
            with open(path, "rb") as handle:
                payload = tomllib.load(handle)
        except OSError as exc:
            raise ValueError(f"cannot read experiment config {path!r}: {exc}") from None
        except tomllib.TOMLDecodeError as exc:
            raise ValueError(f"experiment config {path!r} is not valid TOML: {exc}") from None
    else:
        try:
            with open(path, encoding="utf-8") as handle:
                payload = json.load(handle)
        except OSError as exc:
            raise ValueError(f"cannot read experiment config {path!r}: {exc}") from None
        except json.JSONDecodeError as exc:
            raise ValueError(f"experiment config {path!r} is not valid JSON: {exc}") from None
    if not isinstance(payload, Mapping):
        raise ValueError(f"experiment config {path!r} must be one object/table")
    return ExperimentConfig.from_mapping(payload)


# ----------------------------------------------------------------------
# run-table expansion
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RunCell:
    """One row of the expanded run table.

    ``overrides`` is the factor assignment (plus the repetition's seed
    offset already folded into ``spec_mapping``); ``spec_mapping`` is the
    full :class:`SessionSpec` description the cell executes.
    """

    run_id: str
    index: int
    rep: int
    overrides: Tuple[Tuple[str, Any], ...]
    spec_mapping: Tuple[Tuple[str, Any], ...]

    def build_spec(self):
        """The cell's :class:`~repro.serve.SessionSpec` (validated)."""
        from ..serve.spec import SessionSpec  # deferred: execution layer

        return SessionSpec.from_mapping(dict(self.spec_mapping))


def _level_token(value: Any) -> str:
    """A filesystem-safe rendering of one factor level for run ids."""
    if isinstance(value, bool):
        text = "true" if value else "false"
    else:
        text = str(value)
    return re.sub(r"[^A-Za-z0-9._+-]", "-", text)


def expand_run_table(config: ExperimentConfig) -> List[RunCell]:
    """Expand a config into its deterministic, validated run table.

    Factors iterate in declaration order with the *last* factor varying
    fastest (row-major cartesian product), then repetitions innermost;
    two expansions of the same config are element-wise identical, which
    is what makes run ids stable across resumes.  Every cell is built
    through :meth:`SessionSpec.from_mapping`, so an invalid factor field
    or level fails at expansion time naming the offending cell.
    """
    combos: List[Tuple[Tuple[str, Any], ...]] = [()]
    for factor, levels in config.factors:
        combos = [combo + ((factor, level),) for combo in combos for level in levels]
    base = dict(config.base)
    cells: List[RunCell] = []
    index = 0
    for combo in combos:
        for rep in range(config.repetitions):
            mapping = dict(base)
            mapping.update(combo)
            # Repetitions re-draw randomness: offset the cell's seed.
            mapping["seed"] = int(mapping.get("seed", 0)) + rep
            tokens = [f"{factor}={_level_token(level)}" for factor, level in combo]
            run_id = "-".join([f"{index:03d}"] + tokens + [f"r{rep}"])
            cell = RunCell(
                run_id=run_id,
                index=index,
                rep=rep,
                overrides=combo,
                spec_mapping=tuple(mapping.items()),
            )
            try:
                cell.build_spec()
            except ValueError as exc:
                raise ValueError(f"run table cell {run_id}: {exc}") from None
            cells.append(cell)
            index += 1
    return cells


# ----------------------------------------------------------------------
# the sweep runner
# ----------------------------------------------------------------------
@dataclass
class ExperimentRun:
    """What one :func:`run_experiment` call did."""

    directory: str
    total: int
    executed: int = 0
    skipped: int = 0
    failed: int = 0
    results: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every cell in the sweep has a completed artifact."""
        return self.failed == 0


def _result_summary(result: Any, wall_seconds: float) -> Dict[str, Any]:
    """The scalar summary persisted per run, both session kinds unified."""
    if hasattr(result, "records_processed"):  # stream
        records = result.records_processed
        messages = result.messages_sent + result.data_messages_sent
        data_bytes = result.bytes_sent + result.data_bytes_sent
        extra: Dict[str, Any] = {
            "windows": len(result.windows),
            "readaptations": result.readaptations,
            "overlap": result.overlap,
        }
    else:  # batch
        records = result.miner_result.n_train + result.miner_result.n_test
        messages = result.messages_sent
        data_bytes = result.bytes_sent
        extra = {}
    throughput = records / wall_seconds if wall_seconds > 0 else 0.0
    return {
        "records": int(records),
        "records_per_s": round(throughput, 1),
        "deviation": round(float(result.deviation), 4),
        "messages": int(messages),
        "bytes": int(data_bytes),
        **extra,
    }


def _write_json(path: str, payload: Any) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def _read_json(path: str) -> Any:
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)


def _completed(result_path: str) -> Optional[Dict[str, Any]]:
    """The cell's prior completed artifact, or ``None`` to (re-)run it.

    A missing or unreadable ``result.json`` and an ``error`` artifact all
    mean "run the cell": resuming retries crashes, never successes.
    """
    try:
        artifact = _read_json(result_path)
    except (OSError, json.JSONDecodeError):
        return None
    if isinstance(artifact, dict) and artifact.get("status") == "ok":
        return artifact
    return None


def run_experiment(
    config: ExperimentConfig,
    results_root: str = "results",
    resume: bool = True,
    timestamp: Optional[str] = None,
    progress: Optional[Callable[[RunCell, Dict[str, Any]], None]] = None,
) -> ExperimentRun:
    """Execute every cell of the config's run table, persisting artifacts.

    Each cell runs through :func:`repro.serve.engine.execute_spec` with
    its own :class:`~repro.obs.Telemetry` bundle (a fresh metrics
    registry plus a tracer writing ``spans.jsonl`` in the run directory).
    A cell that raises records an ``error`` artifact and the sweep moves
    on; with ``resume`` (the default) a rerun skips cells whose artifact
    says ``ok`` and retries the rest, so a crashed sweep picks up where
    it stopped.  ``progress`` (when given) is called with every cell's
    artifact as it lands — the CLI's live narration hook.
    """
    from ..serve.engine import execute_spec  # deferred: execution layer
    from . import Telemetry  # deferred: avoid a cycle through __init__

    cells = expand_run_table(config)
    directory = os.path.join(results_root, config.name)
    os.makedirs(directory, exist_ok=True)
    _write_json(
        os.path.join(directory, MANIFEST_FILE),
        {"config": config.to_mapping(), "cells": len(cells)},
    )
    run = ExperimentRun(directory=directory, total=len(cells))
    for cell in cells:
        run_dir = os.path.join(directory, cell.run_id)
        result_path = os.path.join(run_dir, RESULT_FILE)
        if resume:
            prior = _completed(result_path)
            if prior is not None:
                run.skipped += 1
                run.results.append(prior)
                if progress is not None:
                    progress(cell, prior)
                continue
        os.makedirs(run_dir, exist_ok=True)
        _write_json(
            os.path.join(run_dir, SPEC_FILE),
            {
                "run_id": cell.run_id,
                "index": cell.index,
                "rep": cell.rep,
                "overrides": dict(cell.overrides),
                "spec": dict(cell.spec_mapping),
            },
        )
        spec = cell.build_spec()
        telemetry = Telemetry.to_file(os.path.join(run_dir, SPANS_FILE))
        artifact: Dict[str, Any] = {
            "run_id": cell.run_id,
            "timestamp": bench_timestamp(timestamp),
            "machine": machine_fingerprint(),
        }
        began = time.perf_counter()
        try:
            result = execute_spec(spec, telemetry=telemetry)
        except Exception as exc:  # a crashed cell must not kill the sweep
            artifact.update(
                status="error",
                error=f"{type(exc).__name__}: {exc}",
                wall_seconds=round(time.perf_counter() - began, 6),
            )
            run.failed += 1
        else:
            wall = time.perf_counter() - began
            artifact.update(
                status="ok",
                error=None,
                wall_seconds=round(wall, 6),
                summary=_result_summary(result, wall),
            )
            run.executed += 1
        finally:
            telemetry.close()
            telemetry.metrics.write_json(os.path.join(run_dir, METRICS_FILE))
        _write_json(result_path, artifact)
        run.results.append(artifact)
        if progress is not None:
            progress(cell, artifact)
    return run


# ----------------------------------------------------------------------
# the report stage: join artifacts + metrics + spans
# ----------------------------------------------------------------------
def load_runs(experiment_dir: str) -> List[Dict[str, Any]]:
    """Load every run's persisted artifacts from one experiment directory.

    Returns one dict per run (sorted by run id) carrying the ``spec``
    manifest, the ``result`` artifact, the metrics ``snapshot`` (or
    ``None``), and the parsed ``spans`` list (possibly empty).
    """
    if not os.path.isdir(experiment_dir):
        raise ValueError(f"not an experiment directory: {experiment_dir!r}")
    runs: List[Dict[str, Any]] = []
    for entry in sorted(os.listdir(experiment_dir)):
        run_dir = os.path.join(experiment_dir, entry)
        spec_path = os.path.join(run_dir, SPEC_FILE)
        if not os.path.isfile(spec_path):
            continue
        record: Dict[str, Any] = {"run_id": entry, "spec": _read_json(spec_path)}
        result_path = os.path.join(run_dir, RESULT_FILE)
        record["result"] = (
            _read_json(result_path) if os.path.isfile(result_path) else None
        )
        metrics_path = os.path.join(run_dir, METRICS_FILE)
        record["snapshot"] = (
            _read_json(metrics_path) if os.path.isfile(metrics_path) else None
        )
        spans: List[Dict[str, Any]] = []
        spans_path = os.path.join(run_dir, SPANS_FILE)
        if os.path.isfile(spans_path):
            with open(spans_path, encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if line:
                        spans.append(json.loads(line))
        record["spans"] = spans
        runs.append(record)
    if not runs:
        raise ValueError(
            f"no run artifacts (no */{SPEC_FILE}) under {experiment_dir!r}"
        )
    return runs


def _md_table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """A GitHub-flavored markdown table."""
    lines = [
        "| " + " | ".join(str(h) for h in headers) + " |",
        "| " + " | ".join("---" for _ in headers) + " |",
    ]
    for row in rows:
        lines.append("| " + " | ".join(str(cell) for cell in row) + " |")
    return "\n".join(lines)


def _merge_histogram_values(values: List[Mapping[str, Any]]) -> Dict[str, Any]:
    """Sum same-family histogram snapshot values across runs.

    Snapshot buckets are cumulative per run; cumulative counts add, so
    the merged value is again a valid snapshot histogram.
    """
    buckets: Dict[str, float] = {}
    total = 0
    total_sum = 0.0
    for value in values:
        for le, count in value.get("buckets", {}).items():
            buckets[le] = buckets.get(le, 0) + count
        total += int(value.get("count", 0))
        total_sum += float(value.get("sum", 0.0))
    return {"buckets": buckets, "count": total, "sum": total_sum}


def _stddev(values: Sequence[float], mean: float) -> float:
    """Sample standard deviation (``n - 1`` denominator); 0 for n < 2."""
    if len(values) < 2:
        return 0.0
    return math.sqrt(
        sum((v - mean) ** 2 for v in values) / (len(values) - 1)
    )


def _factor_pivots(
    runs: List[Dict[str, Any]], factor_names: Sequence[str]
) -> List[Tuple[str, Any, int, float, float, float]]:
    """``(factor, level, runs, mean rec/s, stddev rec/s, mean wall s)`` rows.

    The dispersion column is what separates a real factor effect from
    run-to-run noise: a level whose mean sits within one stddev of its
    neighbour's is not evidence of anything.
    """
    pivots: List[Tuple[str, Any, int, float, float, float]] = []
    for factor in factor_names:
        grouped: Dict[Any, List[Tuple[float, float]]] = {}
        for run in runs:
            result = run.get("result") or {}
            if result.get("status") != "ok":
                continue
            level = (run["spec"].get("overrides") or {}).get(factor)
            summary = result.get("summary") or {}
            grouped.setdefault(level, []).append(
                (
                    float(summary.get("records_per_s", 0.0)),
                    float(result.get("wall_seconds", 0.0)),
                )
            )
        for level in sorted(grouped, key=repr):
            points = grouped[level]
            rates = [p[0] for p in points]
            mean_rate = sum(rates) / len(rates)
            pivots.append(
                (
                    factor,
                    level,
                    len(points),
                    mean_rate,
                    _stddev(rates, mean_rate),
                    sum(p[1] for p in points) / len(points),
                )
            )
    return pivots


def render_experiment_report(
    runs: List[Dict[str, Any]],
    name: str = "experiment",
    fmt: str = "md",
) -> str:
    """One aggregate document joining artifacts, metrics, and spans.

    Sections: the run table (factors, status, throughput, wall time),
    throughput pivoted by factor level, per-stage span latency across
    every run, metric-histogram quantiles estimated from the persisted
    snapshot buckets (no raw spans needed), aggregated traffic counters,
    and any failures.  ``fmt`` is ``"md"`` or ``"html"`` (the HTML is a
    minimal standalone wrapper for CI artifact browsing).
    """
    if fmt not in ("md", "html"):
        raise ValueError(f"report format must be 'md' or 'html', got {fmt!r}")
    factor_names: List[str] = []
    for run in runs:
        for factor in run["spec"].get("overrides") or {}:
            if factor not in factor_names:
                factor_names.append(factor)
    ok_runs = [r for r in runs if (r.get("result") or {}).get("status") == "ok"]
    failures = [
        (r["run_id"], (r.get("result") or {}).get("error") or "no result artifact")
        for r in runs
        if (r.get("result") or {}).get("status") != "ok"
    ]
    machines = {
        json.dumps((r.get("result") or {}).get("machine"), sort_keys=True)
        for r in runs
        if (r.get("result") or {}).get("machine")
    }

    blocks: List[str] = [f"# Experiment report — {name}", ""]
    blocks.append(
        f"- runs: {len(runs)} ({len(ok_runs)} ok, {len(failures)} failed)"
    )
    blocks.append(f"- factors: {', '.join(factor_names) or '(none)'}")
    for machine in sorted(machines):
        blocks.append(f"- machine: {machine}")
    blocks.append("")

    headers = ["run"] + factor_names + [
        "rep", "status", "records", "rec/s", "wall s", "deviation",
    ]
    rows = []
    for run in runs:
        spec = run["spec"]
        result = run.get("result") or {}
        summary = result.get("summary") or {}
        overrides = spec.get("overrides") or {}
        rows.append(
            [run["run_id"]]
            + [overrides.get(f, "") for f in factor_names]
            + [
                spec.get("rep", 0),
                result.get("status", "missing"),
                summary.get("records", "-"),
                summary.get("records_per_s", "-"),
                (
                    f"{result['wall_seconds']:.3f}"
                    if result.get("wall_seconds") is not None
                    else "-"
                ),
                summary.get("deviation", "-"),
            ]
        )
    blocks += ["## Run table", "", _md_table(headers, rows), ""]

    pivots = _factor_pivots(runs, factor_names)
    if pivots:
        blocks += [
            "## Throughput by factor",
            "",
            _md_table(
                [
                    "factor", "level", "runs", "mean rec/s",
                    "stddev rec/s", "mean wall s",
                ],
                [
                    (f, lvl, n, f"{rps:,.1f}", f"{dev:,.1f}", f"{wall:.3f}")
                    for f, lvl, n, rps, dev, wall in pivots
                ],
            ),
            "",
        ]

    all_spans = [span for run in ok_runs for span in run["spans"]]
    summary_by_stage = stage_summary(all_spans)
    if summary_by_stage:
        blocks += [
            "## Stage latency across runs (spans, ms)",
            "",
            _md_table(
                ["stage", "count", "p50", "p95", "mean", "total"],
                [
                    (
                        stage,
                        int(stats["count"]),
                        f"{stats['p50'] * 1000:.2f}",
                        f"{stats['p95'] * 1000:.2f}",
                        f"{stats['mean'] * 1000:.2f}",
                        f"{stats['total'] * 1000:.2f}",
                    )
                    for stage, stats in summary_by_stage.items()
                ],
            ),
            "",
        ]

    # Join the metrics snapshots: histogram quantiles straight from the
    # persisted bucket counts (satellite: no raw spans required), plus
    # the counter families summed across runs.
    histograms: Dict[Tuple[str, str], List[Mapping[str, Any]]] = {}
    counters: Dict[Tuple[str, str], float] = {}
    for run in ok_runs:
        snapshot = run.get("snapshot") or {}
        for family, body in snapshot.items():
            for label, value in body.get("values", {}).items():
                key = (family, label)
                if body.get("type") == "histogram":
                    histograms.setdefault(key, []).append(value)
                elif body.get("type") == "counter":
                    counters[key] = counters.get(key, 0.0) + float(value)
    if histograms:
        rows = []
        for (family, label), values in sorted(histograms.items()):
            merged = _merge_histogram_values(values)
            if not merged["count"]:
                continue
            rows.append(
                (
                    family + label,
                    merged["count"],
                    f"{snapshot_quantile(merged, 0.5) * 1000:.2f}",
                    f"{snapshot_quantile(merged, 0.95) * 1000:.2f}",
                )
            )
        if rows:
            blocks += [
                "## Metric histograms (snapshot buckets, ms)",
                "",
                _md_table(["histogram", "count", "p50", "p95"], rows),
                "",
            ]
    if counters:
        blocks += [
            "## Traffic counters (summed across runs)",
            "",
            _md_table(
                ["counter", "total"],
                [
                    (family + label, int(total) if total.is_integer() else total)
                    for (family, label), total in sorted(counters.items())
                ],
            ),
            "",
        ]

    if failures:
        blocks += ["## Failures", ""]
        blocks += [f"- `{run_id}`: {error}" for run_id, error in failures]
        blocks.append("")

    text = "\n".join(blocks).rstrip() + "\n"
    if fmt == "html":
        escaped = (
            text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
        )
        return (
            "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">"
            f"<title>{name}</title></head>\n"
            f"<body><pre>\n{escaped}</pre></body></html>\n"
        )
    return text


# ----------------------------------------------------------------------
# the trajectory regression gate
# ----------------------------------------------------------------------
def load_trajectory(path: str) -> Dict[str, Any]:
    """Load and validate one ``BENCH_*.json`` perf-trajectory file."""
    try:
        payload = _read_json(path)
    except OSError as exc:
        raise ValueError(f"cannot read trajectory file {path!r}: {exc}") from None
    except json.JSONDecodeError as exc:
        raise ValueError(f"trajectory file {path!r} is not valid JSON: {exc}") from None
    if not isinstance(payload, dict) or not isinstance(payload.get("entries"), list):
        raise ValueError(f"{path!r} is not a benchmark trajectory file")
    for index, entry in enumerate(payload["entries"]):
        if (
            not isinstance(entry, dict)
            or not isinstance(entry.get("timestamp"), str)
            or not isinstance(entry.get("machine"), dict)
            or not isinstance(entry.get("metrics"), dict)
        ):
            raise ValueError(
                f"{path!r}: entry {index} is not a "
                f"{{timestamp, machine, metrics}} record"
            )
    return payload


def flatten_metrics(
    metrics: Mapping[str, Any], prefix: str = ""
) -> Dict[str, float]:
    """Numeric leaves of a nested metrics dict as dotted keys."""
    flat: Dict[str, float] = {}
    for key, value in metrics.items():
        dotted = f"{prefix}{key}"
        if isinstance(value, Mapping):
            flat.update(flatten_metrics(value, prefix=dotted + "."))
        elif isinstance(value, (int, float)) and not isinstance(value, bool):
            flat[dotted] = float(value)
    return flat


@dataclass
class GateReport:
    """One gate evaluation: verdict plus the rendered comparison."""

    ok: bool
    text: str
    compared: int = 0
    regressions: int = 0
    skipped: Optional[str] = None


def _measure_overlap_quick(seed: int = 0) -> Dict[str, Any]:
    """A fresh quick overlap measurement, key-compatible with
    ``bench_overlap.py --quick`` trajectory entries."""
    from ..streaming import StreamConfig, make_stream, run_stream_session

    n_windows, window_size = 6, 32
    metrics: Dict[str, Any] = {
        "n_windows": n_windows, "window_size": window_size, "quick": True,
    }
    for shards in (2, 4):
        rates: Dict[str, float] = {}
        for overlap, key in (
            (False, "serial_records_per_s"),
            (True, "overlap_records_per_s"),
        ):
            source = make_stream(
                "wine",
                kind="stationary",
                n_records=n_windows * window_size,
                seed=seed,
            )
            config = StreamConfig(
                k=3,
                window_size=window_size,
                compute_privacy=False,
                shards=shards,
                shard_backend="thread",
                overlap=overlap,
                seed=seed,
            )
            began = time.perf_counter()
            result = run_stream_session(source, config)
            wall = time.perf_counter() - began
            rates[key] = round(result.records_processed / max(wall, 1e-9), 1)
        rates["speedup"] = round(
            rates["overlap_records_per_s"]
            / max(rates["serial_records_per_s"], 1e-9),
            3,
        )
        metrics[f"shards={shards}"] = rates
    return metrics


def _measure_ingest_quick(seed: int = 0) -> Dict[str, Any]:
    """A fresh quick ingest measurement, key-compatible with
    ``bench_ingest.py --quick`` trajectory entries."""
    from ..sharding import ShardPlan
    from ..streaming import IngestPlane, make_stream, skewed

    n_records, window_size = 4_000, 64
    records = list(make_stream("wine", n_records=n_records, seed=seed))
    metrics: Dict[str, Any] = {
        "n_records": n_records, "window_size": window_size, "quick": True,
    }
    for skew, watermark in ((0, 0), (4, 4), (16, 16), (16, 0), (64, 16)):
        arrivals = list(skewed(records, skew, seed=seed)) if skew else records
        plane = IngestPlane(
            ShardPlan(4, "round_robin", n_parties=3),
            window_kind="tumbling",
            window_size=window_size,
            providers=["provider-0", "provider-1", "coordinator"],
            watermark_delay=watermark,
            late_policy="readmit",
        )
        seal_lags = []
        began = time.perf_counter()
        for record in arrivals:
            for window in plane.push(record):
                seal_lags.append(
                    plane.frontier - plane.assigner.last_seq(window.index)
                )
        plane.finish()
        wall = time.perf_counter() - began
        stats = plane.stats()
        metrics[f"skew={skew},watermark={watermark}"] = {
            "records_per_s": round(len(records) / max(wall, 1e-9), 1),
            "seal_lag_records": round(
                sum(seal_lags) / len(seal_lags) if seal_lags else 0.0, 2
            ),
            "late": stats.late,
            "max_skew": stats.max_skew,
        }
    return metrics


def _measure_serve_quick(seed: int = 0) -> Dict[str, Any]:
    """A fresh quick serve measurement, key-compatible with
    ``bench_serve.py --quick`` trajectory entries."""
    from ..serve import MiningService, SessionSpec

    n_sessions, n_windows, window_size = 6, 3, 32
    specs = []
    for index in range(n_sessions):
        tenant = "acme" if index % 2 == 0 else "globex"
        if index % 2 == 0:
            specs.append(
                SessionSpec(
                    kind="batch", dataset="wine", k=3, seed=index, tenant=tenant
                )
            )
        else:
            specs.append(
                SessionSpec(
                    kind="stream",
                    dataset="wine",
                    k=3,
                    windows=n_windows,
                    window_size=window_size,
                    compute_privacy=False,
                    seed=index,
                    tenant=tenant,
                )
            )

    def run(max_inflight, backend):
        began = time.perf_counter()
        with MiningService(
            max_inflight=max_inflight,
            shard_backend=backend,
            shard_workers=max(2, max_inflight // 2),
        ) as service:
            service.run(specs)
            stats = service.stats()
        return time.perf_counter() - began, stats.pool.utilization

    metrics: Dict[str, Any] = {
        "n_sessions": n_sessions,
        "n_windows": n_windows,
        "window_size": window_size,
        "backend": "thread",
        "quick": True,
    }
    base_wall, base_util = run(1, "serial")
    metrics["inflight=1 (serial)"] = {
        "sessions_per_s": round(n_sessions / base_wall, 2),
        "speedup": 1.0,
        "pool_utilization": round(base_util, 3),
    }
    for level in (1, 4):
        if level == 1:
            continue
        wall, util = run(level, "thread")
        metrics[f"inflight={level}"] = {
            "sessions_per_s": round(n_sessions / wall, 2),
            "speedup": round(base_wall / wall, 3),
            "pool_utilization": round(util, 3),
        }
    return metrics


def _measure_cluster_quick(seed: int = 0) -> Dict[str, Any]:
    """A fresh quick cluster measurement, key-compatible with
    ``bench_cluster.py --quick`` trajectory entries."""
    import shutil
    import tempfile

    from ..cluster import ClusterController
    from ..serve import MiningService, SessionSpec

    n_sessions, n_windows, window_size = 6, 3, 32
    specs = [
        SessionSpec(
            kind="stream",
            dataset="wine",
            k=3,
            windows=n_windows,
            window_size=window_size,
            compute_privacy=False,
            seed=seed + index,
            tenant="acme" if index % 2 == 0 else "globex",
        )
        for index in range(n_sessions)
    ]
    metrics: Dict[str, Any] = {
        "n_sessions": n_sessions,
        "n_windows": n_windows,
        "window_size": window_size,
        "quick": True,
    }
    began = time.perf_counter()
    with MiningService(
        max_inflight=2, shard_backend="thread", shard_workers=2
    ) as service:
        service.run(specs)
    single_wall = time.perf_counter() - began
    metrics["single_engine"] = {
        "sessions_per_s": round(n_sessions / max(single_wall, 1e-9), 2),
    }
    began = time.perf_counter()
    with ClusterController(
        replicas=2, max_inflight=2, shard_backend="thread", shard_workers=2
    ) as cluster:
        cluster.run(specs)
    wall = time.perf_counter() - began
    metrics["replicas=2"] = {
        "sessions_per_s": round(n_sessions / max(wall, 1e-9), 2),
        "speedup": round(single_wall / max(wall, 1e-9), 3),
    }
    tmp = tempfile.mkdtemp(prefix="repro-cluster-quick-")
    try:
        began = time.perf_counter()
        with ClusterController(
            replicas=2, max_inflight=2, checkpoint_dir=tmp, checkpoint_every=1
        ) as cluster:
            session = cluster.submit(
                SessionSpec(
                    kind="stream",
                    dataset="wine",
                    k=3,
                    windows=8,
                    window_size=window_size,
                    compute_privacy=False,
                    seed=seed,
                )
            )
            hops = 0
            while hops < 4 and not session.done():
                if cluster.migrate(
                    session.session_id, (session.replica + 1) % 2
                ) is None:
                    break
                hops += 1
            session.wait()
        wall = time.perf_counter() - began
        metrics["migration"] = {
            "hops": hops,
            "migrations_per_s": round(hops / max(wall, 1e-9), 2),
        }
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
    return metrics


#: benches the gate can measure fresh itself; others need ``--current``
_BUILTIN_MEASUREMENTS: Dict[str, Callable[[], Dict[str, Any]]] = {
    "overlap": _measure_overlap_quick,
    "ingest": _measure_ingest_quick,
    "serve": _measure_serve_quick,
    "cluster": _measure_cluster_quick,
}


def run_gate(
    baseline_path: str,
    current_path: Optional[str] = None,
    tolerance: float = 0.20,
    allow_machine_mismatch: bool = False,
    write_current: Optional[str] = None,
    timestamp: Optional[str] = None,
) -> GateReport:
    """Compare a fresh measurement against a committed perf trajectory.

    The baseline is the *latest* entry of ``baseline_path`` whose machine
    fingerprint matches this host (entries from other machines are never
    treated as a trend; ``allow_machine_mismatch`` lifts that for
    containers whose fingerprints churn).  The current measurement comes
    from ``current_path`` (the latest entry of another trajectory file,
    e.g. one the benchmark just wrote with ``--out``) or, for benches
    with a built-in quick measurement, from running one now.  Every
    throughput metric (``*per_s`` keys present on both sides) must stay
    above ``baseline * (1 - tolerance)``; any that does not is a
    regression and the gate fails.
    """
    if not 0.0 <= tolerance < 1.0:
        raise ValueError(f"tolerance must be in [0, 1), got {tolerance!r}")
    trajectory = load_trajectory(baseline_path)
    bench = trajectory.get("bench", "?")
    fingerprint = machine_fingerprint()

    if current_path is not None:
        current_entries = load_trajectory(current_path)["entries"]
        if not current_entries:
            raise ValueError(f"current trajectory {current_path!r} has no entries")
        current = current_entries[-1]["metrics"]
        current_label = f"latest entry of {current_path}"
    else:
        measure = _BUILTIN_MEASUREMENTS.get(bench)
        if measure is None:
            raise ValueError(
                f"no built-in quick measurement for bench {bench!r}; pass "
                f"--current with a freshly recorded trajectory file "
                f"(available built-ins: {', '.join(sorted(_BUILTIN_MEASUREMENTS))})"
            )
        current = measure()
        current_label = f"fresh quick {bench} run"
    if write_current:
        _write_json(
            write_current,
            {
                "bench": bench,
                "entries": [
                    {
                        "timestamp": bench_timestamp(timestamp),
                        "machine": fingerprint,
                        "metrics": current,
                    }
                ],
            },
        )

    candidates = [
        entry
        for entry in trajectory["entries"]
        if allow_machine_mismatch or entry["machine"] == fingerprint
    ]
    if not candidates:
        return GateReport(
            ok=True,
            skipped="no matching baseline",
            text=(
                f"gate: PASS (vacuous) — {baseline_path} has no entries matching "
                f"this machine's fingerprint {fingerprint}; nothing comparable. "
                f"Use --allow-machine-mismatch to compare anyway."
            ),
        )
    baseline = candidates[-1]
    base_flat = flatten_metrics(baseline["metrics"])
    cur_flat = flatten_metrics(current)
    keys = sorted(k for k in base_flat if "per_s" in k and k in cur_flat)
    if not keys:
        return GateReport(
            ok=True,
            skipped="no throughput metrics",
            text=(
                f"gate: PASS (vacuous) — baseline entry "
                f"{baseline['timestamp']} and {current_label} share no "
                f"'*per_s' throughput metrics."
            ),
        )

    rows = []
    regressions = 0
    for key in keys:
        base_value, cur_value = base_flat[key], cur_flat[key]
        drop = (base_value - cur_value) / base_value if base_value > 0 else 0.0
        regressed = drop > tolerance
        regressions += regressed
        rows.append(
            [
                key,
                f"{base_value:,.1f}",
                f"{cur_value:,.1f}",
                f"{-drop * 100:+.1f}%",
                "REGRESSION" if regressed else "ok",
            ]
        )
    verdict = "FAIL" if regressions else "PASS"
    lines = [
        f"gate: {verdict} — {bench} vs baseline {baseline['timestamp']} "
        f"({current_label}, tolerance {tolerance * 100:.0f}%)",
        _md_table(["metric", "baseline", "current", "change", "verdict"], rows),
    ]
    return GateReport(
        ok=not regressions,
        text="\n".join(lines),
        compared=len(keys),
        regressions=regressions,
    )


@dataclass
class DiffReport:
    """One sweep-vs-sweep comparison: verdict plus the rendered table."""

    ok: bool
    text: str
    compared: int = 0
    regressions: int = 0
    improvements: int = 0


def run_diff(
    dir_a: str, dir_b: str, tolerance: float = 0.20
) -> DiffReport:
    """Compare two sweep result directories cell by cell.

    Cells are matched by run id (the deterministic
    ``<factors>…-rep<N>`` directory name, so the same config's sweeps
    line up automatically); within each matched pair, every shared
    throughput metric (``*per_s`` keys of the persisted result
    summaries) is compared B-vs-A.  A drop beyond ``tolerance`` is a
    ``REGRESSION`` (and fails the diff, exit 1 from the CLI), a gain
    beyond it is highlighted ``improved``, anything else is ``ok``.
    Cells present in only one directory, and cells whose artifact is an
    error, are listed but never compared.
    """
    if not 0.0 <= tolerance < 1.0:
        raise ValueError(f"tolerance must be in [0, 1), got {tolerance!r}")
    runs_a = {run["run_id"]: run for run in load_runs(dir_a)}
    runs_b = {run["run_id"]: run for run in load_runs(dir_b)}
    shared = sorted(set(runs_a) & set(runs_b))
    notes: List[str] = []
    for run_id in sorted(set(runs_a) - set(runs_b)):
        notes.append(f"only in A: {run_id}")
    for run_id in sorted(set(runs_b) - set(runs_a)):
        notes.append(f"only in B: {run_id}")

    def summary(run: Mapping[str, Any]) -> Optional[Dict[str, float]]:
        result = run.get("result")
        if not isinstance(result, Mapping) or result.get("status") != "ok":
            return None
        return flatten_metrics(result.get("summary") or {})

    rows: List[List[Any]] = []
    compared = regressions = improvements = 0
    for run_id in shared:
        flat_a = summary(runs_a[run_id])
        flat_b = summary(runs_b[run_id])
        if flat_a is None or flat_b is None:
            side = "A" if flat_a is None else "B"
            notes.append(f"not completed in {side}: {run_id}")
            continue
        keys = sorted(k for k in flat_a if "per_s" in k and k in flat_b)
        for key in keys:
            value_a, value_b = flat_a[key], flat_b[key]
            change = (value_b - value_a) / value_a if value_a > 0 else 0.0
            if change < -tolerance:
                verdict = "REGRESSION"
                regressions += 1
            elif change > tolerance:
                verdict = "improved"
                improvements += 1
            else:
                verdict = "ok"
            compared += 1
            rows.append(
                [
                    run_id,
                    key,
                    f"{value_a:,.1f}",
                    f"{value_b:,.1f}",
                    f"{change * 100:+.1f}%",
                    verdict,
                ]
            )
    verdict = "FAIL" if regressions else "PASS"
    lines = [
        f"diff: {verdict} — {compared} cells compared "
        f"(A={dir_a}, B={dir_b}, tolerance {tolerance * 100:.0f}%): "
        f"{regressions} regressions, {improvements} improvements",
    ]
    if rows:
        lines.append(
            _md_table(["cell", "metric", "A", "B", "change", "verdict"], rows)
        )
    else:
        lines.append("(no shared '*per_s' metrics to compare)")
    if notes:
        lines.append("")
        lines.extend(notes)
    return DiffReport(
        ok=not regressions,
        text="\n".join(lines),
        compared=compared,
        regressions=regressions,
        improvements=improvements,
    )
