"""Unified telemetry: metrics registry, tracing spans, latency reports.

``repro.obs`` is the dependency-free observability layer under the whole
stack.  It has three parts:

* :mod:`repro.obs.metrics` — a deterministic :class:`MetricsRegistry` of
  ``Counter``/``Gauge``/``Histogram`` families with Prometheus text and
  JSON export;
* :mod:`repro.obs.tracing` — a :class:`Tracer` producing nested
  :class:`Span` records (monotonic durations, explicit parent ids,
  key/value attrs) into a JSONL or in-memory sink;
* :mod:`repro.obs.report` — span-file aggregation into per-stage latency
  tables (p50/p95);
* :mod:`repro.obs.experiment` — declarative sweep runner (factors x
  levels x repetitions -> persisted per-run artifacts), joined
  metrics+span reports, and the trajectory regression gate.

The :class:`Telemetry` bundle below is what the execution layers carry:
one tracer + one registry + the parent span of the current scope.  It
plugs into :class:`repro.streaming.StreamConfig` and
:class:`repro.serve.SessionSpec` via their ``telemetry`` field and into
:class:`repro.serve.MiningService` via its constructor; absent (or with
the tracer disabled) every instrumented call site is a guarded no-op, so
results stay bit-identical and throughput untouched.

Layering rule: this package imports only the standard library *at import
time*, so every other ``repro`` subpackage may import it without cycles;
the experiment runner's execution-layer imports (``repro.serve``,
``repro.streaming``) are deferred to call time.
"""

from __future__ import annotations

from typing import Any, Optional

from .collect import (
    cluster_collector,
    ingest_collector,
    pool_collector,
    service_collector,
)
from .experiment import (
    DiffReport,
    ExperimentConfig,
    GateReport,
    expand_run_table,
    load_experiment_config,
    load_runs,
    render_experiment_report,
    run_diff,
    run_experiment,
    run_gate,
)
from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    bucket_quantile,
    global_registry,
    snapshot_quantile,
)
from .tracing import (
    NULL_TRACER,
    JsonlSink,
    ListSink,
    NullSpan,
    NullTracer,
    Span,
    Tracer,
)

__all__ = [
    "Telemetry",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_BUCKETS",
    "bucket_quantile",
    "snapshot_quantile",
    "global_registry",
    "ExperimentConfig",
    "GateReport",
    "DiffReport",
    "load_experiment_config",
    "expand_run_table",
    "run_experiment",
    "load_runs",
    "render_experiment_report",
    "run_gate",
    "run_diff",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Span",
    "NullSpan",
    "JsonlSink",
    "ListSink",
    "cluster_collector",
    "ingest_collector",
    "pool_collector",
    "service_collector",
]


class Telemetry:
    """One scope's telemetry context: tracer + metrics + parent span.

    ``tracer`` defaults to the shared disabled :data:`NULL_TRACER` (spans
    are free no-ops — "telemetry off"); ``metrics`` defaults to a fresh
    per-bundle :class:`MetricsRegistry` so counters always work.
    ``parent`` is the span new root-level spans of this scope should hang
    under; :meth:`child` re-scopes the bundle one level deeper, which is
    how a serving engine threads its ``drive`` span into the session it
    executes — each scope gets its own lightweight bundle sharing one
    tracer and one registry.
    """

    __slots__ = ("tracer", "metrics", "parent")

    def __init__(
        self,
        tracer: Optional[Any] = None,
        metrics: Optional[MetricsRegistry] = None,
        parent: Optional[Any] = None,
    ) -> None:
        self.tracer = NULL_TRACER if tracer is None else tracer
        self.metrics = MetricsRegistry() if metrics is None else metrics
        self.parent = parent

    @property
    def enabled(self) -> bool:
        """Whether spans are actually recorded (the tracer's switch)."""
        return self.tracer.enabled

    @classmethod
    def to_file(
        cls, trace_path: str, metrics: Optional[MetricsRegistry] = None
    ) -> "Telemetry":
        """A bundle whose spans append to ``trace_path`` as JSONL."""
        return cls(tracer=Tracer(JsonlSink(trace_path)), metrics=metrics)

    @classmethod
    def in_memory(cls) -> "Telemetry":
        """A bundle collecting spans in a :class:`ListSink` (tests)."""
        return cls(tracer=Tracer(ListSink()))

    @classmethod
    def disabled(cls) -> "Telemetry":
        """Telemetry *off*: counters work, spans are shared no-ops."""
        return cls()

    def span(self, name: str, **attrs: Any):
        """Open a span parented at this scope's level."""
        return self.tracer.span(name, parent=self.parent, **attrs)

    def child(self, parent: Any) -> "Telemetry":
        """The same tracer/registry, re-scoped under ``parent``."""
        scoped = Telemetry.__new__(Telemetry)
        scoped.tracer = self.tracer
        scoped.metrics = self.metrics
        scoped.parent = parent
        return scoped

    def close(self) -> None:
        """Flush and close the tracer's sink (idempotent)."""
        self.tracer.close()

    def __repr__(self) -> str:  # keep dataclass reprs holding one readable
        state = "on" if self.enabled else "off"
        return f"Telemetry({state})"
