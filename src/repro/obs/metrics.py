"""The metrics registry: process-wide and per-session counters.

A :class:`MetricsRegistry` holds named metric families of three kinds —
:class:`Counter` (monotone), :class:`Gauge` (set/inc/dec), and
:class:`Histogram` (fixed exponential buckets) — optionally split into
children by label sets, Prometheus-style.  Everything is dependency-free
and deterministic by construction:

* histogram buckets are *fixed* at creation (the default ladder spans
  100 microseconds to 10 seconds), so two identical runs produce
  byte-identical snapshots;
* :meth:`MetricsRegistry.snapshot` returns plain dicts of plain scalars —
  picklable, JSON-friendly, and ordered (families by name, children by
  label) so snapshot equality is meaningful;
* :meth:`MetricsRegistry.render_prometheus` emits the text exposition
  format, and :meth:`MetricsRegistry.write_json` persists the snapshot.

Mutation is lock-guarded per registry, so one registry can absorb updates
from many serving-engine driver threads without corrupting counts.
Collectors registered with :meth:`MetricsRegistry.register_collector` run
at snapshot time — the hook existing stat holders (``ServiceStats``,
``MeteredBackend``, ``IngestPlane``) use to publish their ledgers without
changing their own public dicts.
"""

from __future__ import annotations

import json
import threading
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "bucket_quantile",
    "snapshot_quantile",
    "global_registry",
]

#: fixed exponential bucket ladder (seconds): 100us .. 10s, then +Inf
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: a child's identity inside its family: sorted (label, value) pairs
_LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, Any]) -> _LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _format_value(value: float) -> str:
    """Render integral floats without a trailing ``.0`` (stable output)."""
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _format_labels(key: _LabelKey, extra: Sequence[Tuple[str, str]] = ()) -> str:
    pairs = list(key) + list(extra)
    if not pairs:
        return ""
    body = ",".join(f'{name}="{value}"' for name, value in pairs)
    return "{" + body + "}"


class _Metric:
    """Shared child-metric state: family name and label identity."""

    __slots__ = ("name", "labels", "_lock")

    def __init__(self, name: str, labels: _LabelKey, lock: threading.Lock) -> None:
        self.name = name
        self.labels = labels
        self._lock = lock


class Counter(_Metric):
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self, name: str, labels: _LabelKey, lock: threading.Lock) -> None:
        super().__init__(name, labels, lock)
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the count."""
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (got {amount})")
        with self._lock:
            self.value += amount


class Gauge(_Metric):
    """A value that can go up and down (occupancy, lag, utilization)."""

    __slots__ = ("value",)

    def __init__(self, name: str, labels: _LabelKey, lock: threading.Lock) -> None:
        super().__init__(name, labels, lock)
        self.value = 0.0

    def set(self, value: float) -> None:
        """Replace the gauge's value."""
        with self._lock:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (may be negative)."""
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Subtract ``amount``."""
        self.inc(-amount)


class Histogram(_Metric):
    """A fixed-bucket histogram of observations (durations, sizes).

    ``counts[i]`` counts observations ``<= bounds[i]``; the implicit final
    bucket is ``+Inf``.  Buckets are cumulative only at render time, so
    updates stay O(log buckets) via bisection-free linear scan (the ladder
    is short).
    """

    __slots__ = ("bounds", "counts", "sum", "count")

    def __init__(
        self,
        name: str,
        labels: _LabelKey,
        lock: threading.Lock,
        bounds: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, labels, lock)
        self.bounds = tuple(float(b) for b in bounds)
        if list(self.bounds) != sorted(self.bounds):
            raise ValueError(f"histogram {name} bucket bounds must be sorted")
        self.counts = [0] * (len(self.bounds) + 1)  # + the +Inf bucket
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        with self._lock:
            index = len(self.bounds)
            for i, bound in enumerate(self.bounds):
                if value <= bound:
                    index = i
                    break
            self.counts[index] += 1
            self.sum += value
            self.count += 1

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (``q`` in [0, 1]) from the buckets.

        Linear interpolation inside the bucket holding the target rank,
        Prometheus ``histogram_quantile`` style: exact to within one
        bucket width, deterministic, and computable long after the raw
        observations are gone — which is what lets reports show p95 from
        a persisted metrics snapshot instead of raw spans.  Ranks landing
        in the ``+Inf`` bucket clamp to the highest finite bound; an
        empty histogram estimates 0.0.
        """
        with self._lock:
            counts = list(self.counts)
        return bucket_quantile(self.bounds, counts, q)


class _Family:
    """One named metric family: a type, help text, and labeled children."""

    __slots__ = ("name", "kind", "help", "bounds", "children")

    def __init__(
        self, name: str, kind: str, help_text: str, bounds: Optional[Tuple[float, ...]]
    ) -> None:
        self.name = name
        self.kind = kind
        self.help = help_text
        self.bounds = bounds
        self.children: Dict[_LabelKey, _Metric] = {}


class MetricsRegistry:
    """A set of named metric families with deterministic export.

    ``counter``/``gauge``/``histogram`` are get-or-create: the first call
    fixes the family's type (and a histogram's buckets); later calls with
    the same name return the existing child for the given labels, and a
    type mismatch raises a friendly :class:`ValueError`.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: Dict[str, _Family] = {}
        self._collectors: List[Callable[["MetricsRegistry"], None]] = []

    # ------------------------------------------------------------------
    # creation
    # ------------------------------------------------------------------
    def _child(
        self,
        name: str,
        kind: str,
        help_text: str,
        labels: Dict[str, Any],
        bounds: Optional[Sequence[float]] = None,
    ) -> _Metric:
        key = _label_key(labels)
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = _Family(
                    name, kind, help_text,
                    tuple(bounds) if bounds is not None else None,
                )
                self._families[name] = family
            elif family.kind != kind:
                raise ValueError(
                    f"metric {name!r} is a {family.kind}, not a {kind}"
                )
            child = family.children.get(key)
            if child is None:
                if kind == "counter":
                    child = Counter(name, key, self._lock)
                elif kind == "gauge":
                    child = Gauge(name, key, self._lock)
                else:
                    child = Histogram(
                        name, key, self._lock,
                        family.bounds if family.bounds else DEFAULT_BUCKETS,
                    )
                family.children[key] = child
            return child

    def counter(self, name: str, help: str = "", **labels: Any) -> Counter:
        """Get or create the counter ``name`` for the given labels."""
        return self._child(name, "counter", help, labels)  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "", **labels: Any) -> Gauge:
        """Get or create the gauge ``name`` for the given labels."""
        return self._child(name, "gauge", help, labels)  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        **labels: Any,
    ) -> Histogram:
        """Get or create the histogram ``name`` for the given labels."""
        return self._child(name, "histogram", help, labels, bounds=buckets)  # type: ignore[return-value]

    def register_collector(
        self, collector: Callable[["MetricsRegistry"], None]
    ) -> None:
        """Run ``collector(self)`` at every snapshot/render.

        Collectors bridge existing stat holders into the registry without
        changing them: they read the holder's counters and ``set``/``inc``
        registry metrics just before export.
        """
        with self._lock:
            self._collectors.append(collector)

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def _run_collectors(self) -> None:
        with self._lock:
            collectors = list(self._collectors)
        for collector in collectors:
            collector(self)

    def snapshot(self) -> Dict[str, Any]:
        """A plain-dict, picklable view: ``{family: {type, help, values}}``.

        Values are keyed by the rendered label string (empty for the
        unlabeled child); histogram values are
        ``{"buckets": {le: count}, "sum": .., "count": ..}``.  Families
        and children are emitted in sorted order, so two identical runs
        produce equal snapshots.
        """
        self._run_collectors()
        out: Dict[str, Any] = {}
        with self._lock:
            for name in sorted(self._families):
                family = self._families[name]
                values: Dict[str, Any] = {}
                for key in sorted(family.children):
                    child = family.children[key]
                    label = _format_labels(key)
                    if isinstance(child, Histogram):
                        buckets: Dict[str, int] = {}
                        running = 0
                        for bound, count in zip(child.bounds, child.counts):
                            running += count
                            buckets[_format_value(bound)] = running
                        buckets["+Inf"] = running + child.counts[-1]
                        values[label] = {
                            "buckets": buckets,
                            "sum": child.sum,
                            "count": child.count,
                        }
                    else:
                        values[label] = child.value
                out[name] = {
                    "type": family.kind,
                    "help": family.help,
                    "values": values,
                }
        return out

    def render_prometheus(self) -> str:
        """The Prometheus text exposition of every family, sorted by name."""
        snap = self.snapshot()
        lines: List[str] = []
        for name, family in snap.items():
            if family["help"]:
                lines.append(f"# HELP {name} {family['help']}")
            lines.append(f"# TYPE {name} {family['type']}")
            for label, value in family["values"].items():
                if family["type"] == "histogram":
                    # Re-split the rendered label so ``le`` lands inside it.
                    bare = label[1:-1] if label else ""
                    for le, count in value["buckets"].items():
                        body = (bare + "," if bare else "") + f'le="{le}"'
                        lines.append(f"{name}_bucket{{{body}}} {count}")
                    lines.append(
                        f"{name}_sum{label} {_format_value(value['sum'])}"
                    )
                    lines.append(f"{name}_count{label} {value['count']}")
                else:
                    lines.append(f"{name}{label} {_format_value(value)}")
        return "\n".join(lines) + ("\n" if lines else "")

    def to_json(self, indent: int = 2) -> str:
        """The snapshot as a JSON document."""
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def write_json(self, path: str) -> None:
        """Persist the snapshot to ``path`` as JSON."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json() + "\n")


def bucket_quantile(
    bounds: Sequence[float], counts: Sequence[int], q: float
) -> float:
    """The ``q``-quantile of a fixed-bucket histogram (non-cumulative
    ``counts``; ``counts[len(bounds)]`` is the ``+Inf`` bucket).

    Shared core of :meth:`Histogram.quantile` and
    :func:`snapshot_quantile`.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    total = sum(counts)
    if total == 0:
        return 0.0
    target = q * total
    cumulative = 0.0
    for index, count in enumerate(counts):
        previous = cumulative
        cumulative += count
        if cumulative >= target and count > 0:
            if index >= len(bounds):
                # Target rank fell past the last finite bound: the best
                # deterministic answer the ladder can give is that bound.
                return float(bounds[-1]) if bounds else 0.0
            lower = float(bounds[index - 1]) if index > 0 else 0.0
            upper = float(bounds[index])
            fraction = (target - previous) / count if count else 0.0
            return lower + (upper - lower) * min(max(fraction, 0.0), 1.0)
    return float(bounds[-1]) if bounds else 0.0


def snapshot_quantile(value: Mapping[str, Any], q: float) -> float:
    """The ``q``-quantile of one *snapshot* histogram value.

    Takes the ``{"buckets": {le: cumulative}, "count": ..}`` shape that
    :meth:`MetricsRegistry.snapshot` emits (and ``write_json``
    persists), so reports can estimate p95 from a metrics file alone.
    """
    buckets = value.get("buckets", {})
    pairs = sorted(
        (
            (float("inf") if le == "+Inf" else float(le), int(cum))
            for le, cum in buckets.items()
        ),
    )
    bounds = [le for le, _ in pairs if le != float("inf")]
    counts: list = []
    previous = 0
    for _, cum in pairs:
        counts.append(max(cum - previous, 0))
        previous = max(cum, previous)
    if len(counts) == len(bounds):  # no +Inf bucket recorded
        counts.append(0)
    return bucket_quantile(bounds, counts, q)


#: the process-wide default registry
_GLOBAL = MetricsRegistry()


def global_registry() -> MetricsRegistry:
    """The process-wide registry (sessions default to their own)."""
    return _GLOBAL
