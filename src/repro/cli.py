"""Command-line entry point: regenerate any paper figure from the terminal.

Usage (after ``pip install -e .``)::

    repro datasets                 # list the 12 synthetic UCI stand-ins
    repro fig2 --dataset diabetes  # optimized vs random privacy histogram
    repro fig3 --rounds 10         # optimality rate vs number of parties
    repro fig4                     # minimum-parties bound
    repro fig5 --repeats 2         # KNN accuracy deviations (full protocol)
    repro fig6 --repeats 1         # SVM(RBF) accuracy deviations
    repro risk                     # eq.(1)/(2) sweep + identifiability MC
    repro session --dataset wine   # one verbose end-to-end protocol run
    repro stream --dataset wine --windows 20 --drift abrupt
                                   # online SAP over a drifting stream
    repro stream --dataset wine --shards 4 --shard-backend process
                                   # same pipeline, sharded across workers
    repro stream --dataset wine --shards 4 --shard-backend thread --overlap
                                   # pipelined rounds: round N+1 transforms
                                   # overlap round N predictions
    repro stream --dataset wine --skew 3 --watermark 4 --late-policy readmit
                                   # out-of-order arrivals, watermark-sealed
                                   # windows, late records readmitted
    repro stream --windows 40 --checkpoint-dir ckpts --checkpoint-every 8
                                   # durable session: a versioned checkpoint
                                   # every 8 windows
    repro stream --resume-from ckpts/session-w00016.ckpt --json
                                   # restore and finish; output bit-identical
                                   # to the uninterrupted run
    repro checkpoint inspect ckpts/session-w00016.ckpt
                                   # schema version, fingerprint, progress
    repro checkpoint inspect ckpts --retain 2
                                   # list a checkpoint directory, pruning
                                   # each session down to its newest 2
    repro serve --sessions 8 --shards 4
                                   # many concurrent sessions, one shared pool
    repro serve --workload workload.json --json
                                   # run a JSON workload file, emit JSON
    repro serve --checkpoint-dir ckpts --checkpoint-every 4
                                   # durable serving: Ctrl-C parks live
                                   # sessions and prints resume hints
    repro cluster --replicas 3 --placement least_loaded
                                   # same workload across 3 engine replicas
    repro cluster --replicas 2 --migrate-every 2 --json
                                   # force live migrations mid-run; results
                                   # stay bit-identical to a single engine
    repro cluster --backend process --replicas 2 --checkpoint-dir ckpts
                                   # each replica is its own OS process;
                                   # checkpoints migrate over the wire and
                                   # a killed replica's sessions recover on
                                   # the survivors, still bit-identical
    repro cluster --serve --workload workload.json --poll-interval 0.5
                                   # long-running mode: keep admitting
                                   # sessions appended to the workload file
    repro experiment diff results/a results/b
                                   # cell-by-cell throughput diff of two
                                   # sweep directories (exit 1 on regression)
    repro stream --shards 4 --overlap --trace-out spans.jsonl \\
                 --metrics-out metrics.json
                                   # telemetry: tracing spans + metrics export
    repro report spans.jsonl       # per-stage / per-round latency tables
    repro report results/quick     # merge every spans.jsonl under a dir
    repro experiment run examples/experiment_quick.json
                                   # declarative sweep: factors x levels x
                                   # reps -> per-run artifact directories
    repro experiment report results/quick --out report.md
                                   # join metrics + spans into one report
    repro experiment gate --baseline BENCH_overlap.json
                                   # fail (exit 1) on >20% throughput drop
                                   # vs the committed perf trajectory

Every command accepts ``--seed``; heavier ones accept budget flags so a
quick look stays quick.  ``session``, ``stream``, and ``serve`` accept
``--json`` for machine-readable output and share ``-v/--verbose`` /
``-q/--quiet`` (library logs go to stderr under the ``repro.*`` logger
namespace — the library itself never prints).  Errors such as an unknown
dataset name or an unwritable ``--trace-out`` path exit with code 2 and a
one-line message rather than a traceback.
"""

from __future__ import annotations

import argparse
import json
import logging
import os
import shutil
import sys
import tempfile
import time
from concurrent.futures import CancelledError
from dataclasses import replace as dataclasses_replace
from typing import Dict, List, Optional

import numpy as np

from .analysis.experiments import (
    attack_ablation,
    identifiability_monte_carlo,
    noise_sweep,
    optimizer_ablation,
    risk_sweep,
)
from .analysis.figures import (
    figure2_series,
    figure3_series,
    figure4_series,
    figure5_series,
    figure6_series,
)
from .analysis.reporting import ascii_table, format_mapping, series_block, text_histogram
from .checkpoint import (
    CheckpointError,
    Checkpointer,
    SessionEvicted,
    list_checkpoints,
    load_checkpoint,
    prune_checkpoints,
)
from .cluster import ClusterController, ClusterError
from .core.session import run_sap_session
from .datasets.registry import dataset_summary, load_dataset
from .obs import Telemetry
from .parties.config import ClassifierSpec, SAPConfig
from .serve import AdmissionError, MiningService, SessionSpec
from .streaming import (
    STREAM_KINDS,
    StreamConfig,
    TrustChange,
    make_stream,
    run_stream_session,
)
from .streaming.stream_session import stream_config_from_mapping

__all__ = ["main", "build_parser"]


def _add_logging_flags(p: argparse.ArgumentParser) -> None:
    """The shared ``-v/--verbose`` / ``-q/--quiet`` pair."""
    group = p.add_mutually_exclusive_group()
    group.add_argument(
        "-v", "--verbose", action="count", default=0,
        help="log progress to stderr (repeat for debug detail)",
    )
    group.add_argument(
        "-q", "--quiet", action="store_true", help="only log errors"
    )


def _configure_logging(args: argparse.Namespace) -> None:
    """Point the ``repro.*`` logger hierarchy at stderr per the flags.

    The library only ever *logs* (never prints); the CLI decides here how
    much of that reaches the terminal.  Commands without the shared flags
    default to warnings-and-up.
    """
    verbose = getattr(args, "verbose", 0)
    if getattr(args, "quiet", False):
        level = logging.ERROR
    elif verbose >= 2:
        level = logging.DEBUG
    elif verbose == 1:
        level = logging.INFO
    else:
        level = logging.WARNING
    handler = logging.StreamHandler(sys.stderr)
    handler.setFormatter(logging.Formatter("%(levelname)s %(name)s: %(message)s"))
    logger = logging.getLogger("repro")
    logger.handlers[:] = [handler]
    logger.setLevel(level)
    logger.propagate = False


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Space Adaptation: privacy-preserving multiparty "
            "collaborative mining with geometric perturbation' (PODC 2007)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("datasets", help="list the synthetic UCI stand-ins")
    p.add_argument(
        "--detail",
        metavar="NAME",
        default=None,
        help="show per-column statistics for one dataset",
    )

    p = sub.add_parser("fig2", help="optimized vs random perturbation privacy")
    p.add_argument("--dataset", default="diabetes")
    p.add_argument("--rounds", type=int, default=30)
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser("fig3", help="optimality rate vs number of parties")
    p.add_argument("--rounds", type=int, default=8)
    p.add_argument("--k-min", type=int, default=5)
    p.add_argument("--k-max", type=int, default=10)
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser("fig4", help="minimum number of parties vs satisfaction")

    p = sub.add_parser("fig5", help="KNN accuracy deviation (full protocol)")
    p.add_argument("--repeats", type=int, default=2)
    p.add_argument("--k", type=int, default=5)
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser("fig6", help="SVM(RBF) accuracy deviation (full protocol)")
    p.add_argument("--repeats", type=int, default=1)
    p.add_argument("--k", type=int, default=5)
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser("risk", help="risk-model sweep and identifiability MC")
    p.add_argument("--k", type=int, default=5)
    p.add_argument("--runs", type=int, default=2000)
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser("session", help="one verbose end-to-end protocol run")
    p.add_argument("--dataset", default="wine")
    p.add_argument("--k", type=int, default=5)
    p.add_argument(
        "--classifier",
        default="knn",
        choices=[
            "knn", "svm_rbf", "linear_svm", "perceptron",
            "lda", "naive_bayes", "decision_tree",
        ],
    )
    p.add_argument("--noise", type=float, default=0.05)
    p.add_argument("--privacy", action="store_true", help="also compute risk profiles")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--json", action="store_true", help="emit a machine-readable JSON result"
    )
    _add_logging_flags(p)

    p = sub.add_parser("ablation", help="design-choice ablations")
    p.add_argument(
        "--which",
        default="optimizer",
        choices=["optimizer", "noise", "attacks"],
    )
    p.add_argument("--dataset", default="diabetes")
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser(
        "stream", help="online SAP over a synthetic record stream"
    )
    p.add_argument("--dataset", default="wine")
    p.add_argument(
        "--drift",
        default="stationary",
        choices=list(STREAM_KINDS),
        help="stream scenario (drift schedule / arrival process)",
    )
    p.add_argument("--windows", type=int, default=20, help="windows to process")
    p.add_argument("--window-size", type=int, default=64)
    p.add_argument(
        "--window-kind", default="tumbling", choices=["tumbling", "sliding"]
    )
    p.add_argument(
        "--window-step",
        type=int,
        default=None,
        help="sliding-window stride (< size gives overlap; default: size)",
    )
    p.add_argument("--k", type=int, default=3)
    p.add_argument(
        "--classifier", default="knn", choices=["knn", "linear_svm"]
    )
    p.add_argument("--noise", type=float, default=0.05)
    p.add_argument("--detector", default="meanvar", choices=["meanvar", "ks"])
    p.add_argument(
        "--shards",
        type=int,
        default=1,
        help="worker shards for the parallel execution engine",
    )
    p.add_argument(
        "--shard-backend",
        default="serial",
        choices=["serial", "thread", "process"],
        help="executor running the shard tasks (results are identical)",
    )
    p.add_argument(
        "--shard-plan",
        default="round_robin",
        choices=["round_robin", "hash", "party"],
        help="window/batch-to-shard assignment strategy",
    )
    p.add_argument(
        "--overlap",
        action=argparse.BooleanOptionalAction,
        default=None,
        help="pipeline rounds over the worker pool (default: on for "
        "thread/process backends, ignored for serial; results are "
        "identical either way)",
    )
    p.add_argument(
        "--trust-change",
        action="append",
        default=[],
        metavar="WINDOW:PARTY:TRUST",
        help="schedule a trust-level change, e.g. 10:0:0.5 (repeatable)",
    )
    p.add_argument(
        "--skew",
        type=int,
        default=0,
        help="simulate an out-of-order transport: bounded arrival "
        "displacement in records (0 = in order)",
    )
    p.add_argument(
        "--watermark",
        type=int,
        default=0,
        help="watermark delay in records before a window seals "
        "(>= --skew guarantees no late records)",
    )
    p.add_argument(
        "--late-policy",
        default="drop",
        choices=["drop", "readmit", "upsert"],
        help="what happens to records arriving after their window sealed",
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        default=None,
        help="save durable session checkpoints into DIR (enables "
        "--checkpoint-every / --stop-after)",
    )
    p.add_argument(
        "--checkpoint-every",
        type=int,
        default=None,
        metavar="N",
        help="checkpoint every N completed windows (needs --checkpoint-dir)",
    )
    p.add_argument(
        "--checkpoint-retain",
        type=int,
        default=None,
        metavar="K",
        help="keep only the newest K checkpoints of this session, deleting "
        "older ones after each save (needs --checkpoint-dir; default: "
        "keep everything)",
    )
    p.add_argument(
        "--stop-after",
        type=int,
        default=None,
        metavar="N",
        help="checkpoint and stop once N windows completed (simulated "
        "eviction; resume later with --resume-from)",
    )
    p.add_argument(
        "--resume-from",
        metavar="FILE",
        default=None,
        help="restore a checkpointed session and continue it; the workload "
        "flags are taken from the checkpoint, and the final result is "
        "bit-identical to never having stopped",
    )
    p.add_argument(
        "--json", action="store_true", help="emit a machine-readable JSON result"
    )
    p.add_argument(
        "--trace-out",
        metavar="FILE",
        default=None,
        help="write telemetry spans (round/stage/seal/...) as JSONL; "
        "aggregate later with `repro report`",
    )
    p.add_argument(
        "--metrics-out",
        metavar="FILE",
        default=None,
        help="write the session's metrics-registry snapshot as JSON",
    )
    _add_logging_flags(p)

    p = sub.add_parser(
        "checkpoint", help="inspect durable session checkpoint files"
    )
    csub = p.add_subparsers(dest="checkpoint_command", required=True)
    c = csub.add_parser(
        "inspect", help="print a checkpoint's identity, progress, and fingerprint"
    )
    c.add_argument(
        "path",
        metavar="PATH",
        help="a checkpoint file (*.ckpt), or a checkpoint directory to "
        "list every session's checkpoints in",
    )
    c.add_argument(
        "--retain",
        type=int,
        default=None,
        metavar="K",
        help="with a directory: first prune it down to the newest K "
        "checkpoints per session, then list what is left",
    )
    c.add_argument(
        "--json", action="store_true", help="emit the summary as JSON"
    )
    _add_logging_flags(c)

    p = sub.add_parser(
        "serve", help="run a multi-session workload on the serving engine"
    )
    p.add_argument(
        "--workload",
        metavar="FILE",
        default=None,
        help="JSON workload file (a list of session specs, or "
        '{"sessions": [...]}); omitted: a built-in mixed demo workload',
    )
    p.add_argument(
        "--sessions",
        type=int,
        default=8,
        help="demo-workload size (ignored with --workload)",
    )
    p.add_argument(
        "--dataset", default="iris", help="demo-workload dataset"
    )
    p.add_argument(
        "--max-inflight", type=int, default=4, help="concurrent session drivers"
    )
    p.add_argument(
        "--queue-limit",
        type=int,
        default=None,
        help="sessions allowed to queue beyond the in-flight ones "
        "(default: unbounded)",
    )
    p.add_argument(
        "--shards",
        type=int,
        default=2,
        help="workers in the shared shard pool",
    )
    p.add_argument(
        "--shard-backend",
        default="thread",
        choices=["serial", "thread", "process"],
        help="shared pool executor (results are identical)",
    )
    p.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        default=None,
        help="give the service a checkpoint directory: stream sessions "
        "become durable, and an interrupt (Ctrl-C) parks every live "
        "session instead of losing it",
    )
    p.add_argument(
        "--checkpoint-every",
        type=int,
        default=None,
        metavar="N",
        help="checkpoint stream sessions every N completed windows "
        "(needs --checkpoint-dir)",
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--json", action="store_true", help="emit a machine-readable JSON report"
    )
    p.add_argument(
        "--metrics-out",
        metavar="FILE",
        default=None,
        help="write the service's metrics-registry snapshot as JSON",
    )
    _add_logging_flags(p)

    p = sub.add_parser(
        "cluster",
        help="run a workload across N engine replicas with live migration",
    )
    p.add_argument(
        "--workload",
        metavar="FILE",
        default=None,
        help="JSON workload file (same format as `repro serve`); omitted: "
        "a built-in all-stream demo workload",
    )
    p.add_argument(
        "--sessions",
        type=int,
        default=6,
        help="demo-workload size (ignored with --workload)",
    )
    p.add_argument(
        "--dataset", default="iris", help="demo-workload dataset"
    )
    p.add_argument(
        "--replicas", type=int, default=2, help="serving-engine replicas"
    )
    p.add_argument(
        "--backend",
        default="inprocess",
        choices=["inprocess", "process"],
        help="replica backend: engines in this process, or one OS process "
        "per replica behind the framed transport (results identical)",
    )
    p.add_argument(
        "--heartbeat-interval",
        type=float,
        default=0.2,
        metavar="SECONDS",
        help="process-replica liveness check cadence",
    )
    p.add_argument(
        "--placement",
        default="hash",
        choices=["hash", "least_loaded", "tenant"],
        help="session-to-replica placement policy",
    )
    p.add_argument(
        "--serve",
        action="store_true",
        help="long-running mode: keep watching --workload and admit any "
        "sessions appended to it (Ctrl-C parks and exits cleanly)",
    )
    p.add_argument(
        "--poll-interval",
        type=float,
        default=0.5,
        metavar="SECONDS",
        help="--serve workload re-read cadence",
    )
    p.add_argument(
        "--serve-idle-exit",
        type=int,
        default=0,
        metavar="K",
        help="--serve exits after K consecutive idle polls with nothing "
        "live (0 = run until interrupted)",
    )
    p.add_argument(
        "--chaos-kill",
        type=int,
        default=0,
        metavar="N",
        help="SIGKILL the busiest process replica after N poll ticks "
        "(50 ms each) to exercise crash recovery; needs --backend process "
        "(0 = never)",
    )
    p.add_argument(
        "--migrate-every",
        type=int,
        default=0,
        metavar="N",
        help="force a live migration every N poll ticks (50 ms each), "
        "rotating over live sessions (0 = never; results stay "
        "bit-identical either way)",
    )
    p.add_argument(
        "--max-inflight",
        type=int,
        default=2,
        help="concurrent session drivers per replica",
    )
    p.add_argument(
        "--queue-limit",
        type=int,
        default=None,
        help="per-replica queue depth beyond the in-flight sessions "
        "(default: unbounded)",
    )
    p.add_argument(
        "--shards",
        type=int,
        default=2,
        help="workers in each replica's shard pool",
    )
    p.add_argument(
        "--shard-backend",
        default="thread",
        choices=["serial", "thread", "process"],
        help="replica pool executor (results are identical)",
    )
    p.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        default=None,
        help="cluster checkpoint root (replica-<i>/ per replica); "
        "default: a temporary directory when migration is requested",
    )
    p.add_argument(
        "--checkpoint-every",
        type=int,
        default=None,
        metavar="N",
        help="checkpoint stream sessions every N completed windows",
    )
    p.add_argument(
        "--checkpoint-retain",
        type=int,
        default=None,
        metavar="K",
        help="keep only the newest K checkpoints per session "
        "(default: keep everything)",
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--json", action="store_true", help="emit a machine-readable JSON report"
    )
    p.add_argument(
        "--metrics-out",
        metavar="FILE",
        default=None,
        help="write the cluster's metrics-registry snapshot as JSON",
    )
    _add_logging_flags(p)

    p = sub.add_parser(
        "report", help="aggregate --trace-out span files into latency tables"
    )
    p.add_argument(
        "spans",
        metavar="SPANS",
        nargs="+",
        help="span file(s) written by `repro stream --trace-out`, and/or "
        "directories searched recursively for *.jsonl (multi-run "
        "experiments merge into one table)",
    )
    p.add_argument(
        "--max-rounds",
        type=int,
        default=20,
        help="per-round rows to show (0 = all)",
    )
    _add_logging_flags(p)

    p = sub.add_parser(
        "experiment",
        help="declarative sweeps: run a config, report a sweep, gate perf",
    )
    esub = p.add_subparsers(dest="experiment_command", required=True)

    e = esub.add_parser(
        "run", help="execute a factors x levels x repetitions sweep config"
    )
    e.add_argument(
        "config",
        metavar="CONFIG",
        help="JSON (or TOML, Python 3.11+) experiment config: "
        '{"name", "base", "factors", "repetitions"}',
    )
    e.add_argument(
        "--results",
        metavar="DIR",
        default="results",
        help="results root; artifacts land under DIR/<name>/<run_id>/ "
        "(default: results)",
    )
    e.add_argument(
        "--fresh",
        action="store_true",
        help="re-run every cell even if a completed artifact exists "
        "(default: resume, skipping completed cells)",
    )
    e.add_argument(
        "--timestamp",
        help="artifact timestamp (default: $REPRO_BENCH_TIMESTAMP, else now UTC)",
    )
    _add_logging_flags(e)

    e = esub.add_parser(
        "report",
        help="join a sweep's per-run metrics + spans into one document",
    )
    e.add_argument(
        "directory",
        metavar="EXPERIMENT_DIR",
        help="one experiment's directory (results/<name>)",
    )
    e.add_argument(
        "--html",
        action="store_true",
        help="emit a standalone HTML page instead of markdown",
    )
    e.add_argument(
        "--out",
        metavar="FILE",
        default=None,
        help="also write the report to FILE",
    )
    _add_logging_flags(e)

    e = esub.add_parser(
        "gate",
        help="fail (exit 1) when fresh throughput regresses vs a committed "
        "BENCH_*.json trajectory",
    )
    e.add_argument(
        "--baseline",
        metavar="BENCH_JSON",
        required=True,
        help="committed trajectory file to compare against",
    )
    e.add_argument(
        "--current",
        metavar="BENCH_JSON",
        default=None,
        help="freshly recorded trajectory to compare (default: run the "
        "bench's built-in quick measurement now)",
    )
    e.add_argument(
        "--tolerance",
        type=float,
        default=20.0,
        metavar="PCT",
        help="largest tolerated throughput drop in percent (default: 20)",
    )
    e.add_argument(
        "--allow-machine-mismatch",
        action="store_true",
        help="compare against baseline entries from other machines too "
        "(default: only fingerprint-matched entries count)",
    )
    e.add_argument(
        "--write-current",
        metavar="FILE",
        default=None,
        help="persist the fresh measurement as a one-entry trajectory file",
    )
    e.add_argument(
        "--timestamp",
        help="--write-current entry timestamp (default: "
        "$REPRO_BENCH_TIMESTAMP, else now UTC)",
    )
    _add_logging_flags(e)

    e = esub.add_parser(
        "diff",
        help="compare two sweep result directories cell by cell "
        "(exit 1 when B regresses vs A)",
    )
    e.add_argument(
        "dir_a",
        metavar="DIR_A",
        help="baseline experiment directory (results/<name>)",
    )
    e.add_argument(
        "dir_b",
        metavar="DIR_B",
        help="candidate experiment directory to compare against DIR_A",
    )
    e.add_argument(
        "--tolerance",
        type=float,
        default=20.0,
        metavar="PCT",
        help="largest tolerated *per_s drop in percent (default: 20)",
    )
    _add_logging_flags(e)

    return parser


# ----------------------------------------------------------------------
# command implementations
# ----------------------------------------------------------------------
def _cmd_datasets(args: argparse.Namespace) -> str:
    if args.detail:
        from .datasets.statistics import describe

        return describe(load_dataset(args.detail))
    return dataset_summary()


def _cmd_fig2(args: argparse.Namespace) -> str:
    series = figure2_series(
        dataset=args.dataset, n_rounds=args.rounds, seed=args.seed
    )
    random_vals = np.array(series["random"])
    optimized_vals = np.array(series["optimized"])
    body = "\n\n".join(
        [
            text_histogram(series["random"], label="random perturbations"),
            text_histogram(series["optimized"], label="optimized perturbations"),
            format_mapping(
                {
                    "mean random": float(random_vals.mean()),
                    "mean optimized": float(optimized_vals.mean()),
                    "gain": float(optimized_vals.mean() - random_vals.mean()),
                }
            ),
        ]
    )
    return series_block(
        f"Figure 2 - privacy guarantee distribution ({args.dataset})", body
    )


def _cmd_fig3(args: argparse.Namespace) -> str:
    k_values = list(range(args.k_min, args.k_max + 1))
    series = figure3_series(k_values=k_values, n_rounds=args.rounds, seed=args.seed)
    headers = ["dataset - scheme"] + [f"k={k}" for k in k_values]
    rows = []
    for (name, scheme), rates in sorted(series.items()):
        rows.append([f"{name} - {scheme}"] + [rates[k] for k in k_values])
    return series_block(
        "Figure 3 - optimality rate vs number of parties",
        ascii_table(headers, rows),
    )


def _cmd_fig4(_args: argparse.Namespace) -> str:
    series = figure4_series()
    s0_values = sorted(next(iter(series.values())))
    headers = ["dataset (opt-rate)"] + [f"s0={s0:.2f}" for s0 in s0_values]
    from .analysis.figures import FIGURE4_OPT_RATES

    rows = []
    for name, by_s0 in sorted(series.items()):
        label = f"{name} ({FIGURE4_OPT_RATES[name]:.2f})"
        rows.append([label] + [by_s0[s0] for s0 in s0_values])
    return series_block(
        "Figure 4 - minimum number of parties vs expected satisfaction",
        ascii_table(headers, rows),
    )


def _deviation_table(series) -> str:
    datasets = sorted({name for name, _ in series})
    headers = ["dataset", "SAP - Uniform", "SAP - Class"]
    rows = []
    for name in datasets:
        rows.append(
            [
                name,
                series.get((name, "uniform"), float("nan")),
                series.get((name, "class"), float("nan")),
            ]
        )
    return ascii_table(headers, rows, float_format="{:+.2f}")


def _cmd_fig5(args: argparse.Namespace) -> str:
    series = figure5_series(k=args.k, repeats=args.repeats, seed=args.seed)
    return series_block(
        "Figure 5 - KNN accuracy deviation (percentage points)",
        _deviation_table(series),
    )


def _cmd_fig6(args: argparse.Namespace) -> str:
    series = figure6_series(k=args.k, repeats=args.repeats, seed=args.seed)
    return series_block(
        "Figure 6 - SVM(RBF) accuracy deviation (percentage points)",
        _deviation_table(series),
    )


def _cmd_risk(args: argparse.Namespace) -> str:
    sweep = risk_sweep()
    headers = list(sweep[0])
    table = ascii_table(headers, [[row[h] for h in headers] for row in sweep])
    mc = identifiability_monte_carlo(args.k, n_runs=args.runs, seed=args.seed)
    return series_block(
        "Risk model - eq.(1)/(2) sweep and identifiability Monte Carlo",
        table + "\n\n" + format_mapping(mc),
    )


def _cmd_session(args: argparse.Namespace) -> str:
    table = load_dataset(args.dataset)
    config = SAPConfig(
        k=args.k,
        noise_sigma=args.noise,
        classifier=ClassifierSpec(args.classifier),
        seed=args.seed,
        optimize_locally=args.privacy,
    )
    result = run_sap_session(table, config, compute_privacy=args.privacy)
    if args.json:
        return json.dumps(result.to_dict(), indent=2)
    return series_block(
        f"SAP session - {args.dataset} ({args.classifier}, k={args.k})",
        result.summary(),
    )


def _parse_trust_changes(specs: List[str]) -> List[TrustChange]:
    changes = []
    for spec in specs:
        parts = spec.split(":")
        if len(parts) != 3:
            raise ValueError(
                f"bad --trust-change {spec!r}; expected WINDOW:PARTY:TRUST "
                f"(e.g. 10:0:0.5)"
            )
        try:
            changes.append(
                TrustChange(
                    window=int(parts[0]), party=int(parts[1]), trust=float(parts[2])
                )
            )
        except ValueError as exc:
            raise ValueError(f"bad --trust-change {spec!r}: {exc}") from None
    return changes


def _require_positive(name: str, value: Optional[int]) -> None:
    """Reject zero/negative budget flags with the friendly exit-2 message."""
    if value is not None and value < 1:
        raise ValueError(f"{name} must be a positive integer, got {value}")


def _require_non_negative(name: str, value: Optional[int]) -> None:
    """Reject negative count flags with the friendly exit-2 message."""
    if value is not None and value < 0:
        raise ValueError(f"{name} must be a non-negative integer, got {value}")


def _check_writable(flag: str, path: str) -> None:
    """Fail fast (exit 2) on an unwritable output path, before the run."""
    try:
        with open(path, "w", encoding="utf-8"):
            pass
    except OSError as exc:
        raise ValueError(f"cannot write {flag} {path!r}: {exc}") from None


def _telemetry_from_flags(
    trace_out: Optional[str], metrics_out: Optional[str]
) -> Optional[Telemetry]:
    """The command's telemetry bundle, or ``None`` when no flag asked.

    ``--trace-out`` enables span recording into the named JSONL file;
    ``--metrics-out`` alone keeps the tracer disabled (free no-op spans)
    but still collects counters for the end-of-run snapshot.
    """
    if not trace_out and not metrics_out:
        return None
    if metrics_out:
        _check_writable("--metrics-out", metrics_out)
    if trace_out:
        try:
            return Telemetry.to_file(trace_out)
        except OSError as exc:
            raise ValueError(
                f"cannot write --trace-out {trace_out!r}: {exc}"
            ) from None
    return Telemetry.disabled()


def _finish_telemetry(
    telemetry: Optional[Telemetry], metrics_out: Optional[str]
) -> None:
    """Flush the span sink and write the metrics snapshot, if asked."""
    if telemetry is None:
        return
    telemetry.close()
    if metrics_out:
        try:
            telemetry.metrics.write_json(metrics_out)
        except OSError as exc:
            raise ValueError(
                f"cannot write --metrics-out {metrics_out!r}: {exc}"
            ) from None


def _stream_checkpointer(
    args: argparse.Namespace, telemetry: Optional[Telemetry]
) -> Optional[Checkpointer]:
    """Build the ``repro stream`` command's checkpoint policy, if asked."""
    _require_positive("--checkpoint-every", args.checkpoint_every)
    _require_positive("--checkpoint-retain", args.checkpoint_retain)
    _require_positive("--stop-after", args.stop_after)
    if args.checkpoint_dir is None:
        if (
            args.checkpoint_every is not None
            or args.checkpoint_retain is not None
            or args.stop_after is not None
        ):
            raise ValueError(
                "--checkpoint-every/--checkpoint-retain/--stop-after need "
                "--checkpoint-dir to say where checkpoints go"
            )
        return None
    return Checkpointer(
        directory=args.checkpoint_dir,
        every=args.checkpoint_every,
        stop_after=args.stop_after,
        retain=args.checkpoint_retain,
        telemetry=telemetry,
    )


def _cmd_stream(args: argparse.Namespace) -> str:
    _require_positive("--windows", args.windows)
    _require_positive("--window-size", args.window_size)
    _require_positive("--window-step", args.window_step)
    _require_positive("--shards", args.shards)
    _require_non_negative("--skew", args.skew)
    _require_non_negative("--watermark", args.watermark)
    telemetry = _telemetry_from_flags(args.trace_out, args.metrics_out)
    checkpointer = _stream_checkpointer(args, telemetry)
    if args.resume_from:
        # The checkpoint *is* the workload description: rebuild the source
        # and config it was taken under (only the telemetry attachment
        # comes from this invocation's flags), so no flag needs repeating
        # and none can silently diverge.
        ckpt = load_checkpoint(args.resume_from)
        src = ckpt.source
        source = make_stream(
            src["name"],
            kind=src["kind"],
            n_records=src["n_records"],
            seed=src["seed"],
            drift_at=src.get("drift_at", 0.5),
            magnitude=src.get("magnitude", 1.5),
            transition=src.get("transition", 0.2),
            rate=src.get("rate", 1000.0),
            burst_factor=src.get("burst_factor", 8.0),
        )
        config = stream_config_from_mapping(ckpt.config)
        if telemetry is not None:
            config = dataclasses_replace(config, telemetry=telemetry)
    else:
        source = make_stream(
            args.dataset,
            kind=args.drift,
            n_records=args.windows * args.window_size,
            seed=args.seed,
        )
        config = StreamConfig(
            k=args.k,
            window_size=args.window_size,
            window_kind=args.window_kind,
            window_step=args.window_step,
            noise_sigma=args.noise,
            classifier=args.classifier,
            detector=args.detector,
            trust_changes=tuple(_parse_trust_changes(args.trust_change)),
            shards=args.shards,
            shard_backend=args.shard_backend,
            shard_plan=args.shard_plan,
            overlap=args.overlap,
            watermark_delay=args.watermark,
            late_policy=args.late_policy,
            skew=args.skew,
            seed=args.seed,
            telemetry=telemetry,
        )
    try:
        result = run_stream_session(
            source,
            config,
            checkpointer=checkpointer,
            resume_from=args.resume_from,
        )
    except SessionEvicted as evicted:
        _finish_telemetry(telemetry, args.metrics_out)
        if args.json:
            return json.dumps(
                {
                    "status": "evicted",
                    "checkpoint": evicted.path,
                    "windows": evicted.windows_done,
                    "records": evicted.records,
                },
                indent=2,
            )
        return series_block(
            "Streaming SAP - session checkpointed and stopped",
            f"windows completed : {evicted.windows_done}\n"
            f"records ingested  : {evicted.records}\n"
            f"checkpoint        : {evicted.path}\n"
            f"resume with       : repro stream --resume-from {evicted.path}",
        )
    _finish_telemetry(telemetry, args.metrics_out)
    if args.json:
        return json.dumps(result.to_dict(), indent=2)

    headers = ["window", "records", "acc (SAP)", "acc (std)", "deviation",
               "drift stat", "readapted"]
    rows = []
    for w in result.windows:
        rows.append(
            [
                w.index,
                w.n_records,
                w.accuracy_perturbed,
                w.accuracy_baseline,
                f"{w.deviation:+.2f}",
                f"{w.drift_statistic:.3f} ({w.drift_kind})",
                "*" if w.readapted else "",
            ]
        )
    event_lines = [
        f"window {e.window:>3}  {e.reason:<8} stat={e.statistic:.3f}  "
        f"negotiation={e.latency * 1000:.1f} ms  msgs={e.messages}"
        + (
            f"  guarantee={e.privacy_guarantee:.4f}"
            if e.privacy_guarantee is not None
            else ""
        )
        for e in result.events
    ]
    blocks = [
        result.summary(),
        "accuracy deviation over time\n" + ascii_table(headers, rows),
        "space (re-)negotiations\n" + "\n".join(event_lines),
    ]
    if result.ingest is not None and (
        result.ingest.late > 0 or result.ingest.max_skew > 0
    ):
        ingest_rows = [
            [
                gate.name,
                gate.records,
                gate.late,
                gate.dropped,
                gate.readmitted,
                gate.upserted,
                gate.max_skew,
            ]
            for gate in result.ingest.providers
        ]
        blocks.append(
            "event-time ingestion per provider\n"
            + ascii_table(
                ["provider", "records", "late", "dropped", "readmitted",
                 "upserted", "max skew"],
                ingest_rows,
            )
        )
    body = "\n\n".join(blocks)
    # Identity comes from the executed source/config (not the flags), so a
    # resumed session's header names the checkpointed workload.
    return series_block(
        f"Streaming SAP - {source.name} ({source.kind}, {config.classifier}, "
        f"k={config.k})",
        body,
    )


def _demo_workload(n_sessions: int, dataset: str, seed: int) -> List[Dict[str, object]]:
    """A mixed batch+stream workload across two tenants (the serve demo)."""
    workload: List[Dict[str, object]] = []
    for index in range(n_sessions):
        tenant = "acme" if index % 2 == 0 else "globex"
        if index % 2 == 0:
            workload.append(
                {
                    "kind": "batch",
                    "dataset": dataset,
                    "tenant": tenant,
                    "k": 3,
                    "seed": seed + index,
                }
            )
        else:
            workload.append(
                {
                    "kind": "stream",
                    "dataset": dataset,
                    "tenant": tenant,
                    "k": 3,
                    "stream": "abrupt" if index % 4 == 1 else "stationary",
                    "windows": 4,
                    "window_size": 32,
                    "compute_privacy": False,
                    "seed": seed + index,
                }
            )
    return workload


def _load_workload(path: str) -> List[Dict[str, object]]:
    """Read a workload file: a JSON list or ``{"sessions": [...]}``."""
    try:
        with open(path) as handle:
            payload = json.load(handle)
    except OSError as exc:
        raise ValueError(f"cannot read workload file {path!r}: {exc}") from None
    except json.JSONDecodeError as exc:
        raise ValueError(f"workload file {path!r} is not valid JSON: {exc}") from None
    if isinstance(payload, dict):
        payload = payload.get("sessions")
    if not isinstance(payload, list) or not payload:
        raise ValueError(
            f"workload file {path!r} must contain a non-empty list of session "
            f'specs (or {{"sessions": [...]}})'
        )
    return payload


def _session_row(handle, result) -> List[object]:
    """One per-session report row (shared by text and JSON output)."""
    spec = handle.spec
    if result is None:
        outcome = "-"
    elif spec.kind == "batch":
        outcome = f"{result.deviation:+.2f} pts"
    else:
        outcome = f"{result.deviation:+.2f} pts / {result.records_processed} rec"
    return [
        handle.session_id,
        spec.tenant,
        spec.kind,
        spec.dataset_name,
        handle.poll(),
        outcome,
        f"{handle.wall_seconds * 1000:.0f} ms",
    ]


def _park_and_hint(closeable) -> None:
    """Ctrl-C landing: park live sessions, print how to resume each one."""
    parked = closeable.close(park=True)
    if parked:
        print("parked live sessions:", file=sys.stderr)
        for path in parked:
            print(
                f"  resume with: repro stream --resume-from {path}",
                file=sys.stderr,
            )


def _cmd_serve(args: argparse.Namespace) -> str:
    _require_positive("--sessions", args.sessions)
    _require_positive("--max-inflight", args.max_inflight)
    _require_positive("--shards", args.shards)
    _require_positive("--checkpoint-every", args.checkpoint_every)
    if args.queue_limit is not None and args.queue_limit < 0:
        raise ValueError(
            f"--queue-limit must be >= 0, got {args.queue_limit}"
        )
    if args.checkpoint_every is not None and args.checkpoint_dir is None:
        raise ValueError(
            "--checkpoint-every needs --checkpoint-dir to say where "
            "checkpoints go"
        )
    if args.workload:
        entries = _load_workload(args.workload)
    else:
        entries = _demo_workload(args.sessions, args.dataset, args.seed)
    specs = [SessionSpec.from_mapping(entry) for entry in entries]
    telemetry = _telemetry_from_flags(None, args.metrics_out)

    rejections: List[str] = []
    with MiningService(
        max_inflight=args.max_inflight,
        queue_limit=args.queue_limit,
        shard_backend=args.shard_backend,
        shard_workers=args.shards,
        telemetry=telemetry,
        checkpoint_dir=args.checkpoint_dir,
    ) as service:
        handles = []
        for spec in specs:
            every = (
                args.checkpoint_every
                if args.checkpoint_dir is not None and spec.kind == "stream"
                else None
            )
            try:
                handles.append(service.submit(spec, checkpoint_every=every))
            except AdmissionError as exc:
                rejections.append(f"{spec.display_label}: {exc}")
        try:
            service.drain()
        except KeyboardInterrupt:
            if args.checkpoint_dir is not None:
                _park_and_hint(service)
            raise
        results, errors = [], []
        for handle in handles:
            if handle.poll() == "completed":
                results.append(handle.result())
                errors.append(None)
            else:
                results.append(None)
                try:
                    handle.result(timeout=0)
                except (Exception, CancelledError) as exc:  # surfaced below
                    errors.append(f"{type(exc).__name__}: {exc}")
                else:  # pragma: no cover - completed raced the poll above
                    errors.append(None)
        stats = service.stats()
        # Snapshot while the service is alive: the registry's collectors
        # read the service and pool stats at snapshot time.
        _finish_telemetry(telemetry, args.metrics_out)
    failures = [
        f"{h.spec.display_label}: {message}"
        for h, message in zip(handles, errors)
        if message is not None
    ]
    # Failed or admission-rejected sessions make the command exit 1 (vs 2
    # for usage errors): the workload did not fully run, and scripted
    # callers must not mistake that for success.
    exit_code = 1 if failures or rejections else 0

    if args.json:
        return (
            json.dumps(
                {
                    "sessions": [
                        {
                            "id": h.session_id,
                            "label": h.spec.display_label,
                            "status": h.poll(),
                            "queue_seconds": h.queue_seconds,
                            "wall_seconds": h.wall_seconds,
                            "error": e,
                            "result": None if r is None else r.to_dict(),
                        }
                        for h, r, e in zip(handles, results, errors)
                    ],
                    "rejections": rejections,
                    "service": stats.to_dict(),
                },
                indent=2,
            ),
            exit_code,
        )

    headers = ["id", "tenant", "kind", "dataset", "status", "outcome", "wall"]
    rows = [_session_row(h, r) for h, r in zip(handles, results)]
    body = [ascii_table(headers, rows), stats.summary()]
    if failures:
        body.append("failed\n" + "\n".join(f"  {line}" for line in failures))
    if rejections:
        body.append("rejected\n" + "\n".join(f"  {line}" for line in rejections))
    return (
        series_block(
            f"Serving engine - {len(handles)} sessions "
            f"({args.shard_backend} pool, {args.shards} workers, "
            f"max_inflight={args.max_inflight})",
            "\n\n".join(body),
        ),
        exit_code,
    )


def _cluster_demo_workload(
    n_sessions: int, dataset: str, seed: int
) -> List[Dict[str, object]]:
    """An all-stream two-tenant workload (streams are what can migrate)."""
    return [
        {
            "kind": "stream",
            "dataset": dataset,
            "tenant": "acme" if index % 2 == 0 else "globex",
            "k": 3,
            "stream": "abrupt" if index % 4 == 1 else "stationary",
            "windows": 6,
            "window_size": 32,
            "compute_privacy": False,
            "seed": seed + index,
        }
        for index in range(n_sessions)
    ]


def _chaos_kill(cluster, sessions, ticks: int) -> Optional[int]:
    """SIGKILL the replica owning the first live session after ``ticks``
    poll ticks (50 ms each); returns the killed index, or ``None`` when
    the workload settled first.  Crash recovery re-homes the victims —
    the CLI's standing demonstration that even an unclean death leaves
    results bit-identical."""
    import signal as _signal

    for _ in range(ticks):
        if all(session.done() for session in sessions):
            return None
        time.sleep(0.05)
    live = [s for s in sessions if not s.done()]
    target = live[0].replica if live else 0
    pid = getattr(cluster.replicas[target], "pid", None)
    if pid is None:  # pragma: no cover - guarded by the --backend check
        return None
    os.kill(pid, _signal.SIGKILL)
    return target


def _serve_loop(
    cluster,
    workload_path: str,
    poll_interval: float,
    idle_exit: int,
    sessions: List,
    rejections: List[str],
) -> None:
    """``--serve``: re-read the workload file each tick and admit every
    newly appended entry; returns once ``idle_exit`` consecutive ticks
    saw no new work and nothing live (never, when ``idle_exit`` is 0)."""
    consumed = 0
    idle = 0
    while True:
        try:
            entries = _load_workload(workload_path)
        except ValueError:
            entries = []  # mid-write or momentarily empty; next tick retries
        fresh = entries[consumed:]
        if fresh:
            idle = 0
            for entry in fresh:
                consumed += 1
                try:
                    spec = SessionSpec.from_mapping(entry)
                    sessions.append(cluster.submit(spec))
                except (AdmissionError, ValueError) as exc:
                    rejections.append(f"workload[{consumed - 1}]: {exc}")
        elif all(session.done() for session in sessions):
            idle += 1
            if idle_exit and idle >= idle_exit:
                return
        else:
            idle = 0
        time.sleep(poll_interval)


def _forced_migrations(cluster, sessions, every: int, replicas: int):
    """Poll the workload, forcing a migration every ``every`` 50 ms ticks.

    Rotates over the still-live sessions and pushes each victim to the
    next replica round-robin — the CLI's standing demonstration that any
    migration schedule leaves results bit-identical.
    """
    hops: List[List[int]] = []
    ticks = 0
    rotate = 0
    while not all(session.done() for session in sessions):
        time.sleep(0.05)
        ticks += 1
        if ticks % every:
            continue
        live = [s for s in sessions if s.poll() in ("queued", "running")]
        if not live:
            continue
        victim = live[rotate % len(live)]
        rotate += 1
        destination = (victim.replica + 1) % replicas
        try:
            landed = cluster.migrate(victim.session_id, destination)
        except ClusterError:
            continue  # settled/raced mid-flight; the next tick moves on
        if landed is not None:
            hops.append([victim.session_id, landed])
    return hops


def _cmd_cluster(args: argparse.Namespace) -> str:
    _require_positive("--sessions", args.sessions)
    _require_positive("--replicas", args.replicas)
    _require_positive("--max-inflight", args.max_inflight)
    _require_positive("--shards", args.shards)
    _require_positive("--checkpoint-every", args.checkpoint_every)
    _require_positive("--checkpoint-retain", args.checkpoint_retain)
    _require_non_negative("--migrate-every", args.migrate_every)
    _require_non_negative("--chaos-kill", args.chaos_kill)
    _require_non_negative("--serve-idle-exit", args.serve_idle_exit)
    if args.poll_interval <= 0:
        raise ValueError(
            f"--poll-interval must be > 0 seconds, got {args.poll_interval}"
        )
    if args.heartbeat_interval <= 0:
        raise ValueError(
            f"--heartbeat-interval must be > 0 seconds, got "
            f"{args.heartbeat_interval}"
        )
    if args.queue_limit is not None and args.queue_limit < 0:
        raise ValueError(
            f"--queue-limit must be >= 0, got {args.queue_limit}"
        )
    if args.chaos_kill and args.backend != "process":
        raise ValueError(
            "--chaos-kill needs --backend process: only a process replica "
            "can be killed without taking the controller down with it"
        )
    if args.serve and not args.workload:
        raise ValueError(
            "--serve needs --workload: the long-running mode admits "
            "sessions appended to that file"
        )
    if args.workload:
        entries = _load_workload(args.workload)
    else:
        entries = _cluster_demo_workload(args.sessions, args.dataset, args.seed)
    specs = [SessionSpec.from_mapping(entry) for entry in entries]
    telemetry = _telemetry_from_flags(None, args.metrics_out)

    checkpoint_dir = args.checkpoint_dir
    scratch = None
    if checkpoint_dir is None and (args.migrate_every or args.chaos_kill):
        # Migration (and crash recovery) moves state through checkpoint
        # files; without an explicit directory the demo parks them in a
        # throwaway one.
        checkpoint_dir = scratch = tempfile.mkdtemp(prefix="repro-cluster-")

    rejections: List[str] = []
    killed: Optional[int] = None
    try:
        with ClusterController(
            replicas=args.replicas,
            placement=args.placement,
            backend=args.backend,
            heartbeat_interval=args.heartbeat_interval,
            max_inflight=args.max_inflight,
            queue_limit=args.queue_limit,
            shard_backend=args.shard_backend,
            shard_workers=args.shards,
            telemetry=telemetry,
            checkpoint_dir=checkpoint_dir,
            checkpoint_every=args.checkpoint_every,
            checkpoint_retain=args.checkpoint_retain,
        ) as cluster:
            sessions = []
            hops: List[List[int]] = []
            try:
                if not args.serve:
                    for spec in specs:
                        try:
                            sessions.append(cluster.submit(spec))
                        except AdmissionError as exc:
                            rejections.append(f"{spec.display_label}: {exc}")
                if args.chaos_kill:
                    killed = _chaos_kill(cluster, sessions, args.chaos_kill)
                if args.serve:
                    _serve_loop(
                        cluster, args.workload, args.poll_interval,
                        args.serve_idle_exit, sessions, rejections,
                    )
                elif args.migrate_every:
                    hops = _forced_migrations(
                        cluster, sessions, args.migrate_every, args.replicas
                    )
                cluster.wait_all()
            except KeyboardInterrupt:
                if args.checkpoint_dir is not None:
                    _park_and_hint(cluster)
                else:
                    # Nothing durable to park into: stop without waiting
                    # the workload out.  close() always reaps process
                    # replicas (shutdown, then terminate/kill), so a
                    # Ctrl-C never leaves orphaned children behind.
                    cluster.close(wait=False)
                raise
            results, errors = [], []
            for session in sessions:
                if session.poll() == "completed":
                    results.append(session.result())
                    errors.append(None)
                else:
                    results.append(None)
                    try:
                        session.result(timeout=0)
                    except (Exception, CancelledError) as exc:
                        errors.append(f"{type(exc).__name__}: {exc}")
                    else:  # pragma: no cover - completed raced the poll
                        errors.append(None)
            stats = cluster.stats()
            # Snapshot while replicas are alive: the cluster collector
            # reads live controller state at snapshot time.
            _finish_telemetry(telemetry, args.metrics_out)
    finally:
        if scratch is not None:
            shutil.rmtree(scratch, ignore_errors=True)

    failures = [
        f"{s.spec.display_label}: {message}"
        for s, message in zip(sessions, errors)
        if message is not None
    ]
    exit_code = 1 if failures or rejections else 0

    if args.json:
        return (
            json.dumps(
                {
                    "sessions": [
                        {
                            "id": s.session_id,
                            "label": s.spec.display_label,
                            "status": s.poll(),
                            "replica": s.replica,
                            "migrations": s.migrations,
                            "error": e,
                            "result": None if r is None else r.to_dict(),
                        }
                        for s, r, e in zip(sessions, results, errors)
                    ],
                    "rejections": rejections,
                    "migrations": hops,
                    "chaos_killed": killed,
                    "cluster": stats.to_dict(),
                },
                indent=2,
            ),
            exit_code,
        )

    headers = [
        "id", "tenant", "kind", "dataset", "replica", "hops", "status",
        "outcome", "wall",
    ]
    rows = []
    for session, result in zip(sessions, results):
        spec = session.spec
        if result is None:
            outcome = "-"
        elif spec.kind == "batch":
            outcome = f"{result.deviation:+.2f} pts"
        else:
            outcome = (
                f"{result.deviation:+.2f} pts / {result.records_processed} rec"
            )
        rows.append(
            [
                session.session_id,
                spec.tenant,
                spec.kind,
                spec.dataset_name,
                session.replica,
                session.migrations,
                session.poll(),
                outcome,
                f"{session.wall_seconds * 1000:.0f} ms",
            ]
        )
    body = [ascii_table(headers, rows), stats.summary()]
    if killed is not None:
        body.append(
            f"chaos: replica {killed} was SIGKILLed mid-run; its sessions "
            f"recovered on the surviving replicas"
        )
    if failures:
        body.append("failed\n" + "\n".join(f"  {line}" for line in failures))
    if rejections:
        body.append("rejected\n" + "\n".join(f"  {line}" for line in rejections))
    return (
        series_block(
            f"Cluster - {len(sessions)} sessions over {args.replicas} "
            f"{args.backend} replicas ({args.placement} placement, "
            f"{args.shard_backend} pools x {args.shards} workers)",
            "\n\n".join(body),
        ),
        exit_code,
    )


def _checkpoint_dir_report(args: argparse.Namespace) -> str:
    """``repro checkpoint inspect <dir>``: list (and optionally prune)."""
    pruned: List[str] = []
    if args.retain is not None:
        pruned = prune_checkpoints(args.path, retain=args.retain)
    paths = list_checkpoints(args.path)
    entries: List[Dict[str, object]] = []
    for path in paths:
        name = os.path.relpath(path, args.path)
        try:
            summary = load_checkpoint(path).describe()
        except CheckpointError as exc:
            entries.append({"file": name, "error": str(exc)})
            continue
        entries.append(
            {
                "file": name,
                "dataset": summary["dataset"],
                "windows": summary["windows"],
                "records": summary["records"],
                "fingerprint": summary["fingerprint"][:12],
                "resumable": summary["resumable_by_service"],
            }
        )
    if args.json:
        return json.dumps(
            {
                "directory": args.path,
                "checkpoints": entries,
                "pruned": [os.path.relpath(p, args.path) for p in pruned],
            },
            indent=2,
        )
    headers = ["file", "dataset", "windows", "records", "fingerprint", "service"]
    rows = [
        [
            entry["file"],
            entry.get("dataset", "-"),
            entry.get("windows", "-"),
            entry.get("records", "-"),
            entry.get("fingerprint", "-"),
            "error" if "error" in entry else ("yes" if entry["resumable"] else "no"),
        ]
        for entry in entries
    ]
    body = (
        ascii_table(headers, rows)
        if rows
        else "(no checkpoint files in this directory)"
    )
    if pruned:
        body += "\n\npruned " + ", ".join(
            os.path.relpath(p, args.path) for p in pruned
        )
    return series_block(
        f"Checkpoints - {args.path} ({len(entries)} files)", body
    )


def _cmd_checkpoint(args: argparse.Namespace) -> str:
    # Only `inspect` today; the subparser is required, so anything else
    # already died in argparse.
    _require_positive("--retain", args.retain)
    if os.path.isdir(args.path):
        return _checkpoint_dir_report(args)
    if args.retain is not None:
        raise ValueError(
            "--retain prunes a checkpoint *directory*; "
            f"{args.path!r} is a file"
        )
    ckpt = load_checkpoint(args.path)
    summary = ckpt.describe()
    if args.json:
        return json.dumps(summary, indent=2)
    labels = {
        "schema_version": "schema version",
        "fingerprint": "fingerprint",
        "created_unix": "created (unix)",
        "dataset": "dataset",
        "stream": "stream kind",
        "n_records": "stream length",
        "k": "parties (k)",
        "classifier": "classifier",
        "window_size": "window size",
        "shards": "shards",
        "shard_backend": "shard backend",
        "seed": "seed",
        "records": "records ingested",
        "windows": "windows completed",
        "epochs": "epochs negotiated",
        "resumable_by_service": "service-resumable",
    }
    width = max(len(label) for label in labels.values())
    lines = [
        f"{labels[key]:<{width}} : {summary[key]}"
        for key in labels
        if summary.get(key) is not None or key in ("created_unix",)
    ]
    return series_block(f"Checkpoint - {args.path}", "\n".join(lines))


def _cmd_report(args: argparse.Namespace) -> str:
    from .obs.report import load_span_sources, render_latency_report

    spans, files = load_span_sources(args.spans)
    max_rounds = None if args.max_rounds == 0 else args.max_rounds
    if len(files) == 1:
        origin = files[0]
    else:
        origin = f"{len(files)} span files merged"
    return series_block(
        f"Span latency report - {origin} ({len(spans)} spans)",
        render_latency_report(spans, max_rounds=max_rounds),
    )


def _cmd_experiment(args: argparse.Namespace):
    from .obs import experiment as exp

    if args.experiment_command == "run":
        config = exp.load_experiment_config(args.config)
        lines: List[str] = []

        def narrate(cell, artifact):
            status = artifact.get("status", "?")
            summary = artifact.get("summary") or {}
            detail = (
                f"{summary.get('records_per_s', '-')} rec/s"
                if status == "ok"
                else artifact.get("error", "")
            )
            lines.append(f"  {cell.run_id:<48} {status:<6} {detail}")
            logging.getLogger("repro.obs.experiment").info(
                "%s: %s", cell.run_id, status
            )

        run = exp.run_experiment(
            config,
            results_root=args.results,
            resume=not args.fresh,
            timestamp=args.timestamp,
            progress=narrate,
        )
        lines.append("")
        lines.append(
            f"{run.total} cells: {run.executed} executed, "
            f"{run.skipped} resumed, {run.failed} failed -> {run.directory}"
        )
        body = "\n".join(lines)
        # A failed cell leaves an error artifact but must not read as
        # success to scripted callers (same convention as `repro serve`).
        return (
            series_block(
                f"Experiment run - {config.name} "
                f"({len(config.factor_names)} factors x "
                f"{run.total} cells)",
                body,
            ),
            1 if run.failed else 0,
        )

    if args.experiment_command == "report":
        runs = exp.load_runs(args.directory)
        name = os.path.basename(os.path.normpath(args.directory))
        text = exp.render_experiment_report(
            runs, name=name, fmt="html" if args.html else "md"
        )
        if args.out:
            try:
                with open(args.out, "w", encoding="utf-8") as handle:
                    handle.write(text)
            except OSError as exc:
                raise ValueError(
                    f"cannot write --out {args.out!r}: {exc}"
                ) from None
        return text.rstrip("\n")

    if not 0.0 <= args.tolerance < 100.0:
        raise ValueError(
            f"--tolerance must be a percentage in [0, 100), got {args.tolerance}"
        )
    if args.experiment_command == "diff":
        report = exp.run_diff(
            args.dir_a, args.dir_b, tolerance=args.tolerance / 100.0
        )
        return report.text, 0 if report.ok else 1
    report = exp.run_gate(
        args.baseline,
        current_path=args.current,
        tolerance=args.tolerance / 100.0,
        allow_machine_mismatch=args.allow_machine_mismatch,
        write_current=args.write_current,
        timestamp=args.timestamp,
    )
    return report.text, 0 if report.ok else 1


def _cmd_ablation(args: argparse.Namespace) -> str:
    if args.which == "optimizer":
        stats = optimizer_ablation(dataset=args.dataset, seed=args.seed)
        blocks = [
            format_mapping({"strategy": name, **values})
            for name, values in stats.items()
        ]
        return series_block("Ablation - optimizer strategy", "\n\n".join(blocks))
    if args.which == "noise":
        rows = noise_sweep(dataset=args.dataset, seed=args.seed)
        headers = list(rows[0])
        return series_block(
            "Ablation - common noise level",
            ascii_table(headers, [[row[h] for h in headers] for row in rows]),
        )
    stats = attack_ablation(dataset=args.dataset, seed=args.seed)
    return series_block("Ablation - attack suite", format_mapping(stats))


_COMMANDS = {
    "datasets": _cmd_datasets,
    "fig2": _cmd_fig2,
    "fig3": _cmd_fig3,
    "fig4": _cmd_fig4,
    "fig5": _cmd_fig5,
    "fig6": _cmd_fig6,
    "risk": _cmd_risk,
    "session": _cmd_session,
    "ablation": _cmd_ablation,
    "stream": _cmd_stream,
    "checkpoint": _cmd_checkpoint,
    "serve": _cmd_serve,
    "cluster": _cmd_cluster,
    "report": _cmd_report,
    "experiment": _cmd_experiment,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code.

    User-input errors (unknown dataset, malformed flag values) print a
    one-line ``error:`` message and return 2 — the same exit code argparse
    uses for an unknown subcommand — instead of dumping a traceback.
    Commands may return ``(output, exit_code)`` to report partial failures
    (``repro serve`` exits 1 when any session failed).
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    _configure_logging(args)
    try:
        output = _COMMANDS[args.command](args)
    except (KeyError, ValueError) as exc:
        message = exc.args[0] if exc.args else str(exc)
        print(f"error: {message}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        # Both entry points (`python -m repro` and the installed `repro`
        # script) share this handler.
        print("interrupted", file=sys.stderr)
        return 130
    code = 0
    if isinstance(output, tuple):
        output, code = output
    print(output)
    return code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
