"""SAP roles bound to the simulated network (provider, coordinator, miner)."""

from .config import ClassifierSpec, SAPConfig, make_classifier
from .coordinator import Coordinator
from .miner import MinerResult, ServiceProvider
from .provider import DataProvider

__all__ = [
    "ClassifierSpec",
    "SAPConfig",
    "make_classifier",
    "DataProvider",
    "Coordinator",
    "ServiceProvider",
    "MinerResult",
]
