"""The service provider (data miner) role.

The miner is the computationally rich party: it receives ``k`` anonymously
forwarded perturbed tables and the tagged adaptor sequence, joins them by
tag, adapts every table into the unified target space, pools them, trains
the configured classifier, and reports accuracy back to the providers.

What the miner *never* holds: raw data, any provider's perturbation
parameters, the target parameters, or the exchange permutation.  Its entire
view is auditable via the network's observation ledger, which the
integration tests use to verify the information-flow claims.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..core.adaptation import SpaceAdaptor
from ..mining.metrics import accuracy_score
from ..simnet.channel import Network
from ..simnet.messages import Message, MessageKind
from ..simnet.node import Node
from .config import SAPConfig, make_classifier

__all__ = ["MinerResult", "ServiceProvider"]


@dataclass
class MinerResult:
    """What the miner produces at the end of a run."""

    accuracy: float
    n_train: int
    n_test: int
    classifier_name: str
    per_tag_rows: Dict[str, int] = field(default_factory=dict)
    pooled_features: Optional[np.ndarray] = None  # (n, d) target-space rows
    pooled_labels: Optional[np.ndarray] = None
    pooled_test_mask: Optional[np.ndarray] = None
    model: Optional[object] = None  # the fitted classifier (service phase)


class ServiceProvider(Node):
    """The paper's mining service provider ``SP``."""

    def __init__(
        self,
        name: str,
        network: Network,
        config: SAPConfig,
        seed: int = 0,
    ) -> None:
        super().__init__(name, network, seed=seed)
        self.config = config
        self._datasets_by_tag: Dict[str, Dict[str, np.ndarray]] = {}
        self._adaptors_by_tag: Optional[Dict[str, SpaceAdaptor]] = None
        self._mined_datasets = 0
        self.result: Optional[MinerResult] = None
        self.abort_reason: Optional[str] = None

    # ------------------------------------------------------------------
    # collection handlers
    # ------------------------------------------------------------------
    def on_forwarded_dataset(self, message: Message) -> None:
        """Store one anonymized perturbed table, keyed by its tag."""
        tag = message.payload["tag"]
        if tag in self._datasets_by_tag:
            raise ValueError(f"duplicate dataset for tag {tag!r}")
        self._datasets_by_tag[tag] = {
            "features": np.asarray(message.payload["features"], dtype=float),
            "labels": np.asarray(message.payload["labels"], dtype=np.int64),
            "test_mask": np.asarray(message.payload["test_mask"], dtype=bool),
        }
        self._maybe_mine()

    def on_adaptor_sequence(self, message: Message) -> None:
        """Store (or extend) the coordinator's tagged adaptor sequence.

        A second sequence with *new* tags is the dynamic-join extension's
        incremental update; repeating a tag is always a protocol error.
        """
        if self._adaptors_by_tag is None:
            self._adaptors_by_tag = {}
        for entry in message.payload["adaptors"]:
            tag = entry["tag"]
            if tag in self._adaptors_by_tag:
                raise ValueError(f"duplicate adaptor for tag {tag!r}")
            self._adaptors_by_tag[tag] = SpaceAdaptor(
                rotation_adaptor=np.asarray(entry["rotation_adaptor"]),
                translation_adaptor=np.asarray(entry["translation_adaptor"]),
            )
        self._maybe_mine()

    # ------------------------------------------------------------------
    # mining
    # ------------------------------------------------------------------
    def _maybe_mine(self) -> None:
        if self._adaptors_by_tag is None:
            return
        if len(self._datasets_by_tag) < self.config.k:
            return
        # Re-mine only when new tables arrived (initial round, or a
        # dynamic-join increment).
        if len(self._datasets_by_tag) <= self._mined_datasets:
            return
        # Wait until every collected dataset has its adaptor.
        if set(self._datasets_by_tag) - set(self._adaptors_by_tag):
            return

        feature_blocks: List[np.ndarray] = []
        label_blocks: List[np.ndarray] = []
        mask_blocks: List[np.ndarray] = []
        per_tag_rows: Dict[str, int] = {}
        for tag in sorted(self._datasets_by_tag):
            entry = self._datasets_by_tag[tag]
            adapted = self._adaptors_by_tag[tag].apply(entry["features"])
            feature_blocks.append(adapted.T)  # to row orientation
            label_blocks.append(entry["labels"])
            mask_blocks.append(entry["test_mask"])
            per_tag_rows[tag] = entry["labels"].shape[0]

        X = np.vstack(feature_blocks)
        y = np.concatenate(label_blocks)
        test_mask = np.concatenate(mask_blocks)

        model = make_classifier(self.config.classifier)
        X_train, y_train = X[~test_mask], y[~test_mask]
        X_test, y_test = X[test_mask], y[test_mask]
        model.fit(X_train, y_train)
        accuracy = accuracy_score(y_test, model.predict(X_test))
        self._mined_datasets = len(self._datasets_by_tag)

        self.result = MinerResult(
            accuracy=accuracy,
            n_train=int((~test_mask).sum()),
            n_test=int(test_mask.sum()),
            classifier_name=self.config.classifier.name,
            per_tag_rows=per_tag_rows,
            pooled_features=X,
            pooled_labels=y,
            pooled_test_mask=test_mask,
            model=model,
        )
        report = {
            "accuracy": float(accuracy),
            "n_train": self.result.n_train,
            "n_test": self.result.n_test,
            "classifier": self.config.classifier.name,
        }
        for index in range(self.config.k):
            self.send(
                MessageKind.MODEL_REPORT,
                self.config.provider_name(index),
                dict(report),
            )

    def on_abort(self, message: Message) -> None:
        """Coordinator aborted the run: drop all partial state.

        A semi-honest miner must not keep tables from a run that will
        never complete — the abort wipes them and records the reason.
        """
        self.abort_reason = message.payload.get("reason", "aborted")
        self._datasets_by_tag.clear()
        self._adaptors_by_tag = None

    # ------------------------------------------------------------------
    # model service (the "service provision scheme" of Figure 1)
    # ------------------------------------------------------------------
    def on_classify_request(self, message: Message) -> None:
        """Classify target-space records for a provider.

        The provider sends its new records already expressed in the
        unified target space (it holds the target parameters; the miner
        still never does), so the miner sees query records exactly as
        protected as the training pool.
        """
        if self.result is None or self.result.model is None:
            self.send(
                MessageKind.CLASSIFY_RESPONSE,
                message.sender,
                {
                    "request_id": message.payload["request_id"],
                    "error": "no model trained yet",
                },
            )
            return
        features = np.asarray(message.payload["features"], dtype=float)
        labels = self.result.model.predict(features.T)
        self.send(
            MessageKind.CLASSIFY_RESPONSE,
            message.sender,
            {
                "request_id": message.payload["request_id"],
                "labels": np.asarray(labels, dtype=np.int64),
            },
        )
