"""Configuration shared by all SAP roles and the session driver."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from ..mining.base import Classifier
from ..mining.bayes import GaussianNaiveBayes
from ..mining.knn import KNNClassifier
from ..mining.lda import LinearDiscriminantAnalysis
from ..mining.linear import AveragedPerceptron, LinearSVMClassifier
from ..mining.multiclass import OneVsOneClassifier
from ..mining.svm import SVMClassifier
from ..mining.tree import DecisionTreeClassifier

__all__ = ["CLASSIFIER_NAMES", "ClassifierSpec", "SAPConfig", "make_classifier"]


@dataclass(frozen=True)
class ClassifierSpec:
    """Name + keyword arguments identifying a classifier to train.

    ``name`` is one of ``"knn"``, ``"svm_rbf"``, ``"linear_svm"``,
    ``"perceptron"``, ``"lda"``, ``"naive_bayes"``, ``"decision_tree"``;
    ``params`` are forwarded to the constructor/factory.  The last two are
    *non-invariant* control learners (see :mod:`repro.mining.bayes` and
    :mod:`repro.mining.tree`).
    """

    name: str = "knn"
    params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.name not in _FACTORIES:
            raise ValueError(
                f"unknown classifier {self.name!r}; "
                f"available: {', '.join(sorted(_FACTORIES))}"
            )


def _make_knn(**params: Any) -> Classifier:
    return KNNClassifier(**params)


def _make_svm_rbf(**params: Any) -> Classifier:
    params.setdefault("kernel", "rbf")
    return SVMClassifier(**params)


def _make_linear_svm(**params: Any) -> Classifier:
    return LinearSVMClassifier(**params)


def _make_perceptron(**params: Any) -> Classifier:
    seed = params.pop("seed", 0)
    epochs = params.pop("epochs", 10)
    if params:
        raise TypeError(f"unexpected perceptron params: {sorted(params)}")
    return OneVsOneClassifier(
        lambda pair_seed: AveragedPerceptron(epochs=epochs, seed=pair_seed),
        seed=seed,
    )


def _make_naive_bayes(**params: Any) -> Classifier:
    return GaussianNaiveBayes(**params)


def _make_lda(**params: Any) -> Classifier:
    return LinearDiscriminantAnalysis(**params)


def _make_decision_tree(**params: Any) -> Classifier:
    return DecisionTreeClassifier(**params)


_FACTORIES = {
    "knn": _make_knn,
    "svm_rbf": _make_svm_rbf,
    "linear_svm": _make_linear_svm,
    "perceptron": _make_perceptron,
    # Invariance controls: NB and trees are the ICDM'05 paper's examples of
    # learners geometric perturbation is NOT suitable for; LDA is invariant.
    "naive_bayes": _make_naive_bayes,
    "lda": _make_lda,
    "decision_tree": _make_decision_tree,
}


#: names accepted by :class:`ClassifierSpec` / :func:`make_classifier`
CLASSIFIER_NAMES = tuple(sorted(_FACTORIES))


def make_classifier(spec: ClassifierSpec) -> Classifier:
    """Instantiate a fresh classifier from its spec."""
    return _FACTORIES[spec.name](**dict(spec.params))


@dataclass(frozen=True)
class SAPConfig:
    """Knobs for one protocol run.

    Attributes
    ----------
    k:
        Number of data providers, coordinator included (``k >= 2``).
    noise_sigma:
        The protocol-wide common noise component's standard deviation
        (applied by every provider; the target space itself is noise-free).
    classifier:
        What the miner trains on the pooled target-space table.
    test_fraction:
        Per-provider stratified holdout used for the accuracy figures.
    optimize_locally:
        When ``True`` each provider runs the randomized perturbation
        optimizer to pick its ``G_i``; when ``False`` it samples a single
        random perturbation (faster; used by accuracy-only experiments,
        where the choice of ``G_i`` is irrelevant because adaptation maps
        everything to the same target space anyway).
    optimizer_rounds / optimizer_local_steps:
        Budget of the local optimizer when ``optimize_locally``.
    target_candidates:
        Extension over the paper's protocol: when greater than 1, the
        coordinator proposes this many candidate target perturbations and
        the providers vote with scalar satisfaction estimates before the
        target is fixed (the paper's Section 3 uses exactly one random
        target, i.e. ``target_candidates = 1``).  Each provider reveals
        only one float per candidate, so the extra leakage is negligible
        under the semi-honest model.
    round_timeout:
        Optional deadline in *virtual* seconds.  The published protocol has
        no liveness story (it assumes reliable links); with a timeout set,
        the coordinator watches for the miner's model report and broadcasts
        an ``abort`` to every principal when the run has not completed in
        time, so a lossy or partitioned deployment terminates cleanly
        instead of stalling forever.
    shards / shard_backend:
        Worker-shard count and executor backend (``"serial"``,
        ``"thread"``, or ``"process"``; see :mod:`repro.sharding`) used for
        the embarrassingly parallel tails of the session — currently the
        per-party privacy/risk profiling of ``compute_privacy`` runs.
        Results are identical for every choice; the default is the
        single-shard serial reference.
    seed:
        Master seed; all role seeds are derived from it.
    """

    k: int = 5
    noise_sigma: float = 0.05
    classifier: ClassifierSpec = field(default_factory=ClassifierSpec)
    test_fraction: float = 0.3
    optimize_locally: bool = False
    optimizer_rounds: int = 8
    optimizer_local_steps: int = 5
    target_candidates: int = 1
    round_timeout: Optional[float] = None
    shards: int = 1
    shard_backend: str = "serial"
    seed: int = 0

    def __post_init__(self) -> None:
        from ..sharding.backends import BACKENDS

        if self.k < 2:
            raise ValueError("SAP requires k >= 2 providers")
        if self.noise_sigma < 0:
            raise ValueError("noise_sigma must be >= 0")
        if not 0.0 < self.test_fraction < 1.0:
            raise ValueError("test_fraction must be in (0, 1)")
        if self.optimizer_rounds < 1:
            raise ValueError("optimizer_rounds must be a positive integer")
        if self.optimizer_local_steps < 1:
            raise ValueError("optimizer_local_steps must be a positive integer")
        if self.target_candidates < 1:
            raise ValueError("target_candidates must be >= 1")
        if self.round_timeout is not None and self.round_timeout <= 0:
            raise ValueError("round_timeout must be positive when set")
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        if self.shard_backend not in BACKENDS:
            raise ValueError(
                f"unknown shard backend {self.shard_backend!r}; available: "
                f"{', '.join(BACKENDS)}"
            )

    def provider_name(self, index: int) -> str:
        """Canonical node name for provider ``index`` (coordinator is k-1)."""
        if index == self.k - 1:
            return "coordinator"
        return f"provider-{index}"

    @property
    def miner_name(self) -> str:
        """Canonical node name of the service provider."""
        return "miner"

    @property
    def provider_names(self) -> tuple[str, ...]:
        """All provider node names, index order (coordinator last)."""
        return tuple(self.provider_name(i) for i in range(self.k))
