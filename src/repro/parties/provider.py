"""The data-provider role.

A :class:`DataProvider` owns a private local table.  Over the protocol it:

1. picks its local perturbation ``G_i`` (optimized or random) and perturbs
   its table — the raw table never leaves the node;
2. on receiving its exchange assignment (an opaque tag plus a receiver
   address) sends the perturbed table to that receiver;
3. on receiving the target parameters computes its space adaptor
   ``A_it = <R_t R_i^{-1}, t_t - R_t R_i^{-1} t_i>`` and sends it — tagged —
   to the coordinator;
4. forwards any peer dataset it received to the miner (this re-send under
   the forwarder's own identity is what anonymizes sources);
5. records the miner's final model report.

Handlers are order-independent: the assignment, target parameters, and
peer datasets may arrive in any interleaving, and each step fires exactly
once when its prerequisites are satisfied.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

import numpy as np

from ..core.adaptation import compute_adaptor
from ..core.optimizer import PerturbationOptimizer
from ..core.perturbation import GeometricPerturbation, sample_perturbation
from ..datasets.schema import Dataset
from ..simnet.channel import Network
from ..simnet.messages import Message, MessageKind
from ..simnet.node import Node
from .config import SAPConfig

__all__ = ["DataProvider"]


class DataProvider(Node):
    """One of the paper's ``DP_i`` nodes.

    Parameters
    ----------
    name / network / seed:
        Node plumbing (see :class:`repro.simnet.node.Node`).
    dataset:
        The provider's private, already-normalized local table.
    test_mask:
        Boolean row mask marking the provider's holdout rows (used by the
        miner for accuracy evaluation; part of the experiment harness, not
        of the privacy claim).
    config:
        The protocol configuration.
    """

    def __init__(
        self,
        name: str,
        network: Network,
        dataset: Dataset,
        test_mask: np.ndarray,
        config: SAPConfig,
        seed: int = 0,
    ) -> None:
        super().__init__(name, network, seed=seed)
        self.dataset = dataset
        self.test_mask = np.asarray(test_mask, dtype=bool)
        if self.test_mask.shape != (dataset.n_rows,):
            raise ValueError("test_mask must have one entry per local row")
        self.config = config

        # Local perturbation choice happens before any message flows.
        self.perturbation = self._choose_perturbation()
        X_cols = self.dataset.columns()
        self.perturbed_features = np.asarray(
            self.perturbation.apply(X_cols, rng=self.rng)
        )

        # Protocol state, filled in by handlers.
        self.tag: Optional[str] = None
        self.exchange_receiver: Optional[str] = None
        self.target: Optional[GeometricPerturbation] = None
        self.model_report: Optional[Dict[str, Any]] = None
        self.classification_results: Dict[int, np.ndarray] = {}
        self._next_request_id = 0
        self._dataset_sent = False
        self._adaptor_sent = False

    # ------------------------------------------------------------------
    # local decisions
    # ------------------------------------------------------------------
    def _choose_perturbation(self) -> GeometricPerturbation:
        d = self.dataset.n_features
        if not self.config.optimize_locally:
            return sample_perturbation(d, self.rng, noise_sigma=self.config.noise_sigma)
        optimizer = PerturbationOptimizer(
            n_rounds=self.config.optimizer_rounds,
            local_steps=self.config.optimizer_local_steps,
            noise_sigma=self.config.noise_sigma,
            seed=int(self.rng.integers(2**32)),
        )
        return optimizer.optimize(self.dataset.columns()).best

    # ------------------------------------------------------------------
    # message handlers (order independent)
    # ------------------------------------------------------------------
    def on_exchange_assignment(self, message: Message) -> None:
        """Coordinator told us our tag and where to send our dataset."""
        self.tag = message.payload["tag"]
        self.exchange_receiver = message.payload["receiver"]
        self._maybe_send_dataset()
        self._maybe_send_adaptor()

    def on_target_params(self, message: Message) -> None:
        """Coordinator distributed the target perturbation ``G_t``."""
        self.target = GeometricPerturbation(
            rotation=message.payload["rotation"],
            translation=message.payload["translation"],
            noise_sigma=0.0,
        )
        self._maybe_send_adaptor()

    def on_target_proposals(self, message: Message) -> None:
        """Extension: score each candidate target by the privacy guarantee
        it would give *this* provider's table, and vote.

        Only the scalar scores leave the node — the provider's table, its
        local perturbation, and the per-column structure stay private.
        """
        scores = []
        for candidate in message.payload["candidates"]:
            perturbation = GeometricPerturbation(
                rotation=candidate["rotation"],
                translation=candidate["translation"],
                noise_sigma=self.config.noise_sigma,
            )
            scores.append(self._score_candidate(perturbation))
        self.send(
            MessageKind.TARGET_VOTE,
            message.sender,
            {"scores": np.asarray(scores, dtype=float)},
        )

    def _score_candidate(self, perturbation: GeometricPerturbation) -> float:
        """Fast-suite privacy guarantee of a candidate on the local table."""
        from ..attacks.resilience import fast_suite

        eval_rng = np.random.default_rng(int(self.rng.integers(2**32)))
        return fast_suite().guarantee(
            perturbation, self.dataset.columns(), eval_rng
        )

    def on_perturbed_dataset(self, message: Message) -> None:
        """A peer's dataset arrived: forward it to the miner as our own
        transmission (the anonymization step)."""
        self.send(
            MessageKind.FORWARDED_DATASET,
            self.config.miner_name,
            payload=dict(message.payload),
        )

    def on_model_report(self, message: Message) -> None:
        """Store the miner's final report."""
        self.model_report = dict(message.payload)

    def on_classify_response(self, message: Message) -> None:
        """Store the labels the model service returned for one request."""
        request_id = message.payload["request_id"]
        if "error" in message.payload:
            raise RuntimeError(
                f"classification request {request_id} failed: "
                f"{message.payload['error']}"
            )
        self.classification_results[request_id] = np.asarray(
            message.payload["labels"]
        )

    # ------------------------------------------------------------------
    # model service (the "service provision scheme" of Figure 1)
    # ------------------------------------------------------------------
    def request_classification(
        self, X_rows: np.ndarray, with_noise: bool = True
    ) -> int:
        """Ask the miner to classify new local records.

        The records are expressed in the unified target space before they
        leave the node: rotation + translation from the (provider-held)
        target parameters, plus — by default — a fresh draw of the common
        noise component so query records enjoy the same protection as the
        training pool.  Returns a request id; the labels arrive in
        :attr:`classification_results` once the response is delivered.
        """
        if self.target is None:
            raise RuntimeError("no target parameters yet; run the protocol first")
        X_rows = np.asarray(X_rows, dtype=float)
        if X_rows.ndim != 2 or X_rows.shape[1] != self.dataset.n_features:
            raise ValueError(
                f"expected (m, {self.dataset.n_features}) records, "
                f"got {X_rows.shape}"
            )
        query = GeometricPerturbation(
            rotation=self.target.rotation,
            translation=self.target.translation,
            noise_sigma=self.config.noise_sigma if with_noise else 0.0,
        )
        features = np.asarray(query.apply(X_rows.T, rng=self.rng))
        request_id = self._next_request_id
        self._next_request_id += 1
        self.send(
            MessageKind.CLASSIFY_REQUEST,
            self.config.miner_name,
            {"request_id": request_id, "features": features},
        )
        return request_id

    def on_abort(self, message: Message) -> None:
        """A peer aborted; remember why (tests assert on this)."""
        self.model_report = {"aborted": True, "reason": message.payload.get("reason")}

    # ------------------------------------------------------------------
    # step execution
    # ------------------------------------------------------------------
    def _maybe_send_dataset(self) -> None:
        if self._dataset_sent or self.tag is None or self.exchange_receiver is None:
            return
        payload = {
            "tag": self.tag,
            "features": self.perturbed_features,
            "labels": self.dataset.y.astype(np.int64),
            "test_mask": self.test_mask.astype(np.int8),
        }
        self.send(MessageKind.PERTURBED_DATASET, self.exchange_receiver, payload)
        self._dataset_sent = True

    def _maybe_send_adaptor(self) -> None:
        if self._adaptor_sent or self.tag is None or self.target is None:
            return
        adaptor = compute_adaptor(self.perturbation, self.target)
        payload = {
            "tag": self.tag,
            "rotation_adaptor": adaptor.rotation_adaptor,
            "translation_adaptor": adaptor.translation_adaptor,
        }
        self.send(
            MessageKind.SPACE_ADAPTOR,
            self.config.provider_name(self.config.k - 1),
            payload,
        )
        self._adaptor_sent = True
