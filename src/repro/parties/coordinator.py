"""The coordinator role (the paper's ``DP_k``).

The coordinator is itself a data provider — it contributes a table and
participates in the exchange as a *source* — but additionally:

1. selects the random target perturbation ``G_t : (R_t, t_t)`` (noise-free)
   and distributes it to every provider (never to the miner);
2. draws the exchange plan: a uniform permutation ``tau`` with its own slot
   redirected so it never *receives* a dataset (holding both a dataset and
   the adaptor sequence would let it undo a peer's perturbation);
3. assigns each source an opaque tag and tells it where to send its
   perturbed table;
4. collects the ``k`` tagged space adaptors and hands the miner the
   adaptor sequence, ordered by tag — the tag join stands in for the
   paper's "maps the adaptors to the right target by the permutation
   sequence" while revealing nothing about sources to the miner.

Extension — satisfaction-aware target selection
-----------------------------------------------
When ``config.target_candidates > 1`` the coordinator first broadcasts
several candidate targets, collects one scalar satisfaction score per
candidate from every provider (see
:meth:`repro.parties.provider.DataProvider.on_target_proposals`), and fixes
the target with the highest mean score.  With the default of one candidate
the flow is exactly the paper's: a single random target.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..core.perturbation import GeometricPerturbation, sample_perturbation
from ..core.protocol import ExchangePlan, draw_exchange_plan
from ..datasets.schema import Dataset
from ..simnet.channel import Network
from ..simnet.messages import Message, MessageKind
from .config import SAPConfig
from .provider import DataProvider

__all__ = ["Coordinator"]


class Coordinator(DataProvider):
    """``DP_k``: a provider with the extra coordination duties."""

    def __init__(
        self,
        name: str,
        network: Network,
        dataset: Dataset,
        test_mask: np.ndarray,
        config: SAPConfig,
        seed: int = 0,
    ) -> None:
        super().__init__(name, network, dataset, test_mask, config, seed=seed)
        self.plan: Optional[ExchangePlan] = None
        self.candidates: List[GeometricPerturbation] = []
        self.chosen_candidate: Optional[int] = None
        self._votes: Dict[str, np.ndarray] = {}
        self._adaptors_by_tag: Dict[str, Dict[str, np.ndarray]] = {}
        self._sequence_sent = False
        self._sent_tags: set[str] = set()
        self.admitted: List[str] = []

    # ------------------------------------------------------------------
    # kick-off
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin the protocol run (schedule at t=0 from the session driver)."""
        d = self.dataset.n_features
        self.plan = draw_exchange_plan(self.config.k, self.rng)
        self._send_exchange_assignments()
        if self.config.round_timeout is not None:
            self.network.simulator.schedule(
                self.config.round_timeout, self._check_timeout
            )

        self.candidates = [
            sample_perturbation(d, self.rng, noise_sigma=0.0)
            for _ in range(self.config.target_candidates)
        ]
        if self.config.target_candidates == 1:
            self._fix_target(0)
            return
        # Extension path: ask every provider to score the candidates.
        payload = {
            "candidates": [
                {"rotation": c.rotation, "translation": c.translation}
                for c in self.candidates
            ]
        }
        for index in range(self.config.k):
            self.send(
                MessageKind.TARGET_PROPOSALS,
                self.config.provider_name(index),
                dict(payload),
            )

    def _send_exchange_assignments(self) -> None:
        assert self.plan is not None
        for index in range(self.config.k):
            receiver_index = self.plan.receiver_of_source(index)
            self.send(
                MessageKind.EXCHANGE_ASSIGNMENT,
                self.config.provider_name(index),
                {
                    "tag": self.plan.tag_of_source(index),
                    "receiver": self.config.provider_name(receiver_index),
                },
            )

    def _fix_target(self, candidate_index: int) -> None:
        self.chosen_candidate = candidate_index
        target = self.candidates[candidate_index]
        payload = {
            "rotation": target.rotation,
            "translation": target.translation,
        }
        for index in range(self.config.k):
            self.send(
                MessageKind.TARGET_PARAMS,
                self.config.provider_name(index),
                dict(payload),
            )

    # ------------------------------------------------------------------
    # liveness watchdog
    # ------------------------------------------------------------------
    def _check_timeout(self) -> None:
        """Abort the run if the model report has not arrived in time.

        The completion signal is the coordinator's own copy of the miner's
        ``model_report``; if it is still missing at the deadline the run
        is stuck (lost dataset, partitioned link, crashed peer) and every
        principal is told to abandon its state.
        """
        if self.model_report is not None:
            return
        reason = (
            f"round timed out after {self.config.round_timeout}s of virtual time"
        )
        for index in range(self.config.k - 1):
            self.send(
                MessageKind.ABORT,
                self.config.provider_name(index),
                {"reason": reason},
            )
        self.send(MessageKind.ABORT, self.config.miner_name, {"reason": reason})
        self.model_report = {"aborted": True, "reason": reason}

    # ------------------------------------------------------------------
    # target voting (extension)
    # ------------------------------------------------------------------
    def on_target_vote(self, message: Message) -> None:
        """Collect one score vector per provider; fix the argmax target."""
        if message.sender in self._votes:
            raise ValueError(f"duplicate vote from {message.sender!r}")
        scores = np.asarray(message.payload["scores"], dtype=float)
        if scores.shape != (len(self.candidates),):
            raise ValueError(
                f"vote from {message.sender!r} has shape {scores.shape}, "
                f"expected ({len(self.candidates)},)"
            )
        self._votes[message.sender] = scores
        if len(self._votes) == self.config.k and self.chosen_candidate is None:
            mean_scores = np.mean(list(self._votes.values()), axis=0)
            self._fix_target(int(np.argmax(mean_scores)))

    # ------------------------------------------------------------------
    # adaptor collection
    # ------------------------------------------------------------------
    def on_space_adaptor(self, message: Message) -> None:
        """Collect a tagged adaptor; release the sequence when all ``k``
        have arrived."""
        tag = message.payload["tag"]
        if tag in self._adaptors_by_tag:
            raise ValueError(f"duplicate adaptor for tag {tag!r}")
        self._adaptors_by_tag[tag] = {
            "tag": tag,
            "rotation_adaptor": np.asarray(message.payload["rotation_adaptor"]),
            "translation_adaptor": np.asarray(
                message.payload["translation_adaptor"]
            ),
        }
        self._maybe_send_sequence()

    def _maybe_send_sequence(self) -> None:
        if not self._sequence_sent:
            if len(self._adaptors_by_tag) < self.config.k:
                return
            # Order by tag: deterministic, and uncorrelated with source
            # identity because tags are uniform random strings.
            tags = sorted(self._adaptors_by_tag)
        else:
            # Incremental (dynamic-join) path: ship only adaptors the miner
            # has not seen yet.
            tags = sorted(set(self._adaptors_by_tag) - self._sent_tags)
            if not tags:
                return
        sequence = [self._adaptors_by_tag[tag] for tag in tags]
        self.send(
            MessageKind.ADAPTOR_SEQUENCE,
            self.config.miner_name,
            {"adaptors": sequence},
        )
        self._sequence_sent = True
        self._sent_tags.update(tags)

    # ------------------------------------------------------------------
    # dynamic membership (extension)
    # ------------------------------------------------------------------
    def admit_provider(self, provider_name: str) -> str:
        """Extension over the paper's static membership: admit a provider
        after the initial round.

        The joiner gets the (already fixed) target parameters and an
        exchange assignment pointing at a uniformly random *existing*
        non-coordinator provider, so its table reaches the miner through a
        forwarder exactly like everyone else's; its tagged adaptor is then
        relayed incrementally.  Returns the joiner's tag (for tests and
        audits — the miner never learns the tag -> source mapping).
        """
        if self.target is None:
            raise RuntimeError(
                "providers can only be admitted after the target is fixed"
            )
        tag = self.rng.bytes(12).hex()
        receiver_index = int(self.rng.integers(self.config.k - 1))
        self.send(
            MessageKind.TARGET_PARAMS,
            provider_name,
            {
                "rotation": self.target.rotation,
                "translation": self.target.translation,
            },
        )
        self.send(
            MessageKind.EXCHANGE_ASSIGNMENT,
            provider_name,
            {
                "tag": tag,
                "receiver": self.config.provider_name(receiver_index),
            },
        )
        self.admitted.append(provider_name)
        return tag
