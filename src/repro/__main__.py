"""``python -m repro`` — dispatches to the CLI (see :mod:`repro.cli`).

User-input mistakes (unknown dataset, unknown subcommand, malformed flag
values) exit with code 2 and a one-line message — never a traceback; an
interrupt exits with the conventional 130.  Both behaviours live in
:func:`repro.cli.main`, which the installed ``repro`` script shares.
"""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
