"""Versioned, corruption-detecting session checkpoints.

A checkpoint file is::

    magic (4B) | schema version (u16) | sha256(payload) (32B)
    | payload length (u64) | payload

with the payload encoded by :mod:`repro.checkpoint.codec`.  The header
makes every failure mode a *distinct, friendly* error: wrong magic (not a
checkpoint at all), version mismatch (written by an incompatible build),
truncation (length disagrees with the file), and bit rot (digest
disagrees with the payload).  All of them raise :class:`CheckpointError`,
a ``ValueError`` subclass, which the CLI maps to a one-line ``error:``
message and exit code 2.

Writes are atomic: the payload lands in a ``.tmp`` sibling first and is
``os.replace``d into place, so a crash mid-save can never leave a
half-written file under the checkpoint's final name.

:class:`Checkpointer` is the runtime side: the session driver asks it
:meth:`~Checkpointer.due` at every round boundary and hands it the state
payload to :meth:`~Checkpointer.save`.  It also carries the *eviction*
signal — a thread-safe request (from a serving engine or a
``--stop-after`` budget) to checkpoint at the next boundary and abandon
the run with :class:`SessionEvicted`, which names the checkpoint file to
resume from.
"""

from __future__ import annotations

import hashlib
import os
import struct
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from .codec import CodecError, decode, encode

__all__ = [
    "SCHEMA_VERSION",
    "CheckpointError",
    "SessionEvicted",
    "SessionCheckpoint",
    "Checkpointer",
    "dumps_checkpoint",
    "loads_checkpoint",
    "save_checkpoint",
    "load_checkpoint",
    "list_checkpoints",
    "prune_checkpoints",
]

#: File magic: "repro checkpoint".
MAGIC = b"RPCK"

#: Bump on any incompatible payload-layout change; loads refuse other
#: versions rather than guessing.
SCHEMA_VERSION = 1

_HEADER = struct.Struct(">4sH32sQ")


class CheckpointError(ValueError):
    """A checkpoint cannot be written, read, or applied.

    Subclasses ``ValueError`` so the CLI's friendly error path (one-line
    message, exit 2) handles it without special casing.
    """


class SessionEvicted(Exception):
    """A session was checkpointed and abandoned at a round boundary.

    Raised *through* the session driver when eviction was requested (by
    :meth:`repro.serve.MiningService.evict` or a ``--stop-after`` budget).
    Carries the path of the checkpoint that resumes the session.
    """

    def __init__(self, path: str, windows_done: int, records: int) -> None:
        super().__init__(
            f"session evicted after {windows_done} windows "
            f"({records} records); resume from {path}"
        )
        self.path = path
        self.windows_done = windows_done
        self.records = records


@dataclass(frozen=True)
class SessionCheckpoint:
    """One loaded (or about-to-be-saved) checkpoint.

    ``payload`` is the full decoded state mapping; ``fingerprint`` is the
    sha256 hex digest of its encoded bytes — the *format fingerprint*
    that names this exact state, printed by ``repro checkpoint inspect``
    and stable across save/load round trips.
    """

    schema_version: int
    fingerprint: str
    payload: Dict[str, Any]

    @property
    def config(self) -> Dict[str, Any]:
        return self.payload["config"]

    @property
    def source(self) -> Dict[str, Any]:
        return self.payload["source"]

    @property
    def spec(self) -> Optional[Dict[str, Any]]:
        return self.payload.get("spec")

    @property
    def progress(self) -> Dict[str, Any]:
        return self.payload["progress"]

    def describe(self) -> Dict[str, Any]:
        """The ``inspect`` summary: identity + progress, no bulk state."""
        progress = self.progress
        source = self.source
        config = self.config
        return {
            "schema_version": self.schema_version,
            "fingerprint": self.fingerprint,
            "created_unix": self.payload.get("created_unix"),
            "dataset": source.get("name"),
            "stream": source.get("kind"),
            "n_records": source.get("n_records"),
            "k": config.get("k"),
            "classifier": config.get("classifier"),
            "window_size": config.get("window_size"),
            "shards": config.get("shards"),
            "shard_backend": config.get("shard_backend"),
            "seed": config.get("seed"),
            "records": progress.get("records"),
            "windows": progress.get("windows"),
            "epochs": progress.get("epochs"),
            "resumable_by_service": self.spec is not None,
        }


def dumps_checkpoint(payload: Dict[str, Any]) -> bytes:
    """Serialize ``payload`` into the full on-disk checkpoint format.

    The returned bytes *are* a checkpoint file — header (magic, schema
    version, payload digest, payload length) plus the codec-encoded
    payload — so they can travel over a wire and be written verbatim on
    the other side, or handed straight to :func:`loads_checkpoint`.
    """
    try:
        body = encode(payload)
    except CodecError as exc:
        raise CheckpointError(f"cannot encode checkpoint state: {exc}") from exc
    digest = hashlib.sha256(body).digest()
    header = _HEADER.pack(MAGIC, SCHEMA_VERSION, digest, len(body))
    return header + body


def loads_checkpoint(
    data: bytes, origin: str = "checkpoint data"
) -> SessionCheckpoint:
    """Validate and decode checkpoint *bytes*; refuses anything damaged.

    The byte-level inverse of :func:`dumps_checkpoint` — the same
    validation :func:`load_checkpoint` applies to a file, without the
    file.  ``origin`` names the bytes' source in error messages (a path,
    a replica, ...) so every damage mode stays a distinct, attributable
    :class:`CheckpointError`: truncated header, foreign magic, schema
    version mismatch, length mismatch, digest mismatch, undecodable
    payload, and a payload that carries no session state.
    """
    if len(data) < _HEADER.size:
        raise CheckpointError(
            f"checkpoint {origin} is truncated "
            f"({len(data)} bytes; the header alone is {_HEADER.size})"
        )
    magic, version, digest, length = _HEADER.unpack_from(data)
    if magic != MAGIC:
        raise CheckpointError(f"{origin} is not a repro checkpoint file")
    if version != SCHEMA_VERSION:
        raise CheckpointError(
            f"checkpoint {origin} has schema version {version}; this build "
            f"reads version {SCHEMA_VERSION} only"
        )
    body = data[_HEADER.size:]
    if len(body) != length:
        raise CheckpointError(
            f"checkpoint {origin} is truncated: header promises {length} "
            f"payload bytes, file carries {len(body)}"
        )
    if hashlib.sha256(body).digest() != digest:
        raise CheckpointError(
            f"checkpoint {origin} is corrupt: payload digest mismatch"
        )
    try:
        payload = decode(body)
    except CodecError as exc:
        raise CheckpointError(
            f"checkpoint {origin} payload does not decode: {exc}"
        ) from exc
    if not isinstance(payload, dict) or "state" not in payload:
        raise CheckpointError(
            f"checkpoint {origin} does not carry session state"
        )
    return SessionCheckpoint(
        schema_version=version, fingerprint=digest.hex(), payload=payload
    )


def save_checkpoint(path: str, payload: Dict[str, Any]) -> SessionCheckpoint:
    """Atomically write ``payload`` to ``path``; returns the checkpoint."""
    raw = dumps_checkpoint(payload)
    _, _, digest, _ = _HEADER.unpack_from(raw)
    tmp_path = f"{path}.tmp"
    try:
        with open(tmp_path, "wb") as handle:
            handle.write(raw)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except OSError as exc:
        raise CheckpointError(f"cannot write checkpoint {path!r}: {exc}") from exc
    return SessionCheckpoint(
        schema_version=SCHEMA_VERSION,
        fingerprint=digest.hex(),
        payload=payload,
    )


def load_checkpoint(path: str) -> SessionCheckpoint:
    """Read and validate a checkpoint file; refuses anything damaged."""
    try:
        with open(path, "rb") as handle:
            raw = handle.read()
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path!r}: {exc}") from exc
    return loads_checkpoint(raw, origin=f"{path!r}")


@dataclass
class Checkpointer:
    """Round-boundary checkpoint policy + eviction signal for one session.

    Parameters
    ----------
    directory:
        Where checkpoint files land (created on first save).
    every:
        Save whenever this many *new* windows completed since the last
        save; ``None`` saves only when eviction is requested.
    label:
        File-name stem; files are ``<label>-w<windows>.ckpt``.
    spec_mapping:
        Optional :meth:`~repro.serve.SessionSpec.to_mapping` payload,
        embedded so a serving engine can re-admit the session from the
        file alone.
    telemetry:
        Optional :class:`repro.obs.Telemetry`; saves emit a ``checkpoint``
        span and count into ``repro_checkpoints_total{outcome="saved"}``.
    retain:
        Keep only the newest ``retain`` checkpoint files for this session;
        older ones are deleted after each successful save.  ``None``
        (default) keeps every save.
    """

    directory: str
    every: Optional[int] = None
    label: str = "session"
    spec_mapping: Optional[Dict[str, Any]] = None
    telemetry: Optional[Any] = None
    stop_after: Optional[int] = None
    retain: Optional[int] = None
    saved_paths: List[str] = field(default_factory=list)
    last_path: Optional[str] = None

    def __post_init__(self) -> None:
        if self.every is not None and self.every < 1:
            raise CheckpointError(
                f"checkpoint interval must be a positive number of windows, "
                f"got {self.every}"
            )
        if self.stop_after is not None and self.stop_after < 1:
            raise CheckpointError(
                f"stop-after must be a positive number of windows, "
                f"got {self.stop_after}"
            )
        if self.retain is not None and self.retain < 1:
            raise CheckpointError(
                f"retain must keep at least one checkpoint, got {self.retain}"
            )
        self._evict = threading.Event()
        self._last_saved_windows = -1

    # -- eviction ------------------------------------------------------
    def request_evict(self) -> None:
        """Ask the session to checkpoint and abandon at the next boundary."""
        self._evict.set()

    @property
    def evict_requested(self) -> bool:
        return self._evict.is_set()

    # -- policy --------------------------------------------------------
    def due(self, windows_done: int) -> bool:
        """Should the driver checkpoint at this round boundary?"""
        if self.stop_after is not None and windows_done >= self.stop_after:
            self._evict.set()
        if self._evict.is_set():
            return True
        if self.every is None or windows_done == 0:
            return False
        return windows_done - max(self._last_saved_windows, 0) >= self.every

    # -- persistence ---------------------------------------------------
    def save(self, payload: Dict[str, Any]) -> str:
        """Write one checkpoint file; returns its path."""
        windows_done = int(payload["progress"]["windows"])
        if windows_done == self._last_saved_windows:
            return self.last_path  # same boundary; nothing new to persist
        payload = dict(payload, created_unix=_now())
        if self.spec_mapping is not None:
            payload["spec"] = self.spec_mapping
        try:
            os.makedirs(self.directory, exist_ok=True)
        except OSError as exc:
            raise CheckpointError(
                f"cannot create checkpoint directory {self.directory!r}: {exc}"
            ) from exc
        path = os.path.join(
            self.directory, f"{self.label}-w{windows_done:05d}.ckpt"
        )
        tel = self.telemetry
        span = (
            tel.span("checkpoint", outcome="saved", windows=windows_done)
            if tel is not None and tel.enabled
            else None
        )
        try:
            save_checkpoint(path, payload)
        finally:
            if span is not None:
                span.end()
        if tel is not None:
            tel.metrics.counter(
                "repro_checkpoints_total",
                "Checkpoint operations by outcome.",
                outcome="saved",
            ).inc()
        self._last_saved_windows = windows_done
        self.saved_paths.append(path)
        self.last_path = path
        if self.retain is not None:
            removed = prune_checkpoints(
                self.directory, retain=self.retain, label=self.label
            )
            if removed:
                self.saved_paths = [
                    p for p in self.saved_paths if p not in set(removed)
                ]
        return path


def list_checkpoints(directory: str, label: Optional[str] = None) -> List[str]:
    """Checkpoint files under ``directory``, oldest boundary first.

    Recognizes the ``<label>-w<windows>.ckpt`` names written by
    :class:`Checkpointer`; other files are ignored.  ``label`` restricts
    the listing to one session's files.  Ordering is (label, windows), so
    per-session sequences read in save order.
    """
    try:
        names = os.listdir(directory)
    except OSError as exc:
        raise CheckpointError(
            f"cannot list checkpoint directory {directory!r}: {exc}"
        ) from exc
    found = []
    for name in names:
        parsed = _parse_checkpoint_name(name)
        if parsed is None:
            continue
        file_label, windows = parsed
        if label is not None and file_label != label:
            continue
        found.append((file_label, windows, os.path.join(directory, name)))
    found.sort()
    return [path for _, _, path in found]


def prune_checkpoints(
    directory: str, retain: int, label: Optional[str] = None
) -> List[str]:
    """Delete all but the newest ``retain`` checkpoints per session label.

    Retention is applied *per label* so one chatty session cannot evict
    another session's only checkpoint.  Returns the deleted paths.
    """
    if retain < 1:
        raise CheckpointError(
            f"retain must keep at least one checkpoint, got {retain}"
        )
    by_label: Dict[str, List[str]] = {}
    for path in list_checkpoints(directory, label=label):
        name_label, _ = _parse_checkpoint_name(os.path.basename(path))
        by_label.setdefault(name_label, []).append(path)
    removed: List[str] = []
    for paths in by_label.values():
        for path in paths[:-retain]:
            try:
                os.remove(path)
            except FileNotFoundError:
                continue  # concurrent pruner got there first
            except OSError as exc:
                raise CheckpointError(
                    f"cannot prune checkpoint {path!r}: {exc}"
                ) from exc
            removed.append(path)
    return removed


def _parse_checkpoint_name(name: str):
    """``(label, windows)`` from ``<label>-w<NNNNN>.ckpt``, else ``None``."""
    if not name.endswith(".ckpt"):
        return None
    stem = name[: -len(".ckpt")]
    label, sep, windows = stem.rpartition("-w")
    if not sep or not label or not windows.isdigit():
        return None
    return label, int(windows)


def _now() -> float:
    """Wall-clock stamp for checkpoint metadata (patchable in tests)."""
    return time.time()
