"""Durable sessions: versioned checkpoint / bit-identical restore.

The space-adaptation protocol already forces every piece of session state
to be explicit — incremental normalizers with exact merge algebra, online
miners that migrate across epochs via the adaptor identity, epoch + trust
state, event-time ingest gates — so durability is one serialization layer
away.  This package is that layer:

* :mod:`~repro.checkpoint.codec` — a pickle-free tagged binary encoding
  that round-trips numpy arrays/scalars, big RNG state integers, and
  insertion-ordered dicts exactly;
* :mod:`~repro.checkpoint.checkpoint` — the versioned
  :class:`SessionCheckpoint` file format (magic, schema version, sha256
  payload fingerprint, atomic write-then-rename, corruption refusal), the
  runtime :class:`Checkpointer` policy (checkpoint-every-N-windows, the
  eviction signal), and :class:`SessionEvicted`.

The *content* of a checkpoint is owned by the session driver
(:func:`repro.streaming.stream_session._execute_stream_session` builds
and re-applies the state payload); this package deliberately knows
nothing about streaming or serving, so every other subpackage may import
it without cycles.  The restore invariant, enforced by the round-trip
property tests: kill/restore at any round boundary reproduces the
uninterrupted session fingerprint **bit-identically**, across backends,
shard counts, plans, late policies, and mid-run re-negotiations.
"""

from .checkpoint import (
    SCHEMA_VERSION,
    Checkpointer,
    CheckpointError,
    SessionCheckpoint,
    SessionEvicted,
    dumps_checkpoint,
    list_checkpoints,
    load_checkpoint,
    loads_checkpoint,
    prune_checkpoints,
    save_checkpoint,
)
from .codec import CodecError, decode, encode

__all__ = [
    "SCHEMA_VERSION",
    "CheckpointError",
    "SessionEvicted",
    "SessionCheckpoint",
    "Checkpointer",
    "dumps_checkpoint",
    "loads_checkpoint",
    "save_checkpoint",
    "load_checkpoint",
    "list_checkpoints",
    "prune_checkpoints",
    "CodecError",
    "encode",
    "decode",
]
