"""A tiny self-describing binary codec for checkpoint payloads.

Checkpoints must round-trip *exactly* — a restored session has to replay
bit-identically — and they must never execute code on load, which rules
out ``pickle``.  JSON cannot carry numpy arrays, numpy scalar types
(reservoir labels are ``np.int64``; coercing them to Python ints would
change downstream ``repr``/dtype behaviour), arbitrary-precision RNG
state integers, or non-string dictionary keys.  So the payload format is
a small tagged, length-prefixed encoding of exactly the value shapes a
:class:`~repro.checkpoint.SessionCheckpoint` contains:

``None`` / ``bool`` / ``int`` (arbitrary precision — PCG64 state words
are 128-bit) / ``float`` / ``str`` / ``bytes`` / ``list`` / ``tuple`` /
``dict`` (any encodable keys, insertion order preserved) /
``numpy.ndarray`` (dtype + shape + C-order buffer) / numpy scalars
(dtype-preserving).

Anything else is a programming error and raises :class:`CodecError` at
*encode* time, so a checkpoint that was written can always be read back.
"""

from __future__ import annotations

import struct
from typing import Any

import numpy as np

__all__ = ["CodecError", "encode", "decode"]


class CodecError(ValueError):
    """An unencodable value or a malformed/truncated byte stream."""


_TAG_NONE = b"N"
_TAG_TRUE = b"T"
_TAG_FALSE = b"F"
_TAG_INT = b"i"
_TAG_FLOAT = b"f"
_TAG_STR = b"s"
_TAG_BYTES = b"b"
_TAG_LIST = b"l"
_TAG_TUPLE = b"t"
_TAG_DICT = b"d"
_TAG_ARRAY = b"a"
_TAG_NPSCALAR = b"x"

_U32 = struct.Struct(">I")
_F64 = struct.Struct(">d")


def _pack_bytes(out: list, raw: bytes) -> None:
    out.append(_U32.pack(len(raw)))
    out.append(raw)


def _encode_into(value: Any, out: list) -> None:
    # ``bool`` before ``int``: bool is an int subclass.
    if value is None:
        out.append(_TAG_NONE)
    elif value is True:
        out.append(_TAG_TRUE)
    elif value is False:
        out.append(_TAG_FALSE)
    elif isinstance(value, int):
        out.append(_TAG_INT)
        # Signed, minimal-length big-endian: covers counters and the
        # 128-bit PCG64 state words alike.
        length = (value.bit_length() + 8) // 8 or 1
        _pack_bytes(out, value.to_bytes(length, "big", signed=True))
    elif isinstance(value, float):
        out.append(_TAG_FLOAT)
        out.append(_F64.pack(value))
    elif isinstance(value, str):
        out.append(_TAG_STR)
        _pack_bytes(out, value.encode("utf-8"))
    elif isinstance(value, bytes):
        out.append(_TAG_BYTES)
        _pack_bytes(out, value)
    elif isinstance(value, (list, tuple)):
        out.append(_TAG_LIST if isinstance(value, list) else _TAG_TUPLE)
        out.append(_U32.pack(len(value)))
        for item in value:
            _encode_into(item, out)
    elif isinstance(value, dict):
        out.append(_TAG_DICT)
        out.append(_U32.pack(len(value)))
        for key, item in value.items():
            _encode_into(key, out)
            _encode_into(item, out)
    elif isinstance(value, np.ndarray):
        if value.dtype.hasobject or value.dtype.names is not None:
            raise CodecError(
                f"cannot encode arrays of dtype {value.dtype!r}"
            )
        out.append(_TAG_ARRAY)
        _pack_bytes(out, value.dtype.str.encode("ascii"))
        out.append(_U32.pack(value.ndim))
        for extent in value.shape:
            out.append(_U32.pack(extent))
        _pack_bytes(out, np.ascontiguousarray(value).tobytes())
    elif isinstance(value, np.generic):
        out.append(_TAG_NPSCALAR)
        arr = np.asarray(value)
        _pack_bytes(out, arr.dtype.str.encode("ascii"))
        _pack_bytes(out, arr.tobytes())
    else:
        raise CodecError(
            f"cannot encode a {type(value).__name__} into a checkpoint"
        )


def encode(value: Any) -> bytes:
    """Serialize ``value`` into the tagged binary payload format."""
    out: list = []
    _encode_into(value, out)
    return b"".join(out)


class _Reader:
    __slots__ = ("data", "pos")

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.pos = 0

    def take(self, n: int) -> bytes:
        end = self.pos + n
        if end > len(self.data):
            raise CodecError("truncated checkpoint payload")
        chunk = self.data[self.pos:end]
        self.pos = end
        return chunk

    def take_sized(self) -> bytes:
        (length,) = _U32.unpack(self.take(4))
        return self.take(length)


def _decode_from(reader: _Reader) -> Any:
    tag = reader.take(1)
    if tag == _TAG_NONE:
        return None
    if tag == _TAG_TRUE:
        return True
    if tag == _TAG_FALSE:
        return False
    if tag == _TAG_INT:
        return int.from_bytes(reader.take_sized(), "big", signed=True)
    if tag == _TAG_FLOAT:
        return _F64.unpack(reader.take(8))[0]
    if tag == _TAG_STR:
        return reader.take_sized().decode("utf-8")
    if tag == _TAG_BYTES:
        return reader.take_sized()
    if tag in (_TAG_LIST, _TAG_TUPLE):
        (count,) = _U32.unpack(reader.take(4))
        items = [_decode_from(reader) for _ in range(count)]
        return items if tag == _TAG_LIST else tuple(items)
    if tag == _TAG_DICT:
        (count,) = _U32.unpack(reader.take(4))
        result = {}
        for _ in range(count):
            key = _decode_from(reader)
            result[key] = _decode_from(reader)
        return result
    if tag == _TAG_ARRAY:
        dtype = np.dtype(reader.take_sized().decode("ascii"))
        (ndim,) = _U32.unpack(reader.take(4))
        shape = tuple(
            _U32.unpack(reader.take(4))[0] for _ in range(ndim)
        )
        raw = reader.take_sized()
        arr = np.frombuffer(raw, dtype=dtype)
        if arr.size != int(np.prod(shape, dtype=np.int64)):
            raise CodecError("array extent does not match its buffer")
        # ``frombuffer`` views are read-only; restored state is mutated.
        return arr.reshape(shape).copy()
    if tag == _TAG_NPSCALAR:
        dtype = np.dtype(reader.take_sized().decode("ascii"))
        raw = reader.take_sized()
        arr = np.frombuffer(raw, dtype=dtype)
        if arr.size != 1:
            raise CodecError("numpy scalar buffer is not a single element")
        return arr[0]
    raise CodecError(f"unknown payload tag {tag!r}")


def decode(data: bytes) -> Any:
    """Inverse of :func:`encode`; raises :class:`CodecError` on damage."""
    reader = _Reader(data)
    value = _decode_from(reader)
    if reader.pos != len(data):
        raise CodecError(
            f"{len(data) - reader.pos} trailing bytes after checkpoint payload"
        )
    return value
