"""Distance-inference attack.

A subtler insider threat: the adversary knows some original records *are*
in the table but does not know which perturbed rows they became.  Because
rotation + translation preserve pairwise Euclidean distances, the adversary
can search the perturbed table for a set of points whose mutual-distance
profile matches the known records', recover the correspondence, and then
run the known-sample affine fit of
:class:`repro.attacks.known_sample.KnownSampleAttack`.

The matcher is a backtracking consistency search: seed with a column pair
whose distance matches the first two known records, then extend one known
record at a time, requiring every pairwise distance to agree within a
tolerance.  The tolerance escalates through a schedule, so exact matches
are found almost instantly on noise-free perturbations while noisy tables
need (and get) looser matching — the additive-noise component both blurs
the match and degrades the downstream fit, which is the defence the
paper's noise term provides.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .base import Attack, AttackContext
from .known_sample import KnownSampleAttack

__all__ = ["DistanceInferenceAttack"]


class DistanceInferenceAttack(Attack):
    """Match known originals to perturbed rows by distance consistency.

    Parameters
    ----------
    max_points:
        Use at most this many known records for matching (more points give
        a more constrained — hence more reliable — search at higher cost).
    max_seed_pairs:
        Cap on candidate seed pairs examined per tolerance level.
    branch_width:
        Cap on candidate extensions per partial assignment (best-first).
    max_table:
        Tables with more columns than this skip the quadratic distance
        matrix and fall back to the information-free estimate.
    """

    name = "distance_inference"

    def __init__(
        self,
        max_points: int = 5,
        max_seed_pairs: int = 400,
        branch_width: int = 8,
        max_table: int = 2200,
    ) -> None:
        self.max_points = max_points
        self.max_seed_pairs = max_seed_pairs
        self.branch_width = branch_width
        self.max_table = max_table

    # ------------------------------------------------------------------
    def reconstruct(self, context: AttackContext) -> np.ndarray:
        mean_guess = np.repeat(context.column_means[:, None], context.n, axis=1)
        if context.n_known < 2 or context.n > self.max_table:
            return mean_guess

        m = min(context.n_known, self.max_points)
        X_known = context.known_original[:, :m]
        Y = context.perturbed

        matched = self._match(X_known, Y)
        if matched is None:
            return mean_guess

        inferred = AttackContext(
            perturbed=Y,
            column_means=context.column_means,
            column_stds=context.column_stds,
            column_mins=context.column_mins,
            column_maxs=context.column_maxs,
            column_quantiles=context.column_quantiles,
            known_original=X_known,
            known_perturbed=Y[:, matched],
            rng=context.rng,
        )
        return KnownSampleAttack().reconstruct(inferred)

    # ------------------------------------------------------------------
    def _match(self, X_known: np.ndarray, Y: np.ndarray) -> Optional[List[int]]:
        """Backtracking distance-consistency search."""
        target = _pairwise(X_known)  # (m, m) distances to reproduce
        observed = _pairwise(Y)  # (n, n) distances in the perturbed table
        m = target.shape[0]
        scale = 1.0 + float(np.median(target))

        for tolerance in (1e-4 * scale, 1e-3 * scale, 0.01 * scale, 0.05 * scale):
            assignment = self._search(target, observed, m, tolerance)
            if assignment is not None:
                return assignment
        return None

    def _search(
        self,
        target: np.ndarray,
        observed: np.ndarray,
        m: int,
        tolerance: float,
    ) -> Optional[List[int]]:
        n = observed.shape[0]
        error = np.abs(observed - target[0, 1])
        np.fill_diagonal(error, np.inf)
        flat = np.argwhere(error < tolerance)
        if len(flat) == 0:
            return None
        order = np.argsort(error[flat[:, 0], flat[:, 1]])
        seeds = flat[order[: self.max_seed_pairs]]

        for p, q in seeds:
            assignment = [int(p), int(q)]
            if self._extend(assignment, target, observed, m, tolerance):
                return assignment
        return None

    def _extend(
        self,
        assignment: List[int],
        target: np.ndarray,
        observed: np.ndarray,
        m: int,
        tolerance: float,
    ) -> bool:
        i = len(assignment)
        if i == m:
            return True
        # Candidates must match the distance to every already-placed record.
        deviations = np.zeros(observed.shape[0])
        feasible = np.ones(observed.shape[0], dtype=bool)
        for j, placed in enumerate(assignment):
            delta = np.abs(observed[:, placed] - target[i, j])
            feasible &= delta < tolerance
            deviations += delta
        feasible[assignment] = False
        candidates = np.flatnonzero(feasible)
        if len(candidates) == 0:
            return False
        candidates = candidates[np.argsort(deviations[candidates])]
        for candidate in candidates[: self.branch_width]:
            assignment.append(int(candidate))
            if self._extend(assignment, target, observed, m, tolerance):
                return True
            assignment.pop()
        return False


def _pairwise(X: np.ndarray) -> np.ndarray:
    """Pairwise Euclidean distances between columns of ``X``."""
    sq = np.sum(X * X, axis=0)
    gram = X.T @ X
    d2 = np.maximum(sq[:, None] + sq[None, :] - 2.0 * gram, 0.0)
    return np.sqrt(d2)
