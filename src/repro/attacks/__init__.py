"""Reconstruction attacks defining the privacy guarantee (SDM'07 models)."""

from .ak_ica import AKICAAttack
from .base import Attack, AttackContext, build_context
from .distance import DistanceInferenceAttack
from .ica import ICAAttack, fast_ica
from .known_sample import KnownSampleAttack
from .naive import NaiveEstimationAttack
from .pca import PCAAttack
from .resilience import AttackSuite, default_suite, evaluate_perturbation, fast_suite

__all__ = [
    "Attack",
    "AttackContext",
    "build_context",
    "NaiveEstimationAttack",
    "PCAAttack",
    "ICAAttack",
    "AKICAAttack",
    "fast_ica",
    "KnownSampleAttack",
    "DistanceInferenceAttack",
    "AttackSuite",
    "default_suite",
    "fast_suite",
    "evaluate_perturbation",
]
