"""AK-ICA: the known-sample / ICA hybrid attack.

The strongest combination in the SDM'07 attack discussion: ICA recovers the
independent components of the perturbed table *up to permutation, sign and
scale*, and a handful of known input-output record pairs resolves those
indeterminacies far more reliably than matching marginal statistics
(:class:`repro.attacks.ica.ICAAttack` must do the latter).

Procedure:

1. run FastICA on the perturbed table to get unit-variance components
   ``S`` and the unmixing map;
2. locate the known records' columns among the components (their column
   indices in the table are known to the adversary by construction of the
   known-pair model);
3. fit, per original dimension, a least-squares map from the component
   space to the original values using only the known pairs — this solves
   permutation, sign, and scale in one regression;
4. apply the map to all components.

With enough pairs this attack matches the plain known-sample regression on
noise-free rotations and can exceed it under noise (the ICA step
concentrates signal); with no pairs it degrades to the marginal-matching
ICA attack.
"""

from __future__ import annotations

import numpy as np

from .base import Attack, AttackContext
from .ica import ICAAttack, fast_ica

__all__ = ["AKICAAttack"]


class AKICAAttack(Attack):
    """ICA unmixing with known-sample indeterminacy resolution.

    Parameters
    ----------
    ridge:
        Tikhonov regularization of the component->original regression.
    max_iter / tol:
        FastICA iteration controls.
    """

    name = "ak_ica"

    def __init__(
        self, ridge: float = 1e-6, max_iter: int = 200, tol: float = 1e-5
    ) -> None:
        if ridge < 0:
            raise ValueError("ridge must be >= 0")
        self.ridge = ridge
        self.max_iter = max_iter
        self.tol = tol

    def reconstruct(self, context: AttackContext) -> np.ndarray:
        if context.n_known < 2:
            # Without pairs, fall back to marginal-matching ICA.
            return ICAAttack(max_iter=self.max_iter, tol=self.tol).reconstruct(
                context
            )

        components, unmixing = fast_ica(
            context.perturbed,
            rng=context.rng,
            max_iter=self.max_iter,
            tol=self.tol,
        )
        d = context.d

        # The adversary knows which table columns its known records are
        # (the known-pair model hands it (x_i, y_i) with y_i a column of
        # the table); recover the component coordinates of those columns.
        mean = context.perturbed.mean(axis=1, keepdims=True)
        known_components = unmixing @ (context.known_perturbed - mean)

        # Regress original values on components (jointly over dimensions),
        # with an intercept.
        m = context.n_known
        design = np.vstack([known_components, np.ones((1, m))])  # (d+1, m)
        gram = design @ design.T + self.ridge * np.eye(d + 1)
        coeffs = np.linalg.solve(gram, design @ context.known_original.T)
        B = coeffs[:d].T  # (d, d)
        c = coeffs[d]  # (d,)

        return B @ components + c[:, None]
