"""Independent Component Analysis reconstruction attack.

A rotation perturbation is a *mixing* of the original columns; when those
columns are statistically independent and non-Gaussian, ICA can unmix them
up to permutation, sign, and scale.  The SDM'07 analysis treats this as the
strongest statistics-only attack against pure rotation, and it is the
reason the geometric perturbation adds translation and noise.

This module implements FastICA from scratch (no sklearn offline):

1. centre and whiten the perturbed table (eigendecomposition of the
   covariance, small eigenvalues clamped);
2. symmetric fixed-point iteration with the ``logcosh`` contrast;
3. symmetric decorrelation ``W <- (W W')^{-1/2} W``.

The attack then resolves ICA's indeterminacies with the adversary's
background knowledge: each recovered component is matched to an original
column by comparing quantile profiles (both signs tried), the assignment is
solved with the Hungarian algorithm, and each matched component is
re-scaled to the column's known mean/std.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
from scipy.optimize import linear_sum_assignment

from .base import Attack, AttackContext

__all__ = ["fast_ica", "ICAAttack"]

_QUANTILE_GRID = np.linspace(0.0, 1.0, 21)


def _symmetric_decorrelation(W: np.ndarray) -> np.ndarray:
    """Return ``(W W')^{-1/2} W`` (makes the unmixing rows orthonormal)."""
    values, vectors = np.linalg.eigh(W @ W.T)
    values = np.maximum(values, 1e-12)
    inv_sqrt = vectors @ np.diag(1.0 / np.sqrt(values)) @ vectors.T
    return inv_sqrt @ W


def fast_ica(
    Y: np.ndarray,
    rng: np.random.Generator,
    max_iter: int = 200,
    tol: float = 1e-5,
) -> Tuple[np.ndarray, np.ndarray]:
    """FastICA with the logcosh contrast on a ``d x N`` matrix.

    Returns
    -------
    (components, unmixing):
        ``components`` is ``d x N`` with unit-variance rows;
        ``unmixing @ (Y - mean)`` reproduces them.
    """
    Y = np.asarray(Y, dtype=float)
    if Y.ndim != 2:
        raise ValueError("Y must be 2-D (d x N)")
    d, n = Y.shape
    if n < 2:
        raise ValueError("need at least 2 observations")
    mean = Y.mean(axis=1, keepdims=True)
    centred = Y - mean

    covariance = centred @ centred.T / n
    values, vectors = np.linalg.eigh(covariance)
    values = np.maximum(values, 1e-10)
    whiten = np.diag(1.0 / np.sqrt(values)) @ vectors.T
    Z = whiten @ centred  # identity covariance

    W = _symmetric_decorrelation(rng.normal(size=(d, d)))
    for _ in range(max_iter):
        WZ = W @ Z
        g = np.tanh(WZ)
        g_prime = 1.0 - g * g
        W_new = (g @ Z.T) / n - np.diag(g_prime.mean(axis=1)) @ W
        W_new = _symmetric_decorrelation(W_new)
        # Convergence: rows aligned with previous iteration (sign-agnostic).
        alignment = np.abs(np.einsum("ij,ij->i", W_new, W))
        W = W_new
        if np.max(1.0 - alignment) < tol:
            break

    components = W @ Z
    # Normalize rows to unit variance for downstream matching.
    stds = components.std(axis=1, keepdims=True)
    stds = np.where(stds > 1e-12, stds, 1.0)
    components = components / stds
    unmixing = (W / stds) @ whiten
    return components, unmixing


class ICAAttack(Attack):
    """FastICA unmixing + background-knowledge component matching.

    Parameters
    ----------
    max_iter / tol:
        FastICA iteration controls.
    """

    name = "ica"

    def __init__(self, max_iter: int = 200, tol: float = 1e-5) -> None:
        self.max_iter = max_iter
        self.tol = tol

    def reconstruct(self, context: AttackContext) -> np.ndarray:
        components, _ = fast_ica(
            context.perturbed,
            rng=context.rng,
            max_iter=self.max_iter,
            tol=self.tol,
        )
        d = context.d

        # Candidate estimates: each component, both signs, re-scaled to each
        # column's known moments.  Cost matrix compares quantile profiles.
        target_profiles = context.column_quantiles  # (d, q) of original columns
        cost = np.zeros((d, d))
        best_sign = np.ones((d, d))
        for c in range(d):
            component = components[c]
            for sign in (1.0, -1.0):
                profile_source = np.quantile(sign * component, _QUANTILE_GRID)
                for j in range(d):
                    scaled = (
                        context.column_means[j]
                        + context.column_stds[j] * profile_source
                    )
                    distance = float(np.linalg.norm(scaled - target_profiles[j]))
                    if sign > 0 or distance < cost[c, j]:
                        if sign > 0:
                            cost[c, j] = distance
                            best_sign[c, j] = 1.0
                        elif distance < cost[c, j]:
                            cost[c, j] = distance
                            best_sign[c, j] = -1.0

        component_idx, column_idx = linear_sum_assignment(cost)
        estimate = np.empty_like(context.perturbed)
        for c, j in zip(component_idx, column_idx):
            sign = best_sign[c, j]
            estimate[j] = (
                context.column_means[j]
                + context.column_stds[j] * sign * components[c]
            )
        return estimate
