"""Attack interface and the adversary's background knowledge model.

The SDM'07 companion paper evaluates perturbations against reconstruction
attacks parameterized by what the adversary knows:

* **column statistics** — marginal distributions of the original columns
  (public domain knowledge: age ranges, vote shares, ...);
* **known samples** — a handful of original records the adversary can
  place in the table (e.g. their own record, public figures).

:class:`AttackContext` carries exactly that knowledge plus the perturbed
table; attacks must not touch anything else (in particular, never the
perturbation parameters — those are the secret).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

__all__ = ["AttackContext", "Attack", "build_context"]


@dataclass
class AttackContext:
    """Everything the adversary has when mounting a reconstruction.

    Attributes
    ----------
    perturbed:
        The observed table ``Y`` in column orientation (``d x N``).
    column_means / column_stds / column_mins / column_maxs:
        Marginal statistics of the *original* normalized columns — the
        "known distributions" background knowledge.
    column_quantiles:
        ``(d, q)`` matrix of original per-column quantiles (a compact stand
        -in for "the adversary knows the column distributions"); used by the
        ICA attack to match recovered components to columns.
    known_original / known_perturbed:
        ``(d, m)`` matrices of m known input-output record pairs (empty for
        adversaries without insider samples).
    rng:
        Generator for any attack-internal randomness.
    """

    perturbed: np.ndarray
    column_means: np.ndarray
    column_stds: np.ndarray
    column_mins: np.ndarray
    column_maxs: np.ndarray
    column_quantiles: np.ndarray
    known_original: np.ndarray
    known_perturbed: np.ndarray
    rng: np.random.Generator = field(default_factory=np.random.default_rng)

    @property
    def d(self) -> int:
        """Data dimensionality."""
        return self.perturbed.shape[0]

    @property
    def n(self) -> int:
        """Number of observed records."""
        return self.perturbed.shape[1]

    @property
    def n_known(self) -> int:
        """Number of known record pairs."""
        return self.known_original.shape[1]


_QUANTILE_GRID = np.linspace(0.0, 1.0, 21)


def build_context(
    X: np.ndarray,
    Y: np.ndarray,
    known_fraction: float = 0.05,
    max_known: int = 20,
    rng: Optional[np.random.Generator] = None,
    seed: Optional[int] = None,
) -> AttackContext:
    """Assemble the adversary's view for evaluating one perturbation.

    Parameters
    ----------
    X / Y:
        Original and perturbed tables (``d x N``, same shape).  ``X`` is
        used only to derive the background knowledge (column statistics and
        the known-sample pairs); attacks never see it directly.
    known_fraction / max_known:
        Size of the known-sample set: ``min(max_known, ceil(fraction * N))``
        records drawn without replacement.
    """
    X = np.asarray(X, dtype=float)
    Y = np.asarray(Y, dtype=float)
    if X.shape != Y.shape:
        raise ValueError(f"shape mismatch: X {X.shape} vs Y {Y.shape}")
    if rng is None:
        rng = np.random.default_rng(seed)
    n = X.shape[1]
    m = min(max_known, max(0, int(np.ceil(known_fraction * n))))
    if m > 0:
        picks = rng.choice(n, size=m, replace=False)
        known_original = X[:, picks].copy()
        known_perturbed = Y[:, picks].copy()
    else:
        known_original = np.empty((X.shape[0], 0))
        known_perturbed = np.empty((X.shape[0], 0))
    return AttackContext(
        perturbed=Y.copy(),
        column_means=X.mean(axis=1),
        column_stds=X.std(axis=1),
        column_mins=X.min(axis=1),
        column_maxs=X.max(axis=1),
        column_quantiles=np.quantile(X, _QUANTILE_GRID, axis=1).T,
        known_original=known_original,
        known_perturbed=known_perturbed,
        rng=rng,
    )


class Attack(abc.ABC):
    """A reconstruction attack: perturbed table + background -> estimate."""

    #: short identifier used in reports and benchmark tables
    name: str = "attack"

    @abc.abstractmethod
    def reconstruct(self, context: AttackContext) -> np.ndarray:
        """Return the adversary's estimate ``X_hat`` (``d x N``)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"
