"""PCA-based reconstruction attack.

A second statistics-only adversary from the SDM'07 attack family: when the
adversary knows the *covariance structure* of the original table (e.g. from
a public sample of the same population), it can align the perturbed data's
principal axes with the known ones.  Concretely:

1. compute the principal axes and spectra of both the perturbed table and
   the known original covariance;
2. estimate the rotation as ``R_hat = U_perturbed @ U_known'`` (matching
   principal directions in spectral order, trying both signs per axis);
3. invert the estimated transform and re-centre on the known column means.

PCA alignment is weaker than ICA when sources are non-Gaussian (eigenvalue
ties and sign ambiguity hurt it) but needs only second-order knowledge —
the paper's discussion of attack hierarchies is reproduced by comparing it
with the other attacks in the ablation benchmark.
"""

from __future__ import annotations

import numpy as np

from .base import Attack, AttackContext

__all__ = ["PCAAttack"]


class PCAAttack(Attack):
    """Align principal axes of the perturbed data with known ones.

    The adversary's second-order knowledge is derived from the context's
    column statistics plus a sample covariance the context cannot carry —
    so this implementation reconstructs the *known* covariance from the
    known-sample pairs when available, and falls back to a diagonal
    covariance built from the known column standard deviations otherwise
    (the pure "public marginals" adversary).
    """

    name = "pca"

    def reconstruct(self, context: AttackContext) -> np.ndarray:
        Y = context.perturbed
        d = context.d

        # Perturbed principal axes.
        y_mean = Y.mean(axis=1, keepdims=True)
        y_centred = Y - y_mean
        cov_y = y_centred @ y_centred.T / max(context.n - 1, 1)
        w_y, u_y = np.linalg.eigh(cov_y)
        order_y = np.argsort(w_y)[::-1]
        u_y = u_y[:, order_y]

        # Known original covariance: from insider samples when possible.
        if context.n_known >= d + 1:
            X_known = context.known_original
            x_mean = X_known.mean(axis=1, keepdims=True)
            x_centred = X_known - x_mean
            cov_x = x_centred @ x_centred.T / max(context.n_known - 1, 1)
        else:
            cov_x = np.diag(context.column_stds**2)
        w_x, u_x = np.linalg.eigh(cov_x)
        order_x = np.argsort(w_x)[::-1]
        u_x = u_x[:, order_x]

        # Resolve per-axis sign ambiguity by matching third moments along
        # each principal direction (skewness survives orthogonal maps).
        projections = u_y.T @ y_centred  # (d, n) scores in perturbed axes
        signs = np.ones(d)
        if context.n_known >= 2:
            known_scores = u_x.T @ (
                context.known_original
                - context.known_original.mean(axis=1, keepdims=True)
            )
            for axis in range(d):
                m_perturbed = float(np.mean(projections[axis] ** 3))
                m_known = float(np.mean(known_scores[axis] ** 3))
                if m_perturbed * m_known < 0:
                    signs[axis] = -1.0

        estimate = u_x @ (signs[:, None] * projections)
        return estimate + context.column_means[:, None]
