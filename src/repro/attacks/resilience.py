"""Attack-suite evaluation: the privacy guarantee *is* the worst attack.

The paper's "minimum privacy guarantee" ``rho`` for a perturbation is the
minimum, over an attack suite and over columns, of the normalized
reconstruction-error metric in :mod:`repro.core.privacy`.  This module
packages that evaluation loop:

* :class:`AttackSuite` — a named list of attacks with a shared adversary
  knowledge model (known-sample fraction etc.);
* :meth:`AttackSuite.evaluate` — perturb once, run every attack, return a
  :class:`~repro.core.privacy.PrivacyReport`;
* :func:`default_suite` / :func:`fast_suite` — the full evaluation suite
  used for reported numbers, and the cheap suite used inside optimization
  loops (ICA dominates runtime; the fast suite drops it and the SDM'07
  results show the known-sample family dominates the guarantee anyway once
  the adversary holds samples).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.perturbation import GeometricPerturbation
from ..core.privacy import PrivacyReport, column_privacy
from .base import Attack, build_context
from .distance import DistanceInferenceAttack
from .ica import ICAAttack
from .known_sample import KnownSampleAttack
from .naive import NaiveEstimationAttack
from .pca import PCAAttack

__all__ = ["AttackSuite", "default_suite", "fast_suite", "evaluate_perturbation"]


@dataclass
class AttackSuite:
    """A set of attacks plus the adversary-knowledge parameters.

    Attributes
    ----------
    attacks:
        The attacks to run; their ``name`` attributes key the report.
    known_fraction / max_known:
        Insider-knowledge size for sample-based attacks (see
        :func:`repro.attacks.base.build_context`).
    """

    attacks: Sequence[Attack]
    known_fraction: float = 0.05
    max_known: int = 20

    def evaluate(
        self,
        perturbation: GeometricPerturbation,
        X: np.ndarray,
        rng: np.random.Generator,
    ) -> PrivacyReport:
        """Privacy of ``perturbation`` on table ``X`` (``d x N``).

        Draws one noise realization, builds the adversary context, runs
        every attack, and reports per-attack minimum privacy guarantees.
        """
        X = np.asarray(X, dtype=float)
        Y = np.asarray(perturbation.apply(X, rng=rng))
        context = build_context(
            X,
            Y,
            known_fraction=self.known_fraction,
            max_known=self.max_known,
            rng=rng,
        )
        per_attack: Dict[str, float] = {}
        column_minima: Optional[np.ndarray] = None
        for attack in self.attacks:
            estimate = attack.reconstruct(context)
            per_column = column_privacy(X, estimate)
            per_attack[attack.name] = float(per_column.min())
            column_minima = (
                per_column
                if column_minima is None
                else np.minimum(column_minima, per_column)
            )
        if column_minima is None:
            raise ValueError("attack suite is empty")
        return PrivacyReport(per_attack=per_attack, per_column_worst=column_minima)

    def guarantee(
        self,
        perturbation: GeometricPerturbation,
        X: np.ndarray,
        rng: np.random.Generator,
    ) -> float:
        """Scalar minimum privacy guarantee (worst attack, worst column)."""
        return self.evaluate(perturbation, X, rng).guarantee


def default_suite(known_fraction: float = 0.05, max_known: int = 20) -> AttackSuite:
    """The full attack suite used for reported privacy numbers."""
    return AttackSuite(
        attacks=(
            NaiveEstimationAttack(),
            ICAAttack(),
            PCAAttack(),
            KnownSampleAttack(),
            DistanceInferenceAttack(),
        ),
        known_fraction=known_fraction,
        max_known=max_known,
    )


def fast_suite(known_fraction: float = 0.05, max_known: int = 20) -> AttackSuite:
    """Cheap suite for optimization inner loops (drops ICA and matching)."""
    return AttackSuite(
        attacks=(NaiveEstimationAttack(), KnownSampleAttack()),
        known_fraction=known_fraction,
        max_known=max_known,
    )


def evaluate_perturbation(
    perturbation: GeometricPerturbation,
    X: np.ndarray,
    suite: Optional[AttackSuite] = None,
    seed: int = 0,
) -> PrivacyReport:
    """One-call convenience: evaluate with the default suite and a seed."""
    if suite is None:
        suite = default_suite()
    rng = np.random.default_rng(seed)
    return suite.evaluate(perturbation, X, rng)
