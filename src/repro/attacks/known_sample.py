"""Known input-output sample attack (linear de-perturbation).

The strongest adversary in the SDM'07 hierarchy holds ``m`` known record
pairs ``(x_i, y_i)`` — e.g. it contributed records itself, or located a
public figure's row.  Since the perturbation is affine, the inverse map is
affine too; with enough pairs the adversary fits

    x  ~=  B y + c

by (ridge-regularized) least squares and applies it to the whole table.
With ``m >= d + 1`` clean pairs the rotation+translation part is recovered
exactly; the additive-noise component is what keeps the residual privacy
positive — which is precisely the paper's motivation for carrying a noise
term ``Delta`` in the perturbation.
"""

from __future__ import annotations

import numpy as np

from .base import Attack, AttackContext

__all__ = ["KnownSampleAttack"]


class KnownSampleAttack(Attack):
    """Fit an affine inverse map on known pairs and apply it everywhere.

    Parameters
    ----------
    ridge:
        Tikhonov regularization added to the normal equations; keeps the
        fit stable when the adversary has fewer pairs than dimensions
        (under-determined systems then yield the minimum-norm map rather
        than exploding).
    """

    name = "known_sample"

    def __init__(self, ridge: float = 1e-6) -> None:
        if ridge < 0:
            raise ValueError("ridge must be >= 0")
        self.ridge = ridge

    def reconstruct(self, context: AttackContext) -> np.ndarray:
        if context.n_known == 0:
            # No insider knowledge: fall back to the column-mean guess,
            # the information-free baseline.
            return np.repeat(
                context.column_means[:, None], context.n, axis=1
            )
        Y_known = context.known_perturbed  # (d, m)
        X_known = context.known_original  # (d, m)
        d, m = Y_known.shape

        # Solve X ~= B @ Y + c jointly via an augmented design matrix.
        design = np.vstack([Y_known, np.ones((1, m))])  # (d+1, m)
        gram = design @ design.T + self.ridge * np.eye(d + 1)
        coeffs = np.linalg.solve(gram, design @ X_known.T)  # (d+1, d)
        B = coeffs[:d].T  # (d, d)
        c = coeffs[d]  # (d,)

        return B @ context.perturbed + c[:, None]
