"""Naive value-range estimation attack.

The weakest adversary in the SDM'07 hierarchy: it knows the original
columns' marginal statistics but nothing about the transformation, so it
assumes the perturbed dimension ``j`` still carries original column ``j``
and simply re-scales it back to the known range.  Rotation defeats it
almost entirely (dimensions are mixed), which is exactly why it serves as
the sanity floor of the attack suite: any perturbation scoring *low*
against the naive attack is leaking raw columns.
"""

from __future__ import annotations

import numpy as np

from .base import Attack, AttackContext

__all__ = ["NaiveEstimationAttack"]


class NaiveEstimationAttack(Attack):
    """Per-column linear rescaling onto the known original range.

    For each dimension ``j`` the estimate is the perturbed row ``Y_j``
    affinely mapped so its sample min/max coincide with the known original
    column min/max — the best an attacker can do under the (wrong, once
    rotated) assumption that columns were perturbed independently.
    """

    name = "naive"

    def reconstruct(self, context: AttackContext) -> np.ndarray:
        Y = context.perturbed
        y_min = Y.min(axis=1, keepdims=True)
        y_max = Y.max(axis=1, keepdims=True)
        span = y_max - y_min
        safe = np.where(span > 0, span, 1.0)
        unit = (Y - y_min) / safe
        target_min = context.column_mins[:, None]
        target_max = context.column_maxs[:, None]
        estimate = target_min + unit * (target_max - target_min)
        constant = (span == 0).ravel()
        if constant.any():
            estimate[constant] = context.column_means[constant, None]
        return estimate
