"""Incremental normalizers for streams.

The batch pipeline normalizes once, up front, because the providers agree
on common domain bounds before perturbing (:mod:`repro.core.normalization`).
A stream has no "up front": bounds and moments must be maintained as
records arrive.  Two incremental normalizers mirror the two batch ones:

* :class:`RunningMinMaxNormalizer` — running per-column min/max; after
  seeing the full stream its transform is *exactly* the batch
  :class:`~repro.core.normalization.MinMaxNormalizer` fitted on the same
  rows;
* :class:`RunningZScoreNormalizer` — Welford/Chan parallel updates of
  (count, mean, M2); converges to the batch
  :class:`~repro.core.normalization.ZScoreNormalizer` up to floating-point
  rounding regardless of how the stream was chunked.

Both expose ``to_batch()`` so downstream code (and the equivalence tests)
can hand the frozen state to the existing batch machinery, and ``merge()``
— the Welford/Chan and min/max merge algebra — so per-shard states built
by :mod:`repro.sharding` can be combined into exactly the state one
unsharded normalizer would hold.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.normalization import MinMaxNormalizer, ZScoreNormalizer

__all__ = [
    "NORMALIZER_KINDS",
    "RunningMinMaxNormalizer",
    "RunningZScoreNormalizer",
    "make_normalizer",
]

#: names accepted by :func:`make_normalizer`
NORMALIZER_KINDS = ("minmax", "zscore")


class RunningMinMaxNormalizer:
    """Stream counterpart of :class:`MinMaxNormalizer`.

    ``update`` folds a batch of rows into the running bounds; ``transform``
    maps into ``[0, 1]`` under the *current* bounds (values beyond them
    extrapolate linearly, exactly like the batch normalizer).  Constant
    columns map to 0.5.
    """

    def __init__(self) -> None:
        self.minimums: Optional[np.ndarray] = None
        self.maximums: Optional[np.ndarray] = None
        self.n_seen = 0

    def update(self, X: np.ndarray) -> "RunningMinMaxNormalizer":
        """Fold a ``(n, d)`` batch of new rows into the running bounds."""
        X = np.asarray(X, dtype=float)
        if X.ndim != 2:
            raise ValueError("X must be 2-D")
        if X.shape[0] == 0:
            return self
        self._merge_bounds(X.min(axis=0), X.max(axis=0), X.shape[0])
        return self

    def merge(self, other: "RunningMinMaxNormalizer") -> "RunningMinMaxNormalizer":
        """Fold another running normalizer's state into this one.

        The min/max merge algebra is exact and order-insensitive: merging
        per-shard states (in any order) yields bit-identical bounds to one
        normalizer fed every row — the property the sharded engine's
        normalizer merge step relies on.
        """
        if other.minimums is None or other.maximums is None:
            return self
        self._merge_bounds(other.minimums, other.maximums, other.n_seen)
        return self

    def _merge_bounds(self, minimums: np.ndarray, maximums: np.ndarray, n: int) -> None:
        """Shared merge step for :meth:`update` and :meth:`merge`."""
        if self.minimums is None:
            self.minimums = np.array(minimums, dtype=float, copy=True)
            self.maximums = np.array(maximums, dtype=float, copy=True)
        else:
            if minimums.shape[0] != self.minimums.shape[0]:
                raise ValueError(
                    f"cannot fold {minimums.shape[0]} columns into a "
                    f"normalizer tracking {self.minimums.shape[0]}"
                )
            self.minimums = np.minimum(self.minimums, minimums)
            self.maximums = np.maximum(self.maximums, maximums)
        self.n_seen += int(n)

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Scale rows into ``[0, 1]`` under the bounds seen so far."""
        return self.to_batch().transform(X)

    def update_transform(self, X: np.ndarray) -> np.ndarray:
        """Fold the batch in, then transform it (the per-window hot path)."""
        return self.update(X).transform(X)

    def to_batch(self) -> MinMaxNormalizer:
        """Freeze the running bounds into a fitted batch normalizer."""
        if self.minimums is None or self.maximums is None:
            raise RuntimeError("normalizer has seen no data")
        return MinMaxNormalizer(
            minimums=self.minimums.copy(), maximums=self.maximums.copy()
        )


class RunningZScoreNormalizer:
    """Stream counterpart of :class:`ZScoreNormalizer` (Welford/Chan).

    Maintains per-column ``(n, mean, M2)`` and merges whole batches at a
    time with Chan's parallel-update formula, which is numerically stable
    under any chunking of the stream.
    """

    def __init__(self) -> None:
        self.means: Optional[np.ndarray] = None
        self._m2: Optional[np.ndarray] = None
        self.n_seen = 0

    def update(self, X: np.ndarray) -> "RunningZScoreNormalizer":
        """Merge a ``(n, d)`` batch into the running moments."""
        X = np.asarray(X, dtype=float)
        if X.ndim != 2:
            raise ValueError("X must be 2-D")
        n_b = X.shape[0]
        if n_b == 0:
            return self
        mean_b = X.mean(axis=0)
        m2_b = ((X - mean_b) ** 2).sum(axis=0)
        self._merge_moments(n_b, mean_b, m2_b)
        return self

    def merge(self, other: "RunningZScoreNormalizer") -> "RunningZScoreNormalizer":
        """Fold another running normalizer's ``(n, mean, M2)`` into this one.

        Chan's parallel-update formula — the same step :meth:`update` takes
        for each batch, so merging a chain of per-shard states in stream
        order reproduces the unsharded state bit for bit, and merging them
        in *any* order agrees up to floating-point rounding.
        """
        if other.means is None or other._m2 is None:
            return self
        self._merge_moments(other.n_seen, other.means, other._m2)
        return self

    def _merge_moments(self, n_b: int, mean_b: np.ndarray, m2_b: np.ndarray) -> None:
        """Shared Chan merge for :meth:`update` and :meth:`merge`."""
        if self.means is None:
            self.means = np.array(mean_b, dtype=float, copy=True)
            self._m2 = np.array(m2_b, dtype=float, copy=True)
            self.n_seen = int(n_b)
            return
        if mean_b.shape[0] != self.means.shape[0]:
            raise ValueError(
                f"cannot fold {mean_b.shape[0]} columns into a "
                f"normalizer tracking {self.means.shape[0]}"
            )
        n_a = self.n_seen
        delta = mean_b - self.means
        total = n_a + n_b
        self.means = self.means + delta * (n_b / total)
        self._m2 = self._m2 + m2_b + delta**2 * (n_a * n_b / total)
        self.n_seen = int(total)

    @property
    def stds(self) -> np.ndarray:
        """Population standard deviations (``ddof=0``, matching the batch)."""
        if self._m2 is None:
            raise RuntimeError("normalizer has seen no data")
        return np.sqrt(self._m2 / self.n_seen)

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Standardize rows under the moments seen so far."""
        return self.to_batch().transform(X)

    def update_transform(self, X: np.ndarray) -> np.ndarray:
        """Merge the batch in, then transform it (the per-window hot path)."""
        return self.update(X).transform(X)

    def to_batch(self) -> ZScoreNormalizer:
        """Freeze the running moments into a fitted batch normalizer."""
        if self.means is None:
            raise RuntimeError("normalizer has seen no data")
        return ZScoreNormalizer(means=self.means.copy(), stds=self.stds)


def make_normalizer(kind: str):
    """Factory keyed by the batch normalizer it mirrors."""
    if kind == "minmax":
        return RunningMinMaxNormalizer()
    if kind == "zscore":
        return RunningZScoreNormalizer()
    raise ValueError(f"unknown normalizer kind {kind!r}; use 'minmax' or 'zscore'")
