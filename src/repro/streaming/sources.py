"""Synthetic stream generators over the registry datasets.

A :class:`StreamSource` turns one of the synthetic UCI stand-ins
(:mod:`repro.datasets`) into an unbounded-feeling record stream: rows are
drawn with replacement from the pooled table, stamped with virtual arrival
times, and optionally pushed through a *concept drift* schedule:

* ``stationary`` — the pool distribution, unchanged, at a steady Poisson
  arrival rate;
* ``abrupt``     — at ``drift_at`` (fraction of the stream) every record's
  informative columns jump by ``magnitude`` pooled standard deviations
  along a fixed random direction, with a mild scale change on a random
  subset of columns;
* ``gradual``    — the same shift, ramped linearly over a ``transition``
  fraction of the stream starting at ``drift_at``;
* ``bursty``     — stationary *values* but a bursty arrival process
  (alternating fast/slow segments), exercising per-window throughput
  accounting rather than the detectors.

Streams are fully deterministic under a seed, like everything else in the
repository.

Records are **events**, not just rows: every :class:`StreamRecord` carries
its event-order sequence number (``seq``) and an optional data-provider
attribution (``provider``), so a transport may deliver records out of
order without losing their identity.  :func:`skewed` is the deterministic
out-of-order transport simulator — it re-orders any event stream with a
hard bounded displacement, guaranteeing that when a record arrives, no
record more than ``skew`` sequence numbers ahead of it has arrived yet
(observed lateness ``<= skew``), which is exactly the bounded-lateness
contract the watermark of :class:`repro.streaming.ingest.IngestPlane`
consumes.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Iterable, Iterator, NamedTuple, Optional, Union

import numpy as np

from ..datasets.registry import load_dataset
from ..datasets.schema import Dataset

__all__ = [
    "StreamRecord",
    "StreamSource",
    "make_stream",
    "skewed",
    "STREAM_KINDS",
]

STREAM_KINDS = ("stationary", "abrupt", "gradual", "bursty")


class StreamRecord(NamedTuple):
    """One stream event: features, label, event timestamp, identity.

    ``time`` is the *event* time (seconds on the virtual clock at which
    the record was generated); ``seq`` is the record's position in event
    order (``-1`` when the producer did not stamp one — the ingestion
    layer then stamps arrival order); ``provider`` names the data
    provider the record belongs to (``-1`` defers to the consumer's
    round-robin attribution ``seq % k``).  Both extensions default, so
    pre-event-time producers and consumers keep working unchanged.
    """

    x: np.ndarray
    y: int
    time: float
    seq: int = -1
    provider: int = -1


@dataclass
class StreamSource:
    """A deterministic, finite record stream over a pooled dataset.

    Build via :func:`make_stream`; iterate to receive
    :class:`StreamRecord` tuples in arrival order.  The drift point (in
    record index) is exposed as :attr:`drift_index` so experiments can
    align their expectations without re-deriving the schedule.
    """

    name: str
    kind: str
    pool: Dataset
    n_records: int
    seed: int = 0
    drift_at: float = 0.5
    magnitude: float = 1.5
    transition: float = 0.2
    rate: float = 1000.0
    burst_factor: float = 8.0

    def __post_init__(self) -> None:
        if self.kind not in STREAM_KINDS:
            raise ValueError(
                f"unknown stream kind {self.kind!r}; available: "
                f"{', '.join(STREAM_KINDS)}"
            )
        if self.n_records < 1:
            raise ValueError("n_records must be >= 1")
        if not 0.0 < self.drift_at < 1.0:
            raise ValueError("drift_at must be in (0, 1)")
        if not 0.0 < self.transition <= 1.0:
            raise ValueError("transition must be in (0, 1]")
        if self.rate <= 0 or self.burst_factor < 1.0:
            raise ValueError("rate must be positive and burst_factor >= 1")
        pool_std = self.pool.X.std(axis=0)
        self._pool_std = np.where(pool_std > 0, pool_std, 1.0)

    @property
    def dimension(self) -> int:
        """Number of feature columns."""
        return self.pool.n_features

    @property
    def drift_index(self) -> int:
        """Record index at which the drift schedule begins."""
        return int(self.n_records * self.drift_at)

    # ------------------------------------------------------------------
    # drift schedule
    # ------------------------------------------------------------------
    def _drift_weight(self, index: int) -> float:
        """How much of the full shift applies to record ``index`` (0..1)."""
        if self.kind in ("stationary", "bursty"):
            return 0.0
        start = self.drift_index
        if index < start:
            return 0.0
        if self.kind == "abrupt":
            return 1.0
        span = max(1, int(self.n_records * self.transition))
        return min(1.0, (index - start) / span)

    def __iter__(self) -> Iterator[StreamRecord]:
        rng = np.random.default_rng(self.seed)
        # Fixed drift geometry for the whole stream: a unit direction in
        # pooled-sigma units plus a mild scale change on ~1/3 of columns.
        direction = rng.normal(size=self.dimension)
        direction /= np.linalg.norm(direction)
        shift = self.magnitude * self._pool_std * direction
        scaled = rng.random(self.dimension) < (1.0 / 3.0)
        scale = np.where(scaled, 1.0 + 0.5 * self.magnitude / 1.5, 1.0)
        pool_mean = self.pool.X.mean(axis=0)

        now = 0.0
        burst_period = max(1, self.n_records // 8)
        for index in range(self.n_records):
            row = int(rng.integers(self.pool.n_rows))
            x = self.pool.X[row].astype(float).copy()
            y = int(self.pool.y[row])

            weight = self._drift_weight(index)
            if weight > 0.0:
                effective_scale = 1.0 + weight * (scale - 1.0)
                x = pool_mean + (x - pool_mean) * effective_scale + weight * shift

            if self.kind == "bursty":
                # Alternate fast and slow segments of ~1/8 stream length.
                fast = (index // burst_period) % 2 == 0
                rate = self.rate * self.burst_factor if fast else self.rate
            else:
                rate = self.rate
            now += float(rng.exponential(1.0 / rate))
            yield StreamRecord(x=x, y=y, time=now, seq=index)


def skewed(
    records: Iterable[StreamRecord],
    skew: int,
    seed: int = 0,
) -> Iterator[StreamRecord]:
    """Re-order an event stream with a hard bounded displacement.

    A deterministic out-of-order transport simulator: each record is
    assigned a delivery key ``seq + jitter`` with ``jitter`` drawn
    uniformly from ``{0, ..., skew}``, and records are delivered in key
    order (ties broken by ``seq``, so ``skew=0`` is the identity).  Event
    times, labels, providers, and sequence numbers travel unchanged —
    only the *arrival order* is scrambled.

    Guarantees, both deterministic under ``seed``:

    * every record's delivery position differs from its sequence number
      by at most ``skew``;
    * when a record arrives, the arrival frontier (largest sequence
      number seen so far) is at most ``seq + skew`` — i.e. observed
      lateness never exceeds ``skew``.  An ingestion watermark delay
      ``>= skew`` therefore never sees a late record.

    Records without a stamped ``seq`` are stamped with their input order
    first, so any iterable of ``(x, y, time)``-style records works.
    """
    if skew < 0:
        raise ValueError(f"skew must be >= 0, got {skew}")
    if skew == 0:
        for index, record in enumerate(records):
            yield record if record.seq >= 0 else record._replace(seq=index)
        return
    rng = np.random.default_rng([abs(int(seed)), 0x5345_5153])
    heap: list = []
    for index, record in enumerate(records):
        if record.seq < 0:
            record = record._replace(seq=index)
        key = index + int(rng.integers(skew + 1))
        heapq.heappush(heap, (key, record.seq, record))
        # Every future record's key is > index, so entries keyed <= index
        # are final and can be delivered.
        while heap and heap[0][0] <= index:
            yield heapq.heappop(heap)[2]
    while heap:
        yield heapq.heappop(heap)[2]


def make_stream(
    dataset: Union[str, Dataset],
    kind: str = "stationary",
    n_records: int = 1000,
    seed: int = 0,
    drift_at: float = 0.5,
    magnitude: float = 1.5,
    transition: float = 0.2,
    rate: float = 1000.0,
    burst_factor: float = 8.0,
    dataset_seed: Optional[int] = None,
) -> StreamSource:
    """Build a stream over a registry dataset (by name) or a pooled table.

    Parameters mirror :class:`StreamSource`; ``dataset_seed`` is forwarded
    to :func:`repro.datasets.registry.load_dataset` when ``dataset`` is a
    name, so the pool itself is reproducible independently of the stream
    order seed.
    """
    pool = load_dataset(dataset, seed=dataset_seed) if isinstance(dataset, str) else dataset
    return StreamSource(
        name=pool.name,
        kind=kind,
        pool=pool,
        n_records=n_records,
        seed=seed,
        drift_at=drift_at,
        magnitude=magnitude,
        transition=transition,
        rate=rate,
        burst_factor=burst_factor,
    )
