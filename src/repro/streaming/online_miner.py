"""Incremental classifiers for mining in the unified perturbed space.

The batch miners in :mod:`repro.mining` retrain from scratch; a stream
needs models that absorb one window at a time *and* survive a space
re-adaptation.  Both learners here support the second requirement through
:meth:`OnlineClassifier.adapt_space`: when the session negotiates a new
target perturbation, the model's state is migrated with the same
rotation/translation adaptor algebra the protocol uses for data
(:mod:`repro.core.adaptation`), so nothing ever needs to be un-perturbed:

* :class:`ReservoirKNN` — Vitter reservoir sampling over the stream,
  wrapping the batch :class:`~repro.mining.knn.KNNClassifier`; the stored
  reservoir rows are simply pushed through the adaptor;
* :class:`OnlineLinearSVM` — one-vs-rest Pegasos-style SGD hinge updates;
  under ``x' = R x + psi`` the weight vectors rotate (``w' = R w``) and the
  biases absorb the translation (``b' = b - w' . psi``), which preserves
  every decision value exactly — the linear-invariance argument of the
  companion paper, applied online.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Optional

import numpy as np

from ..core.adaptation import SpaceAdaptor
from ..mining.base import validate_Xy
from ..mining.knn import KNNClassifier

__all__ = ["OnlineClassifier", "ReservoirKNN", "OnlineLinearSVM", "make_online_classifier"]


class OnlineClassifier(abc.ABC):
    """Contract for incremental learners used by the stream session."""

    @abc.abstractmethod
    def partial_fit(self, X: np.ndarray, y: np.ndarray) -> "OnlineClassifier":
        """Absorb one window of rows ``(n, d)`` with labels ``y``."""

    @abc.abstractmethod
    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict a label per row; rows seen before any fit get label 0."""

    @abc.abstractmethod
    def adapt_space(self, adaptor: SpaceAdaptor) -> None:
        """Migrate internal state from the old target space to the new one."""

    @property
    @abc.abstractmethod
    def n_seen(self) -> int:
        """Total records absorbed so far."""


class ReservoirKNN(OnlineClassifier):
    """KNN over a bounded uniform sample of the stream (Vitter's R).

    Parameters
    ----------
    capacity:
        Reservoir size; memory and prediction cost stay bounded by it.
    n_neighbors:
        Forwarded to the wrapped batch KNN.
    seed:
        Reservoir-replacement seed (the *only* randomness; the same seed
        on perturbed and baseline copies keeps their reservoirs row-aligned
        so accuracy deviation isolates the perturbation's effect).
    """

    def __init__(self, capacity: int = 256, n_neighbors: int = 5, seed: int = 0) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.n_neighbors = n_neighbors
        self.rng = np.random.default_rng(seed)
        self._rows: List[np.ndarray] = []
        self._labels: List[object] = []
        self._n_seen = 0
        self._model: Optional[KNNClassifier] = None

    @property
    def n_seen(self) -> int:
        return self._n_seen

    @property
    def reservoir_size(self) -> int:
        """Rows currently held (<= capacity)."""
        return len(self._rows)

    def partial_fit(self, X: np.ndarray, y: np.ndarray) -> "ReservoirKNN":
        X, y = validate_Xy(X, y)
        for i in range(X.shape[0]):
            self._n_seen += 1
            if len(self._rows) < self.capacity:
                self._rows.append(X[i].copy())
                self._labels.append(y[i])
            else:
                slot = int(self.rng.integers(self._n_seen))
                if slot < self.capacity:
                    self._rows[slot] = X[i].copy()
                    self._labels[slot] = y[i]
        self._model = None  # refit lazily on next predict
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        X, _ = validate_Xy(X)
        if not self._rows:
            return np.zeros(X.shape[0], dtype=int)
        if self._model is None:
            self._model = KNNClassifier(n_neighbors=self.n_neighbors).fit(
                np.vstack(self._rows), np.asarray(self._labels)
            )
        return self._model.predict(X)

    def adapt_space(self, adaptor: SpaceAdaptor) -> None:
        if not self._rows:
            return
        adapted = np.asarray(adaptor.apply(np.vstack(self._rows).T)).T
        self._rows = [row for row in adapted]
        self._model = None


class OnlineLinearSVM(OnlineClassifier):
    """One-vs-rest linear SVM trained by Pegasos-style SGD, one window at a
    time.

    Classes are discovered online: the first time a label appears a fresh
    zero weight vector is added for it.  The global step counter ``t``
    spans windows, so the learning-rate schedule matches a single long
    Pegasos run over the concatenated stream.
    """

    def __init__(self, lam: float = 1e-3, seed: int = 0) -> None:
        if lam <= 0:
            raise ValueError("lam must be positive")
        self.lam = lam
        self.rng = np.random.default_rng(seed)
        self._weights: Dict[object, np.ndarray] = {}
        self._biases: Dict[object, float] = {}
        self._t = 0
        self._n_seen = 0
        self._dim: Optional[int] = None

    @property
    def n_seen(self) -> int:
        return self._n_seen

    @property
    def classes_(self) -> np.ndarray:
        """Labels discovered so far, sorted."""
        return np.asarray(sorted(self._weights, key=str))

    def partial_fit(self, X: np.ndarray, y: np.ndarray) -> "OnlineLinearSVM":
        X, y = validate_Xy(X, y)
        if self._dim is None:
            self._dim = X.shape[1]
        elif X.shape[1] != self._dim:
            raise ValueError(f"expected {self._dim} features, got {X.shape[1]}")
        for label in np.unique(y):
            if label not in self._weights:
                self._weights[label] = np.zeros(self._dim)
                self._biases[label] = 0.0
        for i in self.rng.permutation(X.shape[0]):
            self._t += 1
            self._n_seen += 1
            eta = 1.0 / (self.lam * self._t)
            for label, w in self._weights.items():
                sign = 1.0 if y[i] == label else -1.0
                margin = sign * (X[i] @ w + self._biases[label])
                w *= 1.0 - eta * self.lam
                if margin < 1:
                    w += eta * sign * X[i]
                    self._biases[label] += eta * sign
        return self

    def decision_matrix(self, X: np.ndarray) -> np.ndarray:
        """Per-class decision values, columns ordered like :attr:`classes_`."""
        X, _ = validate_Xy(X)
        classes = self.classes_
        scores = np.empty((X.shape[0], len(classes)))
        for c, label in enumerate(classes):
            scores[:, c] = X @ self._weights[label] + self._biases[label]
        return scores

    def predict(self, X: np.ndarray) -> np.ndarray:
        X, _ = validate_Xy(X)
        if not self._weights:
            return np.zeros(X.shape[0], dtype=int)
        classes = self.classes_
        return classes[np.argmax(self.decision_matrix(X), axis=1)]

    def adapt_space(self, adaptor: SpaceAdaptor) -> None:
        if not self._weights:
            return
        R = adaptor.rotation_adaptor
        psi = adaptor.translation_adaptor
        for label, w in list(self._weights.items()):
            w_new = R @ w
            self._weights[label] = w_new
            self._biases[label] = self._biases[label] - float(w_new @ psi)


def make_online_classifier(
    name: str, seed: int = 0, **params
) -> OnlineClassifier:
    """Factory: ``"knn"`` -> :class:`ReservoirKNN`, ``"linear_svm"`` ->
    :class:`OnlineLinearSVM`."""
    if name == "knn":
        return ReservoirKNN(seed=seed, **params)
    if name == "linear_svm":
        return OnlineLinearSVM(seed=seed, **params)
    raise ValueError(
        f"unknown online classifier {name!r}; use 'knn' or 'linear_svm'"
    )
