"""Incremental classifiers for mining in the unified perturbed space.

The batch miners in :mod:`repro.mining` retrain from scratch; a stream
needs models that absorb one window at a time *and* survive a space
re-adaptation.  Both learners here support the second requirement through
:meth:`OnlineClassifier.adapt_space`: when the session negotiates a new
target perturbation, the model's state is migrated with the same
rotation/translation adaptor algebra the protocol uses for data
(:mod:`repro.core.adaptation`), so nothing ever needs to be un-perturbed:

* :class:`ReservoirKNN` — Vitter reservoir sampling over the stream,
  wrapping the batch :class:`~repro.mining.knn.KNNClassifier`; the stored
  reservoir rows are simply pushed through the adaptor;
* :class:`OnlineLinearSVM` — one-vs-rest Pegasos-style SGD hinge updates;
  under ``x' = R x + psi`` the weight vectors rotate (``w' = R w``) and the
  biases absorb the translation (``b' = b - w' . psi``), which preserves
  every decision value exactly — the linear-invariance argument of the
  companion paper, applied online.
"""

from __future__ import annotations

import abc
from typing import Dict, Optional

import numpy as np

from ..core.adaptation import SpaceAdaptor
from ..mining.base import validate_Xy
from ..mining.knn import KNNClassifier

__all__ = [
    "ONLINE_CLASSIFIERS",
    "OnlineClassifier",
    "ReservoirKNN",
    "OnlineLinearSVM",
    "make_online_classifier",
    "predict_from_state",
]

#: names accepted by :func:`make_online_classifier`
ONLINE_CLASSIFIERS = ("knn", "linear_svm")


class OnlineClassifier(abc.ABC):
    """Contract for incremental learners used by the stream session."""

    @abc.abstractmethod
    def partial_fit(self, X: np.ndarray, y: np.ndarray) -> "OnlineClassifier":
        """Absorb one window of rows ``(n, d)`` with labels ``y``."""

    @abc.abstractmethod
    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict a label per row; rows seen before any fit get label 0."""

    @abc.abstractmethod
    def adapt_space(self, adaptor: SpaceAdaptor) -> None:
        """Migrate internal state from the old target space to the new one."""

    @property
    @abc.abstractmethod
    def n_seen(self) -> int:
        """Total records absorbed so far."""

    @abc.abstractmethod
    def export_predict_state(self) -> Dict[str, object]:
        """Freeze everything :func:`predict_from_state` needs into a dict.

        The dict holds only plain numpy arrays and scalars, so it crosses
        the process-pool pickle boundary of :mod:`repro.sharding.backends`
        cheaply; it is a *copy* — later ``partial_fit`` calls never mutate
        an exported snapshot (the sharded engine snapshots before training,
        preserving prequential test-then-train semantics).
        """


class ReservoirKNN(OnlineClassifier):
    """KNN over a bounded uniform sample of the stream (Vitter's R).

    Parameters
    ----------
    capacity:
        Reservoir size; memory and prediction cost stay bounded by it.
    n_neighbors:
        Forwarded to the wrapped batch KNN.
    seed:
        Reservoir-replacement seed (the *only* randomness; the same seed
        on perturbed and baseline copies keeps their reservoirs row-aligned
        so accuracy deviation isolates the perturbation's effect).
    """

    def __init__(self, capacity: int = 256, n_neighbors: int = 5, seed: int = 0) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.n_neighbors = n_neighbors
        self.rng = np.random.default_rng(seed)
        # Pre-allocated row buffer: appends and replacements are O(1) writes
        # and snapshots are one memcpy, instead of growing/stacking a list
        # of row objects on the per-window hot path.  Labels stay in a plain
        # list so arbitrary label types (mixed widths, strings) are kept
        # exactly; converting them per snapshot is cheap.
        self._X_buf: Optional[np.ndarray] = None
        self._labels: list = []
        self._size = 0
        self._n_seen = 0
        self._model: Optional[KNNClassifier] = None

    @property
    def n_seen(self) -> int:
        return self._n_seen

    @property
    def reservoir_size(self) -> int:
        """Rows currently held (<= capacity)."""
        return self._size

    @property
    def reservoir_rows(self) -> np.ndarray:
        """The retained sample, ``(reservoir_size, d)`` (a view; don't mutate)."""
        if self._X_buf is None:
            return np.empty((0, 0))
        return self._X_buf[: self._size]

    def partial_fit(self, X: np.ndarray, y: np.ndarray) -> "ReservoirKNN":
        X, y = validate_Xy(X, y)
        n = X.shape[0]
        if n == 0:
            return self
        if self._X_buf is None:
            self._X_buf = np.empty((self.capacity, X.shape[1]))

        # Fill phase: the first `capacity` records are always kept.
        take = min(self.capacity - self._size, n)
        if take:
            self._X_buf[self._size : self._size + take] = X[:take]
            self._labels.extend(y[:take])
            self._size += take
            self._n_seen += take

        # Replacement phase (Vitter's R): record number m keeps a slot with
        # probability capacity/m.  The slot draws are batched into a single
        # vectorized call — one uniform integer in [0, m) per record, with
        # the per-record upper bound supplied as an array — and only the
        # (increasingly rare) accepted replacements touch the buffer, in
        # stream order so later records overwrite earlier ones as in the
        # sequential algorithm.
        rest = n - take
        if rest:
            highs = np.arange(self._n_seen + 1, self._n_seen + rest + 1)
            slots = self.rng.integers(highs)
            self._n_seen += rest
            for offset in np.flatnonzero(slots < self.capacity):
                slot = int(slots[offset])
                self._X_buf[slot] = X[take + offset]
                self._labels[slot] = y[take + offset]
        self._model = None  # refit lazily on next predict
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        X, _ = validate_Xy(X)
        if self._size == 0:
            return np.zeros(X.shape[0], dtype=int)
        if self._model is None:
            self._model = KNNClassifier(n_neighbors=self.n_neighbors).fit(
                self._X_buf[: self._size], np.asarray(self._labels)
            )
        return self._model.predict(X)

    def adapt_space(self, adaptor: SpaceAdaptor) -> None:
        if self._size == 0:
            return
        self._X_buf[: self._size] = np.asarray(
            adaptor.apply(self._X_buf[: self._size].T)
        ).T
        self._model = None

    def export_predict_state(self) -> Dict[str, object]:
        """Snapshot the reservoir for out-of-process prediction."""
        if self._size == 0:
            return {"kind": "knn", "rows": None, "labels": None,
                    "n_neighbors": self.n_neighbors}
        return {
            "kind": "knn",
            "rows": self._X_buf[: self._size].copy(),
            "labels": np.asarray(self._labels),
            "n_neighbors": self.n_neighbors,
        }


class OnlineLinearSVM(OnlineClassifier):
    """One-vs-rest linear SVM trained by Pegasos-style SGD, one window at a
    time.

    Classes are discovered online: the first time a label appears a fresh
    zero weight vector is added for it.  The global step counter ``t``
    spans windows, so the learning-rate schedule matches a single long
    Pegasos run over the concatenated stream.
    """

    def __init__(self, lam: float = 1e-3, seed: int = 0) -> None:
        if lam <= 0:
            raise ValueError("lam must be positive")
        self.lam = lam
        self.rng = np.random.default_rng(seed)
        self._weights: Dict[object, np.ndarray] = {}
        self._biases: Dict[object, float] = {}
        self._t = 0
        self._n_seen = 0
        self._dim: Optional[int] = None

    @property
    def n_seen(self) -> int:
        return self._n_seen

    @property
    def classes_(self) -> np.ndarray:
        """Labels discovered so far, sorted."""
        return np.asarray(sorted(self._weights, key=str))

    def partial_fit(self, X: np.ndarray, y: np.ndarray) -> "OnlineLinearSVM":
        X, y = validate_Xy(X, y)
        if self._dim is None:
            self._dim = X.shape[1]
        elif X.shape[1] != self._dim:
            raise ValueError(f"expected {self._dim} features, got {X.shape[1]}")
        for label in np.unique(y):
            if label not in self._weights:
                self._weights[label] = np.zeros(self._dim)
                self._biases[label] = 0.0
        for i in self.rng.permutation(X.shape[0]):
            self._t += 1
            self._n_seen += 1
            eta = 1.0 / (self.lam * self._t)
            for label, w in self._weights.items():
                sign = 1.0 if y[i] == label else -1.0
                margin = sign * (X[i] @ w + self._biases[label])
                w *= 1.0 - eta * self.lam
                if margin < 1:
                    w += eta * sign * X[i]
                    self._biases[label] += eta * sign
        return self

    def decision_matrix(self, X: np.ndarray) -> np.ndarray:
        """Per-class decision values, columns ordered like :attr:`classes_`."""
        X, _ = validate_Xy(X)
        classes = self.classes_
        scores = np.empty((X.shape[0], len(classes)))
        for c, label in enumerate(classes):
            scores[:, c] = X @ self._weights[label] + self._biases[label]
        return scores

    def predict(self, X: np.ndarray) -> np.ndarray:
        X, _ = validate_Xy(X)
        if not self._weights:
            return np.zeros(X.shape[0], dtype=int)
        classes = self.classes_
        return classes[np.argmax(self.decision_matrix(X), axis=1)]

    def adapt_space(self, adaptor: SpaceAdaptor) -> None:
        if not self._weights:
            return
        R = adaptor.rotation_adaptor
        psi = adaptor.translation_adaptor
        for label, w in list(self._weights.items()):
            w_new = R @ w
            self._weights[label] = w_new
            self._biases[label] = self._biases[label] - float(w_new @ psi)

    def export_predict_state(self) -> Dict[str, object]:
        """Snapshot the per-class weights/biases for out-of-process prediction."""
        if not self._weights:
            return {"kind": "linear_svm", "classes": None,
                    "weights": None, "biases": None}
        classes = self.classes_
        return {
            "kind": "linear_svm",
            "classes": classes,
            "weights": np.vstack([self._weights[label] for label in classes]),
            "biases": np.asarray([self._biases[label] for label in classes]),
        }


def predict_from_state(state: Dict[str, object], X: np.ndarray) -> np.ndarray:
    """Predict from a frozen :meth:`OnlineClassifier.export_predict_state` dict.

    A pure function of ``(state, X)`` — the sharded engine runs it inside
    worker shards (any backend) and the result is bit-identical to calling
    ``predict`` on the live model the state was exported from, because it
    performs the same operations on the same arrays:

    * ``knn`` states rebuild the batch :class:`KNNClassifier` exactly like
      :meth:`ReservoirKNN.predict` does on a reservoir change;
    * ``linear_svm`` states replay the one-vs-rest argmax over
      ``X @ W' + b`` with the class columns in the same sorted order.

    Rows predicted before any training data exists get label 0, matching
    the live models.
    """
    X, _ = validate_Xy(X)
    kind = state["kind"]
    if kind == "knn":
        if state["rows"] is None:
            return np.zeros(X.shape[0], dtype=int)
        model = KNNClassifier(n_neighbors=int(state["n_neighbors"])).fit(
            np.asarray(state["rows"]), np.asarray(state["labels"])
        )
        return model.predict(X)
    if kind == "linear_svm":
        if state["classes"] is None:
            return np.zeros(X.shape[0], dtype=int)
        classes = np.asarray(state["classes"])
        scores = X @ np.asarray(state["weights"]).T + np.asarray(state["biases"])
        return classes[np.argmax(scores, axis=1)]
    raise ValueError(f"unknown predict-state kind {kind!r}")


def make_online_classifier(
    name: str, seed: int = 0, **params
) -> OnlineClassifier:
    """Factory: ``"knn"`` -> :class:`ReservoirKNN`, ``"linear_svm"`` ->
    :class:`OnlineLinearSVM`."""
    if name == "knn":
        return ReservoirKNN(seed=seed, **params)
    if name == "linear_svm":
        return OnlineLinearSVM(seed=seed, **params)
    raise ValueError(
        f"unknown online classifier {name!r}; use 'knn' or 'linear_svm'"
    )
