"""Online privacy-preserving mining over data streams.

The batch pipeline (:mod:`repro.core.session`) perturbs once and mines
once.  This subsystem turns it into a continuously running one:

* :mod:`~repro.streaming.windows` — tumbling/sliding window buffers;
* :mod:`~repro.streaming.normalizer` — incremental normalizers that
  converge to their batch counterparts;
* :mod:`~repro.streaming.drift` — mean/variance and KS drift detectors
  that trigger space re-adaptation;
* :mod:`~repro.streaming.online_miner` — reservoir KNN and SGD linear SVM
  that survive a space migration;
* :mod:`~repro.streaming.sources` — synthetic stationary/drifting/bursty
  stream generators over the registry datasets, plus the bounded-skew
  out-of-order transport simulator :func:`~repro.streaming.sources.skewed`;
* :mod:`~repro.streaming.ingest` — the event-time ingestion plane:
  per-provider gates pushing records into per-shard window buffers,
  watermark-based window sealing, and drop/readmit/upsert late policies;
* :mod:`~repro.streaming.stream_session` — the online session driver,
  re-negotiating the perturbed space over :mod:`repro.simnet` whenever
  drift fires or a party's trust level changes.
"""

from .drift import (
    DETECTOR_KINDS,
    DriftDetector,
    DriftReport,
    KSDetector,
    MeanVarianceDetector,
    make_detector,
)
from .normalizer import (
    NORMALIZER_KINDS,
    RunningMinMaxNormalizer,
    RunningZScoreNormalizer,
    make_normalizer,
)
from .ingest import (
    LATE_POLICIES,
    IngestPlane,
    IngestStats,
    ProviderGate,
    ShardIngest,
)
from .online_miner import (
    ONLINE_CLASSIFIERS,
    OnlineClassifier,
    OnlineLinearSVM,
    ReservoirKNN,
    make_online_classifier,
)
from .sources import STREAM_KINDS, StreamRecord, StreamSource, make_stream, skewed
from .stream_session import (
    ReadaptationEvent,
    StreamConfig,
    StreamSessionResult,
    StreamWindowStats,
    TrustChange,
    run_stream_session,
)
from .windows import (
    WINDOW_KINDS,
    EventWindowAssigner,
    SlidingWindow,
    TumblingWindow,
    Window,
    WindowBuffer,
    make_window_buffer,
)

__all__ = [
    # windows
    "Window",
    "WindowBuffer",
    "TumblingWindow",
    "SlidingWindow",
    "EventWindowAssigner",
    "make_window_buffer",
    "WINDOW_KINDS",
    # event-time ingestion
    "IngestPlane",
    "IngestStats",
    "ProviderGate",
    "ShardIngest",
    "LATE_POLICIES",
    # normalizers
    "RunningMinMaxNormalizer",
    "RunningZScoreNormalizer",
    "make_normalizer",
    "NORMALIZER_KINDS",
    # drift
    "DriftReport",
    "DriftDetector",
    "MeanVarianceDetector",
    "KSDetector",
    "make_detector",
    "DETECTOR_KINDS",
    # online miners
    "OnlineClassifier",
    "ReservoirKNN",
    "OnlineLinearSVM",
    "make_online_classifier",
    "ONLINE_CLASSIFIERS",
    # sources
    "StreamRecord",
    "StreamSource",
    "STREAM_KINDS",
    "make_stream",
    "skewed",
    # session
    "TrustChange",
    "StreamConfig",
    "ReadaptationEvent",
    "StreamWindowStats",
    "StreamSessionResult",
    "run_stream_session",
]
