"""Online counterpart of :func:`repro.core.session.run_sap_session`.

:func:`run_stream_session` drives one continuous privacy-preserving mining
run: records arrive from a :class:`~repro.streaming.sources.StreamSource`,
are batched into windows, normalized incrementally, perturbed per-party,
adapted into the negotiated target space, and mined by an incremental
classifier — while a drift detector watches for distribution shift.

Space (re-)negotiation reuses the multiparty machinery:

* every epoch's negotiation runs over a fresh :class:`repro.simnet` network
  — the coordinator draws the target perturbation and a new exchange plan,
  broadcasts ``TARGET_PARAMS`` / ``EXCHANGE_ASSIGNMENT``, and collects each
  provider's tagged ``SPACE_ADAPTOR`` — so message/byte costs are charged
  exactly like in the batch protocol;
* when drift fires (or a party's trust level changes — Li et al.'s
  multi-level-trust setting, mapped to a per-party noise level), the session
  re-negotiates and *migrates* the online model from the old target space to
  the new one with :func:`repro.core.adaptation.compute_adaptor` — raw data
  is never revisited, and the inherited noise is never removed;
* every epoch refreshes the privacy guarantee with the fast attack suite,
  evaluated on the current window in the new space's parameters.

Accuracy is scored prequentially (test-then-train) against a baseline copy
of the same online learner fed the *un*-perturbed normalized records, so
the reported deviation isolates what perturbation costs — the streaming
analogue of the paper's Figures 5/6.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.adaptation import SpaceAdaptor, compute_adaptor
from ..core.perturbation import GeometricPerturbation, sample_perturbation
from ..core.protocol import ExchangePlan, draw_exchange_plan
from ..mining.metrics import accuracy_deviation, accuracy_score
from ..simnet.channel import Network
from ..simnet.messages import Message, MessageKind
from ..simnet.node import Node
from .drift import DriftReport, make_detector
from .normalizer import make_normalizer
from .online_miner import make_online_classifier
from .sources import StreamSource
from .windows import make_window_buffer

__all__ = [
    "TrustChange",
    "StreamConfig",
    "ReadaptationEvent",
    "StreamWindowStats",
    "StreamSessionResult",
    "run_stream_session",
]


@dataclass(frozen=True)
class TrustChange:
    """A scheduled change of one party's trust level.

    Following the multi-level-trust model, ``trust`` in ``(0, 1]`` scales
    the noise the party must apply: a fully trusted party (1.0) uses the
    base ``noise_sigma``; lower trust doubles toward ``2 x noise_sigma``.
    A change always triggers a space re-negotiation at ``window``.
    """

    window: int
    party: int
    trust: float

    def __post_init__(self) -> None:
        if self.window < 0:
            raise ValueError("window must be >= 0")
        if not 0.0 < self.trust <= 1.0:
            raise ValueError("trust must be in (0, 1]")


@dataclass(frozen=True)
class StreamConfig:
    """Knobs for one online SAP run.

    Attributes
    ----------
    k:
        Number of data providers (incoming records are attributed to
        providers round-robin; coordinator included, as in the batch
        protocol).
    window_size / window_kind / window_step:
        Windowing policy (see :mod:`repro.streaming.windows`).
    noise_sigma:
        Base common-noise level; per-party effective noise is scaled by
        trust (see :class:`TrustChange`).
    classifier:
        ``"knn"`` (reservoir) or ``"linear_svm"`` (SGD) — the incremental
        miners of :mod:`repro.streaming.online_miner`.
    normalizer:
        ``"minmax"`` or ``"zscore"`` incremental normalizer.
    detector / detector_params:
        Drift detector (``"meanvar"`` or ``"ks"``) and its thresholds.
    readapt_cooldown:
        Minimum number of windows between two *drift-triggered*
        re-adaptations (trust changes always fire); prevents thrash while a
        gradual drift crosses the threshold repeatedly.
    trust_changes:
        Scheduled :class:`TrustChange` events.
    compute_privacy:
        Refresh the fast-suite privacy guarantee at every negotiation
        (small cost per epoch; disable for pure throughput benchmarks).
    seed:
        Master seed; all node and miner seeds derive from it.
    """

    k: int = 3
    window_size: int = 64
    window_kind: str = "tumbling"
    window_step: Optional[int] = None
    noise_sigma: float = 0.05
    classifier: str = "knn"
    classifier_params: Tuple[Tuple[str, object], ...] = ()
    normalizer: str = "minmax"
    detector: str = "meanvar"
    detector_params: Tuple[Tuple[str, object], ...] = ()
    readapt_cooldown: int = 2
    trust_changes: Tuple[TrustChange, ...] = ()
    compute_privacy: bool = True
    seed: int = 0

    def __post_init__(self) -> None:
        if self.k < 2:
            raise ValueError("streaming SAP requires k >= 2 providers")
        if self.window_size < 2:
            raise ValueError("window_size must be >= 2")
        if self.noise_sigma < 0:
            raise ValueError("noise_sigma must be >= 0")
        if self.readapt_cooldown < 0:
            raise ValueError("readapt_cooldown must be >= 0")

    def provider_name(self, index: int) -> str:
        """Node names, matching the batch convention (coordinator last)."""
        if index == self.k - 1:
            return "coordinator"
        return f"provider-{index}"


@dataclass(frozen=True)
class ReadaptationEvent:
    """One space re-negotiation."""

    window: int
    reason: str  # "initial" | "drift" | "trust"
    statistic: float
    latency: float  # wall-clock seconds spent negotiating
    messages: int
    bytes: int
    virtual_duration: float
    privacy_guarantee: Optional[float] = None


@dataclass(frozen=True)
class StreamWindowStats:
    """Prequential metrics for one window.

    ``n_records`` counts the window's *fresh* records — the ones scored
    and learned from exactly once (equal to the window size for tumbling
    windows, to the step for overlapping sliding windows).
    """

    index: int
    n_records: int
    accuracy_perturbed: float
    accuracy_baseline: float
    drift_statistic: float
    drift_kind: str
    readapted: bool

    @property
    def deviation(self) -> float:
        """Per-window accuracy deviation in percentage points."""
        return accuracy_deviation(self.accuracy_perturbed, self.accuracy_baseline)


@dataclass
class StreamSessionResult:
    """Everything measured over one streaming run."""

    config: StreamConfig
    source_name: str
    source_kind: str
    records_processed: int
    windows: List[StreamWindowStats]
    events: List[ReadaptationEvent]
    accuracy_perturbed: float
    accuracy_baseline: float
    wall_seconds: float
    messages_sent: int
    bytes_sent: int

    @property
    def deviation(self) -> float:
        """Cumulative prequential accuracy deviation (percentage points)."""
        return accuracy_deviation(self.accuracy_perturbed, self.accuracy_baseline)

    @property
    def readaptations(self) -> int:
        """Re-negotiations after the initial one (drift- or trust-triggered)."""
        return sum(1 for e in self.events if e.reason != "initial")

    @property
    def throughput(self) -> float:
        """Records per wall-clock second, end to end."""
        if self.wall_seconds <= 0:
            return float("inf")
        return self.records_processed / self.wall_seconds

    @property
    def mean_readapt_latency(self) -> float:
        """Mean wall-clock seconds per negotiation."""
        if not self.events:
            return 0.0
        return float(np.mean([e.latency for e in self.events]))

    def deviation_series(self) -> List[float]:
        """Per-window deviation trajectory (for reports and figures)."""
        return [w.deviation for w in self.windows]

    def summary(self) -> str:
        """Multi-line run report, mirroring ``SAPSessionResult.summary``."""
        guarantees = [
            e.privacy_guarantee for e in self.events if e.privacy_guarantee is not None
        ]
        lines = [
            f"stream            : {self.source_name} ({self.source_kind})",
            f"providers (k)     : {self.config.k}",
            f"classifier        : {self.config.classifier}",
            f"records / windows : {self.records_processed} / {len(self.windows)}",
            f"re-adaptations    : {self.readaptations}",
            f"baseline accuracy : {self.accuracy_baseline:.4f}",
            f"stream accuracy   : {self.accuracy_perturbed:.4f}",
            f"deviation         : {self.deviation:+.2f} points",
            f"throughput        : {self.throughput:,.0f} records/s",
            f"readapt latency   : {self.mean_readapt_latency * 1000:.1f} ms (mean)",
            f"messages / bytes  : {self.messages_sent} / {self.bytes_sent}",
        ]
        if guarantees:
            lines.append(
                f"privacy guarantee : {min(guarantees):.4f} (min over epochs)"
            )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# negotiation roles (one fresh simnet network per epoch)
# ----------------------------------------------------------------------
class _NegotiationProvider(Node):
    """A provider's view of one negotiation epoch.

    Draws its local perturbation ``G_i`` up front; on receiving the target
    parameters it answers with its tagged space adaptor, exactly like the
    batch :class:`repro.parties.provider.DataProvider` — minus the dataset
    exchange, which the streaming session performs window by window.
    """

    def __init__(
        self,
        name: str,
        network: Network,
        dimension: int,
        noise_sigma: float,
        coordinator_name: str,
        seed: int = 0,
    ) -> None:
        super().__init__(name, network, seed=seed)
        self.coordinator_name = coordinator_name
        self.perturbation = sample_perturbation(
            dimension, self.rng, noise_sigma=noise_sigma
        )
        self.adaptor: Optional[SpaceAdaptor] = None
        self.tag: Optional[str] = None
        self.exchange_receiver: Optional[str] = None

    def on_exchange_assignment(self, message: Message) -> None:
        self.tag = message.payload["tag"]
        self.exchange_receiver = message.payload["receiver"]

    def on_target_params(self, message: Message) -> None:
        target = GeometricPerturbation(
            rotation=message.payload["rotation"],
            translation=message.payload["translation"],
            noise_sigma=0.0,
        )
        self.adaptor = compute_adaptor(self.perturbation, target)
        self.send(
            MessageKind.SPACE_ADAPTOR,
            self.coordinator_name,
            {
                "tag": self.tag if self.tag is not None else "",
                "rotation_adaptor": self.adaptor.rotation_adaptor,
                "translation_adaptor": self.adaptor.translation_adaptor,
            },
        )


class _NegotiationCoordinator(_NegotiationProvider):
    """The coordinating provider: draws the target + plan, collects adaptors."""

    def __init__(
        self,
        name: str,
        network: Network,
        dimension: int,
        noise_sigma: float,
        k: int,
        provider_names: Sequence[str],
        seed: int = 0,
    ) -> None:
        super().__init__(
            name, network, dimension, noise_sigma, coordinator_name=name, seed=seed
        )
        self.k = k
        self.provider_names = list(provider_names)
        self.target: Optional[GeometricPerturbation] = None
        self.plan: Optional[ExchangePlan] = None
        self.adaptors_received = 0

    def start(self) -> None:
        """Draw target + plan, then broadcast assignments and parameters."""
        d = self.perturbation.dimension
        self.target = sample_perturbation(d, self.rng, noise_sigma=0.0)
        self.plan = draw_exchange_plan(self.k, self.rng)
        for index, peer in enumerate(self.provider_names):
            receiver = self.provider_names[self.plan.receiver_of_source(index)]
            if peer == self.name:
                self.tag = self.plan.tag_of_source(index)
                self.exchange_receiver = receiver
                continue
            self.send(
                MessageKind.EXCHANGE_ASSIGNMENT,
                peer,
                {"tag": self.plan.tag_of_source(index), "receiver": receiver},
            )
            self.send(
                MessageKind.TARGET_PARAMS,
                peer,
                {
                    "rotation": self.target.rotation,
                    "translation": self.target.translation,
                },
            )
        # The coordinator adapts locally (no self-addressed message).
        self.adaptor = compute_adaptor(self.perturbation, self.target)
        self.adaptors_received += 1

    def on_space_adaptor(self, message: Message) -> None:
        self.adaptors_received += 1


@dataclass
class _Epoch:
    """One negotiated space: target, plan, and per-party perturbations."""

    target: GeometricPerturbation
    plan: ExchangePlan
    perturbations: List[GeometricPerturbation]
    adaptors: List[SpaceAdaptor]


def _negotiate(
    config: StreamConfig,
    dimension: int,
    sigmas: Sequence[float],
    master: np.random.Generator,
) -> Tuple[_Epoch, int, int, float]:
    """Run one negotiation over a fresh simnet network.

    Returns the epoch plus the network's message/byte counts and the
    virtual duration of the exchange.
    """
    network = Network(seed=int(master.integers(2**32)))
    names = [config.provider_name(i) for i in range(config.k)]
    providers: List[_NegotiationProvider] = []
    for index in range(config.k - 1):
        providers.append(
            _NegotiationProvider(
                names[index],
                network,
                dimension,
                float(sigmas[index]),
                coordinator_name=names[-1],
                seed=int(master.integers(2**32)),
            )
        )
    coordinator = _NegotiationCoordinator(
        names[-1],
        network,
        dimension,
        float(sigmas[-1]),
        k=config.k,
        provider_names=names,
        seed=int(master.integers(2**32)),
    )
    providers.append(coordinator)

    network.simulator.schedule(0.0, coordinator.start)
    network.run()

    if coordinator.adaptors_received != config.k:
        raise RuntimeError(
            f"negotiation incomplete: {coordinator.adaptors_received}/"
            f"{config.k} adaptors"
        )
    assert coordinator.target is not None and coordinator.plan is not None
    epoch = _Epoch(
        target=coordinator.target,
        plan=coordinator.plan,
        perturbations=[p.perturbation for p in providers],
        adaptors=[p.adaptor for p in providers],
    )
    return epoch, network.messages_sent, network.bytes_sent, network.simulator.now


def _epoch_guarantee(
    epoch: _Epoch,
    X_normalized: np.ndarray,
    sigmas: Sequence[float],
    rng: np.random.Generator,
) -> float:
    """Fast-suite guarantee of the epoch's effective global perturbation.

    As in the batch session, the miner holds data in the target space with
    the inherited noise, so the effective perturbation is the target's
    rotation/translation at the worst (smallest) per-party noise level.
    """
    from ..attacks.resilience import fast_suite

    effective = GeometricPerturbation(
        rotation=epoch.target.rotation,
        translation=epoch.target.translation,
        noise_sigma=float(min(sigmas)),
    )
    return fast_suite().guarantee(effective, X_normalized.T, rng)


# ----------------------------------------------------------------------
# the session driver
# ----------------------------------------------------------------------
def run_stream_session(
    source: StreamSource, config: Optional[StreamConfig] = None
) -> StreamSessionResult:
    """Mine a stream privately, re-adapting the space when the data drifts.

    Parameters
    ----------
    source:
        The record stream (see :func:`repro.streaming.sources.make_stream`).
    config:
        Streaming knobs; defaults to :class:`StreamConfig()`.
    """
    config = config if config is not None else StreamConfig()
    master = np.random.default_rng(config.seed)

    buffer = make_window_buffer(
        config.window_kind, config.window_size, config.window_step
    )
    normalizer = make_normalizer(config.normalizer)
    detector = make_detector(config.detector, **dict(config.detector_params))
    params = dict(config.classifier_params)
    miner_seed = int(master.integers(2**32))
    miner = make_online_classifier(config.classifier, seed=miner_seed, **params)
    baseline = make_online_classifier(config.classifier, seed=miner_seed, **params)
    party_rngs = [
        np.random.default_rng(int(master.integers(2**32))) for _ in range(config.k)
    ]
    trust = {party: 1.0 for party in range(config.k)}
    trust_by_window: Dict[int, List[TrustChange]] = {}
    for change in config.trust_changes:
        if not 0 <= change.party < config.k:
            raise ValueError(f"trust change names party {change.party}, k={config.k}")
        trust_by_window.setdefault(change.window, []).append(change)

    epoch: Optional[_Epoch] = None
    events: List[ReadaptationEvent] = []
    window_stats: List[StreamWindowStats] = []
    messages_total = 0
    bytes_total = 0
    correct_perturbed = 0
    correct_baseline = 0
    scored = 0
    records = 0
    last_readapt_window = -(10**9)

    def sigmas() -> List[float]:
        return [config.noise_sigma * (2.0 - trust[p]) for p in range(config.k)]

    def negotiate(reason: str, window_index: int, statistic: float,
                  X_normalized: Optional[np.ndarray]) -> _Epoch:
        nonlocal messages_total, bytes_total
        began = time.perf_counter()
        new_epoch, n_msgs, n_bytes, virtual = _negotiate(
            config, source.dimension, sigmas(), master
        )
        latency = time.perf_counter() - began
        messages_total += n_msgs
        bytes_total += n_bytes
        guarantee = None
        if config.compute_privacy and X_normalized is not None:
            guarantee = _epoch_guarantee(
                new_epoch,
                X_normalized,
                sigmas(),
                np.random.default_rng(int(master.integers(2**32))),
            )
        events.append(
            ReadaptationEvent(
                window=window_index,
                reason=reason,
                statistic=statistic,
                latency=latency,
                messages=n_msgs,
                bytes=n_bytes,
                virtual_duration=virtual,
                privacy_guarantee=guarantee,
            )
        )
        return new_epoch

    start = time.perf_counter()
    for record in source:
        records += 1
        for window in buffer.push(record.x, record.y, record.time):
            # Only the fresh tail rows are new to the stream (sliding
            # windows overlap); incremental state — normalizer moments,
            # model updates, prequential scoring — must touch each record
            # exactly once, while drift statistics use the whole window.
            X_fresh = window.X[-window.fresh :]
            y_fresh = window.y[-window.fresh :]

            # ----- normalization (incremental, converges to batch) -------
            normalizer.update(X_fresh)
            X_norm = normalizer.transform(X_fresh)

            # ----- trust schedule (applies from this window on) ----------
            changes = trust_by_window.get(window.index, ())
            for change in changes:
                trust[change.party] = change.trust

            # ----- space (re-)negotiation --------------------------------
            readapted = False
            if epoch is None:
                # A trust change scheduled at the first window is folded
                # into the initial negotiation's noise levels above.
                epoch = negotiate("initial", window.index, 0.0, X_norm)
                last_readapt_window = window.index
                detector.observe(window.X)  # installs the reference
                report = DriftReport(fired=False, statistic=0.0, threshold=np.inf)
            else:
                if changes:
                    old_target = epoch.target
                    epoch = negotiate("trust", window.index, 0.0, X_norm)
                    migration = compute_adaptor(old_target, epoch.target)
                    miner.adapt_space(migration)
                    last_readapt_window = window.index
                    readapted = True
                report = detector.observe(window.X)
                cooled = (
                    window.index - last_readapt_window >= config.readapt_cooldown
                )
                if report.fired and cooled and not readapted:
                    old_target = epoch.target
                    epoch = negotiate(
                        "drift", window.index, report.statistic, X_norm
                    )
                    migration = compute_adaptor(old_target, epoch.target)
                    miner.adapt_space(migration)
                    detector.rebase(window.X)
                    last_readapt_window = window.index
                    readapted = True
                elif report.fired and readapted:
                    # Trust already renegotiated this window; just rebase.
                    detector.rebase(window.X)

            # ----- perturb + adapt into the unified space ----------------
            X_target = np.empty_like(X_norm)
            parties = np.arange(window.fresh) % config.k
            for party in range(config.k):
                rows = parties == party
                if not rows.any():
                    continue
                perturbed = epoch.perturbations[party].apply(
                    X_norm[rows].T, rng=party_rngs[party]
                )
                X_target[rows] = np.asarray(
                    epoch.adaptors[party].apply(np.asarray(perturbed))
                ).T

            # ----- prequential mining (test, then train) -----------------
            pred_perturbed = miner.predict(X_target)
            pred_baseline = baseline.predict(X_norm)
            acc_perturbed = accuracy_score(y_fresh, pred_perturbed)
            acc_baseline = accuracy_score(y_fresh, pred_baseline)
            miner.partial_fit(X_target, y_fresh)
            baseline.partial_fit(X_norm, y_fresh)

            correct_perturbed += int(round(acc_perturbed * window.fresh))
            correct_baseline += int(round(acc_baseline * window.fresh))
            scored += window.fresh
            window_stats.append(
                StreamWindowStats(
                    index=window.index,
                    n_records=window.fresh,
                    accuracy_perturbed=acc_perturbed,
                    accuracy_baseline=acc_baseline,
                    drift_statistic=report.statistic,
                    drift_kind=report.kind,
                    readapted=readapted,
                )
            )
    wall = time.perf_counter() - start

    return StreamSessionResult(
        config=config,
        source_name=source.name,
        source_kind=source.kind,
        records_processed=records,
        windows=window_stats,
        events=events,
        accuracy_perturbed=correct_perturbed / scored if scored else 0.0,
        accuracy_baseline=correct_baseline / scored if scored else 0.0,
        wall_seconds=wall,
        messages_sent=messages_total,
        bytes_sent=bytes_total,
    )
