"""Online counterpart of :func:`repro.core.session.run_sap_session`.

:func:`run_stream_session` drives one continuous privacy-preserving mining
run: records arrive from a :class:`~repro.streaming.sources.StreamSource`,
are **pushed through per-provider ingestion gates into per-shard window
buffers** (:class:`~repro.streaming.ingest.IngestPlane`), sealed by a
watermark in event order, normalized incrementally, perturbed per-party,
adapted into the negotiated target space, and mined by an incremental
classifier — while a drift detector watches for distribution shift.
Out-of-order arrivals (``config.skew``) are tolerated up to
``config.watermark_delay`` sequence numbers of lateness; later records
fall to ``config.late_policy`` (drop / readmit / upsert), with per-provider
counters reported on the result's ``ingest`` block.

Space (re-)negotiation reuses the multiparty machinery:

* every epoch's negotiation runs over a fresh :class:`repro.simnet` network
  — the coordinator draws the target perturbation and a new exchange plan,
  broadcasts ``TARGET_PARAMS`` / ``EXCHANGE_ASSIGNMENT``, and collects each
  provider's tagged ``SPACE_ADAPTOR`` — so message/byte costs are charged
  exactly like in the batch protocol;
* when drift fires (or a party's trust level changes — Li et al.'s
  multi-level-trust setting, mapped to a per-party noise level), the session
  re-negotiates and *migrates* the online model from the old target space to
  the new one with :func:`repro.core.adaptation.compute_adaptor` — raw data
  is never revisited, and the inherited noise is never removed;
* every epoch refreshes the privacy guarantee with the fast attack suite,
  evaluated on the current window in the new space's parameters.

Execution is **sharded** (:mod:`repro.sharding`): windows are grouped into
rounds of ``config.shards``, the per-window transform (one stacked matmul
into the target space plus per-party complementary noise) and the
prequential predictions fan out across a worker pool, and every per-shard
record batch travels a persistent :class:`~repro.sharding.engine.DataPlane`
network so message accounting stays complete.  Control decisions — window
order, normalizer merges, drift detection, trust schedules, negotiation,
model updates — stay on the driver in window order, which is why the
results are bit-identical for every ``(shards, backend, plan)`` choice;
``shards=1`` on the serial backend is simply the degenerate round size.

Rounds are **pipelined** (``config.overlap``, default on for pool
backends): the driver dispatches a round's transforms asynchronously
(:meth:`~repro.sharding.ShardBackend.submit_map`), runs the next round's
control plane while they execute, and gathers in strict round order — a
double-buffered pipeline where round ``N+1``'s transforms and round
``N``'s predictions occupy the pool while the driver ingests records.  A
round that re-negotiates the space first *drains* everything in flight,
so no dispatched task ever references a replaced epoch's invalidated
adaptor cache.  Overlap reorders execution, never gathering/merge order,
so results remain bit-identical to serial dispatch.

Accuracy is scored prequentially (test-then-train) against a baseline copy
of the same online learner fed the *un*-perturbed normalized records, so
the reported deviation isolates what perturbation costs — the streaming
analogue of the paper's Figures 5/6.
"""

from __future__ import annotations

import itertools
import logging
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..checkpoint import (
    CheckpointError,
    Checkpointer,
    SessionEvicted,
    load_checkpoint,
)
from ..core.adaptation import AdaptorCache, SpaceAdaptor, compute_adaptor
from ..core.perturbation import GeometricPerturbation, sample_perturbation
from ..core.protocol import ExchangePlan, draw_exchange_plan
from ..mining.metrics import accuracy_deviation, accuracy_score
from ..sharding import (
    BACKENDS,
    SHARD_STRATEGIES,
    DataPlane,
    ShardBackend,
    ShardFutures,
    ShardPlan,
    ShardPool,
    predict_window,
    transform_window,
)
from ..obs import NULL_TRACER, Telemetry
from ..simnet.channel import Network
from ..simnet.messages import Message, MessageKind
from ..simnet.node import Node
from .drift import DETECTOR_KINDS, DriftReport, make_detector
from .ingest import LATE_POLICIES, IngestPlane, IngestStats
from .normalizer import (
    NORMALIZER_KINDS,
    RunningMinMaxNormalizer,
    make_normalizer,
)
from .online_miner import (
    ONLINE_CLASSIFIERS,
    OnlineLinearSVM,
    ReservoirKNN,
    make_online_classifier,
)
from .sources import StreamSource, skewed
from .windows import WINDOW_KINDS, Window

__all__ = [
    "TrustChange",
    "StreamConfig",
    "ReadaptationEvent",
    "StreamWindowStats",
    "StreamSessionResult",
    "STREAM_CHECKPOINT_FORMAT",
    "stream_config_mapping",
    "stream_config_from_mapping",
    "run_stream_session",
]

_LOG = logging.getLogger("repro.streaming.session")


@dataclass(frozen=True)
class TrustChange:
    """A scheduled change of one party's trust level.

    Following the multi-level-trust model, ``trust`` in ``(0, 1]`` scales
    the noise the party must apply: a fully trusted party (1.0) uses the
    base ``noise_sigma``; lower trust doubles toward ``2 x noise_sigma``.
    A change always triggers a space re-negotiation at ``window``.
    """

    window: int
    party: int
    trust: float

    def __post_init__(self) -> None:
        if self.window < 0:
            raise ValueError("window must be >= 0")
        if not 0.0 < self.trust <= 1.0:
            raise ValueError("trust must be in (0, 1]")


@dataclass(frozen=True)
class StreamConfig:
    """Knobs for one online SAP run.

    Attributes
    ----------
    k:
        Number of data providers (incoming records are attributed to
        providers round-robin; coordinator included, as in the batch
        protocol).
    window_size / window_kind / window_step:
        Windowing policy (see :mod:`repro.streaming.windows`).
    noise_sigma:
        Base common-noise level; per-party effective noise is scaled by
        trust (see :class:`TrustChange`).
    classifier:
        ``"knn"`` (reservoir) or ``"linear_svm"`` (SGD) — the incremental
        miners of :mod:`repro.streaming.online_miner`.
    normalizer:
        ``"minmax"`` or ``"zscore"`` incremental normalizer.
    detector / detector_params:
        Drift detector (``"meanvar"`` or ``"ks"``) and its thresholds.
    readapt_cooldown:
        Minimum number of windows between two *drift-triggered*
        re-adaptations (trust changes always fire); prevents thrash while a
        gradual drift crosses the threshold repeatedly.
    trust_changes:
        Scheduled :class:`TrustChange` events.
    compute_privacy:
        Refresh the fast-suite privacy guarantee at every negotiation
        (small cost per epoch; disable for pure throughput benchmarks).
    shards:
        Number of logical worker shards; windows are processed in rounds
        of this many, with transforms and predictions fanned out across
        the pool.  Results are bit-identical for every shard count.
    shard_backend:
        ``"serial"``, ``"thread"``, or ``"process"`` — see
        :mod:`repro.sharding.backends`.
    shard_plan:
        ``"round_robin"``, ``"hash"``, or ``"party"`` — see
        :class:`repro.sharding.ShardPlan`.  Affects placement and
        data-plane routing (the ``party`` strategy adds forward hops),
        never results.
    overlap:
        Pipeline rounds: dispatch round ``N+1``'s shard transforms while
        round ``N``'s predictions are still in flight, hiding driver
        control-plane latency behind the worker pool (double-buffered
        rounds).  ``None`` — the default — enables the pipeline whenever
        the executing backend can actually overlap work (thread/process
        pools); ``True``/``False`` force it.  On the serial backend the
        flag is ignored: dispatches run inline, so the pipeline
        degenerates to serial execution either way.  Results are
        bit-identical with and without overlap — execution may reorder,
        merge order never does.
    watermark_delay:
        How many sequence numbers the ingestion watermark trails the
        arrival frontier before a window seals (see
        :class:`repro.streaming.ingest.IngestPlane`).  ``0`` — the
        default, bit-identical to the pre-event-time pipeline on in-order
        streams — seals a window as soon as any later record arrives; a
        delay of ``s`` tolerates any arrival order with observed lateness
        ``<= s`` without a single late record.
    late_policy:
        What happens to a record that arrives after its window sealed:
        ``"drop"``, ``"readmit"``, or ``"upsert"`` (see
        :data:`repro.streaming.ingest.LATE_POLICIES`).
    skew:
        Bounded out-of-order transport simulation: ``skew > 0`` scrambles
        the source's arrival order with displacement (and therefore
        observed lateness) at most ``skew`` records, deterministically
        under the session seed (see :func:`repro.streaming.sources.skewed`).
        ``0`` leaves the arrival order untouched.
    seed:
        Master seed; all node and miner seeds derive from it.
    telemetry:
        Optional :class:`repro.obs.Telemetry` bundle.  When present, the
        driver emits round/stage tracing spans (if the bundle's tracer is
        enabled) and increments its counters; when ``None`` — the default
        — every instrumented site is a guarded no-op.  Excluded from
        equality, repr, and :meth:`~repro.serve.SessionSpec.to_mapping`,
        and it can never affect results: telemetry reads session state,
        never draws randomness, and never reorders execution.
    """

    k: int = 3
    window_size: int = 64
    window_kind: str = "tumbling"
    window_step: Optional[int] = None
    noise_sigma: float = 0.05
    classifier: str = "knn"
    classifier_params: Tuple[Tuple[str, object], ...] = ()
    normalizer: str = "minmax"
    detector: str = "meanvar"
    detector_params: Tuple[Tuple[str, object], ...] = ()
    readapt_cooldown: int = 2
    trust_changes: Tuple[TrustChange, ...] = ()
    compute_privacy: bool = True
    shards: int = 1
    shard_backend: str = "serial"
    shard_plan: str = "round_robin"
    overlap: Optional[bool] = None
    watermark_delay: int = 0
    late_policy: str = "drop"
    skew: int = 0
    seed: int = 0
    telemetry: Optional[Telemetry] = field(
        default=None, compare=False, repr=False
    )

    def __post_init__(self) -> None:
        if self.k < 2:
            raise ValueError("streaming SAP requires k >= 2 providers")
        if self.window_size < 2:
            raise ValueError("window_size must be >= 2")
        if self.window_kind not in WINDOW_KINDS:
            raise ValueError(
                f"unknown window kind {self.window_kind!r}; available: "
                f"{', '.join(WINDOW_KINDS)}"
            )
        if self.window_step is not None and self.window_step < 1:
            raise ValueError("window_step must be a positive integer when set")
        if self.classifier not in ONLINE_CLASSIFIERS:
            raise ValueError(
                f"unknown online classifier {self.classifier!r}; available: "
                f"{', '.join(ONLINE_CLASSIFIERS)}"
            )
        if self.normalizer not in NORMALIZER_KINDS:
            raise ValueError(
                f"unknown normalizer {self.normalizer!r}; available: "
                f"{', '.join(NORMALIZER_KINDS)}"
            )
        if self.detector not in DETECTOR_KINDS:
            raise ValueError(
                f"unknown drift detector {self.detector!r}; available: "
                f"{', '.join(DETECTOR_KINDS)}"
            )
        if self.noise_sigma < 0:
            raise ValueError("noise_sigma must be >= 0")
        if self.readapt_cooldown < 0:
            raise ValueError("readapt_cooldown must be >= 0")
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        if self.shard_backend not in BACKENDS:
            raise ValueError(
                f"unknown shard backend {self.shard_backend!r}; available: "
                f"{', '.join(BACKENDS)}"
            )
        if self.shard_plan not in SHARD_STRATEGIES:
            raise ValueError(
                f"unknown shard plan {self.shard_plan!r}; available: "
                f"{', '.join(SHARD_STRATEGIES)}"
            )
        if self.overlap is not None and not isinstance(self.overlap, bool):
            raise ValueError(
                f"overlap must be True, False, or None (auto), got "
                f"{self.overlap!r}"
            )
        if (
            not isinstance(self.watermark_delay, int)
            or isinstance(self.watermark_delay, bool)
            or self.watermark_delay < 0
        ):
            raise ValueError(
                f"watermark_delay must be an integer >= 0, got "
                f"{self.watermark_delay!r}"
            )
        if self.late_policy not in LATE_POLICIES:
            raise ValueError(
                f"unknown late policy {self.late_policy!r}; available: "
                f"{', '.join(LATE_POLICIES)}"
            )
        if (
            not isinstance(self.skew, int)
            or isinstance(self.skew, bool)
            or self.skew < 0
        ):
            raise ValueError(f"skew must be an integer >= 0, got {self.skew!r}")
        if self.telemetry is not None and not isinstance(
            self.telemetry, Telemetry
        ):
            raise ValueError(
                f"telemetry must be a repro.obs.Telemetry bundle or None, "
                f"got {type(self.telemetry).__name__}"
            )

    def provider_name(self, index: int) -> str:
        """Node names, matching the batch convention (coordinator last)."""
        if index == self.k - 1:
            return "coordinator"
        return f"provider-{index}"


@dataclass(frozen=True)
class ReadaptationEvent:
    """One space re-negotiation."""

    window: int
    reason: str  # "initial" | "drift" | "trust"
    statistic: float
    latency: float  # wall-clock seconds spent negotiating
    messages: int
    bytes: int
    virtual_duration: float
    privacy_guarantee: Optional[float] = None


@dataclass(frozen=True)
class StreamWindowStats:
    """Prequential metrics for one window.

    ``n_records`` counts the window's *fresh* records — the ones scored
    and learned from exactly once (equal to the window size for tumbling
    windows, to the step for overlapping sliding windows).  ``revision``
    is 0 for a window's first emission and ``>= 1`` for an ``upsert``
    correction carrying that window's late arrivals.
    """

    index: int
    n_records: int
    accuracy_perturbed: float
    accuracy_baseline: float
    drift_statistic: float
    drift_kind: str
    readapted: bool
    revision: int = 0

    @property
    def deviation(self) -> float:
        """Per-window accuracy deviation in percentage points."""
        return accuracy_deviation(self.accuracy_perturbed, self.accuracy_baseline)


@dataclass
class StreamSessionResult:
    """Everything measured over one streaming run."""

    config: StreamConfig
    source_name: str
    source_kind: str
    records_processed: int
    windows: List[StreamWindowStats]
    events: List[ReadaptationEvent]
    accuracy_perturbed: float
    accuracy_baseline: float
    wall_seconds: float
    messages_sent: int
    bytes_sent: int
    data_messages_sent: int = 0
    data_bytes_sent: int = 0
    shard_records: Tuple[int, ...] = ()
    ingest: Optional[IngestStats] = None
    provider_records: Tuple[int, ...] = ()
    #: whether the driver actually pipelined rounds (the *effective* value
    #: of ``config.overlap`` — false whenever the executing backend runs
    #: dispatches inline, whatever the config asked for)
    overlap: bool = False

    @property
    def deviation(self) -> float:
        """Cumulative prequential accuracy deviation (percentage points)."""
        return accuracy_deviation(self.accuracy_perturbed, self.accuracy_baseline)

    @property
    def readaptations(self) -> int:
        """Re-negotiations after the initial one (drift- or trust-triggered)."""
        return sum(1 for e in self.events if e.reason != "initial")

    @property
    def throughput(self) -> float:
        """Records per wall-clock second, end to end."""
        if self.wall_seconds <= 0:
            return float("inf")
        return self.records_processed / self.wall_seconds

    @property
    def mean_readapt_latency(self) -> float:
        """Mean wall-clock seconds per negotiation."""
        if not self.events:
            return 0.0
        return float(np.mean([e.latency for e in self.events]))

    def deviation_series(self) -> List[float]:
        """Per-window deviation trajectory (for reports and figures)."""
        return [w.deviation for w in self.windows]

    def summary(self) -> str:
        """Multi-line run report, mirroring ``SAPSessionResult.summary``."""
        guarantees = [
            e.privacy_guarantee for e in self.events if e.privacy_guarantee is not None
        ]
        lines = [
            f"stream            : {self.source_name} ({self.source_kind})",
            f"providers (k)     : {self.config.k}",
            f"classifier        : {self.config.classifier}",
            f"shards            : {self.config.shards} "
            f"({self.config.shard_backend} backend, {self.config.shard_plan} plan, "
            f"{'pipelined' if self.overlap else 'serial'} dispatch)",
            f"records / windows : {self.records_processed} / {len(self.windows)}",
            f"re-adaptations    : {self.readaptations}",
            f"baseline accuracy : {self.accuracy_baseline:.4f}",
            f"stream accuracy   : {self.accuracy_perturbed:.4f}",
            f"deviation         : {self.deviation:+.2f} points",
            f"throughput        : {self.throughput:,.0f} records/s",
            f"readapt latency   : {self.mean_readapt_latency * 1000:.1f} ms (mean)",
            f"messages / bytes  : {self.messages_sent} / {self.bytes_sent}",
            f"shard traffic     : {self.data_messages_sent} msgs / "
            f"{self.data_bytes_sent} bytes",
        ]
        if self.ingest is not None:
            lines.append(
                f"ingestion         : {self.ingest.late} late "
                f"({self.ingest.dropped} dropped / "
                f"{self.ingest.readmitted} readmitted / "
                f"{self.ingest.upserted} upserted), "
                f"max skew {self.ingest.max_skew}"
            )
        if guarantees:
            lines.append(
                f"privacy guarantee : {min(guarantees):.4f} (min over epochs)"
            )
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly view of the run (``repro stream --json``)."""
        return {
            "kind": "stream",
            "source": self.source_name,
            "stream_kind": self.source_kind,
            "k": self.config.k,
            "classifier": self.config.classifier,
            "seed": self.config.seed,
            "shards": self.config.shards,
            "overlap": self.overlap,
            "records_processed": self.records_processed,
            "n_windows": len(self.windows),
            "readaptations": self.readaptations,
            "accuracy_perturbed": self.accuracy_perturbed,
            "accuracy_baseline": self.accuracy_baseline,
            "deviation": self.deviation,
            "deviation_series": self.deviation_series(),
            "throughput": self.throughput,
            "wall_seconds": self.wall_seconds,
            "messages_sent": self.messages_sent,
            "bytes_sent": self.bytes_sent,
            "data_messages_sent": self.data_messages_sent,
            "data_bytes_sent": self.data_bytes_sent,
            "ingest": None if self.ingest is None else self.ingest.to_dict(),
            "provider_records": list(self.provider_records),
            "events": [
                {
                    "window": e.window,
                    "reason": e.reason,
                    "statistic": e.statistic,
                    "latency": e.latency,
                    "messages": e.messages,
                    "bytes": e.bytes,
                    "privacy_guarantee": e.privacy_guarantee,
                }
                for e in self.events
            ],
        }


# ----------------------------------------------------------------------
# negotiation roles (one fresh simnet network per epoch)
# ----------------------------------------------------------------------
class _NegotiationProvider(Node):
    """A provider's view of one negotiation epoch.

    Draws its local perturbation ``G_i`` up front; on receiving the target
    parameters it answers with its tagged space adaptor, exactly like the
    batch :class:`repro.parties.provider.DataProvider` — minus the dataset
    exchange, which the streaming session performs window by window.
    """

    def __init__(
        self,
        name: str,
        network: Network,
        dimension: int,
        noise_sigma: float,
        coordinator_name: str,
        seed: int = 0,
    ) -> None:
        super().__init__(name, network, seed=seed)
        self.coordinator_name = coordinator_name
        self.perturbation = sample_perturbation(
            dimension, self.rng, noise_sigma=noise_sigma
        )
        self.adaptor: Optional[SpaceAdaptor] = None
        self.tag: Optional[str] = None
        self.exchange_receiver: Optional[str] = None

    def on_exchange_assignment(self, message: Message) -> None:
        self.tag = message.payload["tag"]
        self.exchange_receiver = message.payload["receiver"]

    def on_target_params(self, message: Message) -> None:
        target = GeometricPerturbation(
            rotation=message.payload["rotation"],
            translation=message.payload["translation"],
            noise_sigma=0.0,
        )
        self.adaptor = compute_adaptor(self.perturbation, target)
        self.send(
            MessageKind.SPACE_ADAPTOR,
            self.coordinator_name,
            {
                "tag": self.tag if self.tag is not None else "",
                "rotation_adaptor": self.adaptor.rotation_adaptor,
                "translation_adaptor": self.adaptor.translation_adaptor,
            },
        )


class _NegotiationCoordinator(_NegotiationProvider):
    """The coordinating provider: draws the target + plan, collects adaptors."""

    def __init__(
        self,
        name: str,
        network: Network,
        dimension: int,
        noise_sigma: float,
        k: int,
        provider_names: Sequence[str],
        seed: int = 0,
    ) -> None:
        super().__init__(
            name, network, dimension, noise_sigma, coordinator_name=name, seed=seed
        )
        self.k = k
        self.provider_names = list(provider_names)
        self.target: Optional[GeometricPerturbation] = None
        self.plan: Optional[ExchangePlan] = None
        self.adaptors_received = 0

    def start(self) -> None:
        """Draw target + plan, then broadcast assignments and parameters."""
        d = self.perturbation.dimension
        self.target = sample_perturbation(d, self.rng, noise_sigma=0.0)
        self.plan = draw_exchange_plan(self.k, self.rng)
        for index, peer in enumerate(self.provider_names):
            receiver = self.provider_names[self.plan.receiver_of_source(index)]
            if peer == self.name:
                self.tag = self.plan.tag_of_source(index)
                self.exchange_receiver = receiver
                continue
            self.send(
                MessageKind.EXCHANGE_ASSIGNMENT,
                peer,
                {"tag": self.plan.tag_of_source(index), "receiver": receiver},
            )
            self.send(
                MessageKind.TARGET_PARAMS,
                peer,
                {
                    "rotation": self.target.rotation,
                    "translation": self.target.translation,
                },
            )
        # The coordinator adapts locally (no self-addressed message).
        self.adaptor = compute_adaptor(self.perturbation, self.target)
        self.adaptors_received += 1

    def on_space_adaptor(self, message: Message) -> None:
        self.adaptors_received += 1


@dataclass
class _Epoch:
    """One negotiated space: target, plan, per-party perturbations, sigmas.

    ``sigmas`` are the per-party effective noise levels *at negotiation
    time*; a trust change always re-negotiates, so they stay accurate for
    the epoch's whole lifetime.  Adaptors are held in the session's
    :class:`~repro.core.adaptation.AdaptorCache`, keyed by ``epoch_id``.
    """

    epoch_id: int
    target: GeometricPerturbation
    plan: ExchangePlan
    perturbations: List[GeometricPerturbation]
    sigmas: Tuple[float, ...]


def _negotiate(
    config: StreamConfig,
    dimension: int,
    sigmas: Sequence[float],
    master: np.random.Generator,
) -> Tuple[
    GeometricPerturbation,
    ExchangePlan,
    List[GeometricPerturbation],
    List[SpaceAdaptor],
    int,
    int,
    float,
]:
    """Run one negotiation over a fresh simnet network.

    Returns the negotiated target, exchange plan, per-party perturbations
    and adaptors, plus the network's message/byte counts and the virtual
    duration of the exchange.
    """
    network = Network(seed=int(master.integers(2**32)))
    names = [config.provider_name(i) for i in range(config.k)]
    providers: List[_NegotiationProvider] = []
    for index in range(config.k - 1):
        providers.append(
            _NegotiationProvider(
                names[index],
                network,
                dimension,
                float(sigmas[index]),
                coordinator_name=names[-1],
                seed=int(master.integers(2**32)),
            )
        )
    coordinator = _NegotiationCoordinator(
        names[-1],
        network,
        dimension,
        float(sigmas[-1]),
        k=config.k,
        provider_names=names,
        seed=int(master.integers(2**32)),
    )
    providers.append(coordinator)

    network.simulator.schedule(0.0, coordinator.start)
    network.run()

    if coordinator.adaptors_received != config.k:
        raise RuntimeError(
            f"negotiation incomplete: {coordinator.adaptors_received}/"
            f"{config.k} adaptors"
        )
    assert coordinator.target is not None and coordinator.plan is not None
    return (
        coordinator.target,
        coordinator.plan,
        [p.perturbation for p in providers],
        [p.adaptor for p in providers],
        network.messages_sent,
        network.bytes_sent,
        network.simulator.now,
    )


def _epoch_guarantee(
    epoch: _Epoch,
    X_normalized: np.ndarray,
    sigmas: Sequence[float],
    rng: np.random.Generator,
) -> float:
    """Fast-suite guarantee of the epoch's effective global perturbation.

    As in the batch session, the miner holds data in the target space with
    the inherited noise, so the effective perturbation is the target's
    rotation/translation at the worst (smallest) per-party noise level.
    """
    from ..attacks.resilience import fast_suite

    effective = GeometricPerturbation(
        rotation=epoch.target.rotation,
        translation=epoch.target.translation,
        noise_sigma=float(min(sigmas)),
    )
    return fast_suite().guarantee(effective, X_normalized.T, rng)


@dataclass
class _WindowWork:
    """Driver-side record of one window's control-plane decisions."""

    window: Window
    X_fresh: np.ndarray
    y_fresh: np.ndarray
    norm_a: np.ndarray
    norm_b: np.ndarray
    epoch: _Epoch
    migration: Optional[SpaceAdaptor]
    report: DriftReport
    readapted: bool
    shard: int
    # filled by the transform stage
    X_norm: Optional[np.ndarray] = field(default=None)
    X_target: Optional[np.ndarray] = field(default=None)


@dataclass(eq=False)
class _Round:
    """One round of windows moving through the (possibly pipelined) driver.

    A round is born in the *control* stage (window-ordered decisions,
    ``work`` and ``stale_epoch_ids`` filled), gets its transform tasks
    dispatched (``transforms`` set), is *settled* (transforms gathered,
    data plane charged, models updated, ``predictions`` dispatched), and
    finally *merged* (predictions gathered, stats folded in).  ``eq=False``
    keeps identity semantics — work items hold numpy arrays.

    ``round_id`` is the driver's running round counter and ``span`` the
    round's enclosing tracing span (``None`` when tracing is off); both
    exist so stage spans opened across different driver calls can share
    one parent and one ``round`` attribute.
    """

    work: List[_WindowWork]
    stale_epoch_ids: List[int]
    transforms: Optional[ShardFutures] = None
    predictions: Optional[ShardFutures] = None
    round_id: int = -1
    span: Optional[Any] = None


# ----------------------------------------------------------------------
# durable sessions: checkpoint state capture / restore
# ----------------------------------------------------------------------
# The driver's whole mutable surface is already explicit (incremental
# normalizers, miner reservoirs/weights, epoch + adaptor cache, ingest
# buffers, RNG states), so a checkpoint is a plain mapping of it.  The
# helpers below capture and re-apply that state; the payload layout they
# define *is* the checkpoint schema (``repro.checkpoint.SCHEMA_VERSION``).
# Restore is reinit-then-overwrite: the driver initializes normally (the
# fresh master RNG re-draws the same derived seeds in the same order),
# then every mutable piece is overwritten from the checkpoint and the
# already-ingested arrival prefix is skipped — sources and the skew
# shuffler re-derive their arrival order deterministically from their
# seeds, which is what makes resume bit-identical to never stopping.

#: the payload ``format`` tag of stream-session checkpoints
STREAM_CHECKPOINT_FORMAT = "repro.checkpoint/stream"

#: the source-identity fields a checkpoint records (``make_stream`` args)
_SOURCE_FIELDS = (
    "name", "kind", "n_records", "seed", "drift_at", "magnitude",
    "transition", "rate", "burst_factor",
)


def stream_config_mapping(config: StreamConfig) -> Dict[str, Any]:
    """Every result-affecting config field, as a checkpoint-friendly dict.

    ``telemetry`` is deliberately absent — a runtime attachment, never
    part of the workload.  Inverse: :func:`stream_config_from_mapping`.
    """
    return {
        "k": config.k,
        "window_size": config.window_size,
        "window_kind": config.window_kind,
        "window_step": config.window_step,
        "noise_sigma": float(config.noise_sigma),
        "classifier": config.classifier,
        "classifier_params": [list(pair) for pair in config.classifier_params],
        "normalizer": config.normalizer,
        "detector": config.detector,
        "detector_params": [list(pair) for pair in config.detector_params],
        "readapt_cooldown": config.readapt_cooldown,
        "trust_changes": [
            {"window": c.window, "party": c.party, "trust": float(c.trust)}
            for c in config.trust_changes
        ],
        "compute_privacy": config.compute_privacy,
        "shards": config.shards,
        "shard_backend": config.shard_backend,
        "shard_plan": config.shard_plan,
        "overlap": config.overlap,
        "watermark_delay": config.watermark_delay,
        "late_policy": config.late_policy,
        "skew": config.skew,
        "seed": config.seed,
    }


def stream_config_from_mapping(mapping: Dict[str, Any]) -> StreamConfig:
    """Rebuild the exact :class:`StreamConfig` a checkpoint was taken under."""
    kwargs = dict(mapping)
    kwargs["classifier_params"] = tuple(
        tuple(pair) for pair in kwargs.get("classifier_params", ())
    )
    kwargs["detector_params"] = tuple(
        tuple(pair) for pair in kwargs.get("detector_params", ())
    )
    kwargs["trust_changes"] = tuple(
        TrustChange(
            window=int(c["window"]), party=int(c["party"]), trust=float(c["trust"])
        )
        for c in kwargs.get("trust_changes", ())
    )
    try:
        return StreamConfig(**kwargs)
    except TypeError as exc:
        raise CheckpointError(
            f"checkpoint config does not match this build's StreamConfig: {exc}"
        ) from None


def _source_mapping(source: StreamSource) -> Dict[str, Any]:
    """The source's identity: enough to rebuild it and to refuse mismatches."""
    mapping: Dict[str, Any] = {
        name: getattr(source, name)
        for name in _SOURCE_FIELDS
        if hasattr(source, name)
    }
    mapping["dimension"] = int(source.dimension)
    return mapping


def _normalizer_state(norm: Any) -> Dict[str, Any]:
    if isinstance(norm, RunningMinMaxNormalizer):
        return {
            "kind": "minmax",
            "minimums": norm.minimums,
            "maximums": norm.maximums,
            "n_seen": norm.n_seen,
        }
    return {
        "kind": "zscore",
        "means": norm.means,
        "m2": norm._m2,
        "n_seen": norm.n_seen,
    }


def _restore_normalizer(norm: Any, state: Dict[str, Any]) -> None:
    if state["kind"] == "minmax":
        norm.minimums = state["minimums"]
        norm.maximums = state["maximums"]
    else:
        norm.means = state["means"]
        norm._m2 = state["m2"]
    norm.n_seen = int(state["n_seen"])


def _miner_state(miner: Any) -> Dict[str, Any]:
    if isinstance(miner, ReservoirKNN):
        return {
            "kind": "knn",
            "rng": miner.rng.bit_generator.state,
            "rows": None if miner._X_buf is None else miner._X_buf[: miner._size].copy(),
            "labels": list(miner._labels),
            "size": miner._size,
            "n_seen": miner._n_seen,
        }
    if isinstance(miner, OnlineLinearSVM):
        return {
            "kind": "svm",
            "rng": miner.rng.bit_generator.state,
            "weights": dict(miner._weights),
            "biases": dict(miner._biases),
            "t": miner._t,
            "n_seen": miner._n_seen,
            "dim": miner._dim,
        }
    raise CheckpointError(
        f"online classifier {type(miner).__name__} is not checkpointable"
    )


def _restore_miner(miner: Any, state: Dict[str, Any]) -> None:
    miner.rng.bit_generator.state = state["rng"]
    if state["kind"] == "knn":
        rows = state["rows"]
        if rows is not None:
            buffer = np.empty((miner.capacity, rows.shape[1]))
            buffer[: rows.shape[0]] = rows
            miner._X_buf = buffer
        miner._labels = list(state["labels"])
        miner._size = int(state["size"])
        miner._n_seen = int(state["n_seen"])
        miner._model = None  # refit lazily from the restored reservoir
    else:
        miner._weights = dict(state["weights"])
        miner._biases = dict(state["biases"])
        miner._t = int(state["t"])
        miner._n_seen = int(state["n_seen"])
        miner._dim = None if state["dim"] is None else int(state["dim"])


def _perturbation_state(perturbation: GeometricPerturbation) -> Dict[str, Any]:
    return {
        "rotation": perturbation.rotation,
        "translation": perturbation.translation,
        "noise_sigma": float(perturbation.noise_sigma),
    }


def _perturbation_from_state(state: Dict[str, Any]) -> GeometricPerturbation:
    return GeometricPerturbation(
        rotation=state["rotation"],
        translation=state["translation"],
        noise_sigma=state["noise_sigma"],
    )


def _epoch_state(epoch: Optional["_Epoch"]) -> Optional[Dict[str, Any]]:
    if epoch is None:
        return None
    return {
        "epoch_id": epoch.epoch_id,
        "target": _perturbation_state(epoch.target),
        "plan": {
            "k": epoch.plan.k,
            "coordinator": epoch.plan.coordinator,
            "tau": list(epoch.plan.tau),
            "redirect_receiver": epoch.plan.redirect_receiver,
            "tags": list(epoch.plan.tags),
        },
        "perturbations": [_perturbation_state(p) for p in epoch.perturbations],
        "sigmas": [float(s) for s in epoch.sigmas],
    }


def _epoch_from_state(state: Optional[Dict[str, Any]]) -> Optional["_Epoch"]:
    if state is None:
        return None
    plan = state["plan"]
    return _Epoch(
        epoch_id=int(state["epoch_id"]),
        target=_perturbation_from_state(state["target"]),
        plan=ExchangePlan(
            k=int(plan["k"]),
            coordinator=int(plan["coordinator"]),
            tau=tuple(int(t) for t in plan["tau"]),
            redirect_receiver=int(plan["redirect_receiver"]),
            tags=tuple(plan["tags"]),
        ),
        perturbations=[
            _perturbation_from_state(p) for p in state["perturbations"]
        ],
        sigmas=tuple(state["sigmas"]),
    )


_GATE_COUNTERS = ("records", "late", "dropped", "readmitted", "upserted", "max_skew")


def _ingest_state(plane: IngestPlane) -> Dict[str, Any]:
    return {
        "frontier": plane.frontier,
        "next_seal": plane.next_seal,
        "next_seq": plane._next_seq,
        "gates": [
            {name: getattr(gate, name) for name in _GATE_COUNTERS}
            for gate in plane.gates
        ],
        "shards": [
            {
                index: (list(bucket.rows), list(bucket.readmitted))
                for index, bucket in shard.open.items()
            }
            for shard in plane.shards
        ],
        "corrections": {
            index: list(rows) for index, rows in plane._corrections.items()
        },
        "revisions": dict(plane._revisions),
    }


def _restore_ingest(plane: IngestPlane, state: Dict[str, Any]) -> None:
    plane.frontier = int(state["frontier"])
    plane.next_seal = int(state["next_seal"])
    plane._next_seq = int(state["next_seq"])
    for gate, counters in zip(plane.gates, state["gates"]):
        for name in _GATE_COUNTERS:
            setattr(gate, name, int(counters[name]))
    for shard, buckets in zip(plane.shards, state["shards"]):
        shard.open.clear()
        for index, (rows, readmitted) in buckets.items():
            for row in rows:
                shard.insert(int(index), row)
            for row in readmitted:
                shard.insert(int(index), row, readmitted=True)
    plane._corrections = {
        int(index): list(rows) for index, rows in state["corrections"].items()
    }
    plane._revisions = {
        int(index): int(revision)
        for index, revision in state["revisions"].items()
    }


def _data_plane_state(data_plane: DataPlane) -> Dict[str, Any]:
    return {
        "messages": int(data_plane.messages_sent),
        "bytes": int(data_plane.bytes_sent),
        "provider_records": [int(g.records_sent) for g in data_plane.gates],
        "shard_records": [int(s.records_received) for s in data_plane.shards],
        "shard_batches": [int(s.batches_received) for s in data_plane.shards],
        "sink_windows": int(data_plane.sink.windows_received),
        "sink_records": int(data_plane.sink.records_received),
    }


def _restore_data_plane(data_plane: DataPlane, state: Dict[str, Any]) -> None:
    # Only the *observable* accounting needs restoring: per-message nonce
    # randomness and virtual-clock positions never surface in results.
    data_plane.network._messages_sent = int(state["messages"])
    data_plane.network._bytes_sent = int(state["bytes"])
    for gate, count in zip(data_plane.gates, state["provider_records"]):
        gate.records_sent = int(count)
    for shard, count in zip(data_plane.shards, state["shard_records"]):
        shard.records_received = int(count)
    for shard, count in zip(data_plane.shards, state["shard_batches"]):
        shard.batches_received = int(count)
    data_plane.sink.windows_received = int(state["sink_windows"])
    data_plane.sink.records_received = int(state["sink_records"])


def _check_resume_compatible(
    payload: Dict[str, Any], source: StreamSource, config: StreamConfig
) -> None:
    """Refuse to restore into a different workload (friendly exit-2 path)."""
    if payload.get("format") != STREAM_CHECKPOINT_FORMAT:
        raise CheckpointError(
            f"checkpoint format {payload.get('format')!r} is not a stream "
            f"session checkpoint"
        )
    saved_repr = payload.get("config_repr")
    if saved_repr != repr(config):
        raise CheckpointError(
            "checkpoint was taken under a different configuration; "
            f"saved {saved_repr!r}, resuming run has {repr(config)!r}"
        )
    saved_source = payload.get("source", {})
    current_source = _source_mapping(source)
    mismatched = sorted(
        name
        for name in current_source
        if name in saved_source and saved_source[name] != current_source[name]
    )
    if mismatched:
        raise CheckpointError(
            "checkpoint was taken over a different stream source "
            f"(mismatched: {', '.join(mismatched)})"
        )


# ----------------------------------------------------------------------
# the session driver
# ----------------------------------------------------------------------
def run_stream_session(
    source: StreamSource,
    config: Optional[StreamConfig] = None,
    checkpointer: Optional[Checkpointer] = None,
    resume_from: Optional[str] = None,
) -> StreamSessionResult:
    """Mine a stream privately, re-adapting the space when the data drifts.

    A thin wrapper over the serving layer: the arguments are lifted into a
    :class:`repro.serve.SessionSpec` (under the seed-preserving
    ``"default"`` tenant) and executed inline — bit-identical to the
    pre-serving API for any fixed seed.

    Parameters
    ----------
    source:
        The record stream (see :func:`repro.streaming.sources.make_stream`).
    config:
        Streaming knobs; defaults to :class:`StreamConfig()`.
    checkpointer:
        Optional :class:`repro.checkpoint.Checkpointer`; the session saves
        durable checkpoints at its round boundaries (and honors eviction
        requests by raising :class:`repro.checkpoint.SessionEvicted`).
    resume_from:
        Path of a checkpoint file to restore before ingesting; the session
        replays from that boundary and its result is bit-identical to
        never having stopped.
    """
    # Imported here: repro.serve sits above this module in the layering.
    from ..serve.engine import execute_spec
    from ..serve.spec import SessionSpec

    config = config if config is not None else StreamConfig()
    spec = SessionSpec.from_stream(source, config)
    return execute_spec(
        spec, source=source, checkpointer=checkpointer, resume_from=resume_from
    )


def _execute_stream_session(
    source: StreamSource,
    config: StreamConfig,
    backend: Optional[ShardBackend] = None,
    checkpointer: Optional[Checkpointer] = None,
    resume_from: Optional[str] = None,
) -> StreamSessionResult:
    """The stream session internals (see :func:`run_stream_session`).

    ``backend`` optionally points the per-round shard fan-out at an
    externally owned worker pool (the serving engine's shared one) instead
    of building a fresh pool from ``config.shard_backend``; the choice
    cannot affect results because task content and merge order never
    depend on physical placement.

    ``checkpointer``/``resume_from`` are the durability hooks (see
    :func:`run_stream_session`).  Restore is reinit-then-overwrite: the
    session initializes exactly as a fresh run — the master RNG re-draws
    the same derived seeds in the same order — and the saved state is then
    overwritten on top, so every code path below this block is oblivious
    to whether the session was ever interrupted.
    """
    restore_state: Optional[Dict[str, Any]] = None
    if resume_from is not None:
        ckpt = load_checkpoint(resume_from)
        _check_resume_compatible(ckpt.payload, source, config)
        restore_state = ckpt.payload["state"]

    master = np.random.default_rng(config.seed)

    normalizer = make_normalizer(config.normalizer)
    shard_normalizers = [
        make_normalizer(config.normalizer) for _ in range(config.shards)
    ]
    detector = make_detector(config.detector, **dict(config.detector_params))
    params = dict(config.classifier_params)
    miner_seed = int(master.integers(2**32))
    miner = make_online_classifier(config.classifier, seed=miner_seed, **params)
    baseline = make_online_classifier(config.classifier, seed=miner_seed, **params)
    # Noise is keyed by (root, window, party) rather than drawn from shared
    # sequential streams, so realizations are independent of sharding.
    noise_root = int(master.integers(2**32))

    plan = ShardPlan(
        config.shards,
        config.shard_plan,
        n_parties=config.k,
        salt=abs(int(config.seed)),
    )
    data_plane = DataPlane(
        plan,
        [config.provider_name(i) for i in range(config.k)],
        seed=int(master.integers(2**32)),
    )
    pool = ShardPool(plan, config.shard_backend if backend is None else backend)
    # Pipelined rounds: on by default whenever the executing backend can
    # actually overlap dispatches with driver work (thread/process pools,
    # including a serving engine's shared metered pool); ``overlap=False``
    # forces serial dispatch, and an inline/serial backend ignores the
    # flag because its dispatches complete at submit time anyway.
    overlap_enabled = pool.supports_overlap and config.overlap is not False
    adaptor_cache = AdaptorCache(maxsize=max(4 * config.k, 16))

    # Telemetry: counters are cheap and live whenever a bundle is present;
    # spans additionally require the tracer to be enabled.  Every call
    # site below guards on ``traced`` (or a ``None`` metric handle) so the
    # telemetry-absent hot path does no clock reads, no dict building, and
    # no formatting.
    tel = config.telemetry
    tracer = tel.tracer if tel is not None else NULL_TRACER
    traced = tracer.enabled
    if tel is not None:
        m_rounds = tel.metrics.counter(
            "repro_stream_rounds_total", "Rounds merged by stream drivers."
        )
        m_records = tel.metrics.counter(
            "repro_stream_records_total", "Records ingested by stream sessions."
        )
        m_windows = tel.metrics.counter(
            "repro_stream_windows_total", "Windows merged into session stats."
        )
        m_negotiation = tel.metrics.histogram(
            "repro_stream_negotiation_seconds",
            "Wall-clock seconds per space negotiation.",
        )
    else:
        m_rounds = m_records = m_windows = m_negotiation = None

    # The push-based ingestion surface: provider gates feed per-shard
    # window buffers and the watermark seals windows in index order.
    plane = IngestPlane(
        plan,
        window_kind=config.window_kind,
        window_size=config.window_size,
        window_step=config.window_step,
        providers=[config.provider_name(i) for i in range(config.k)],
        watermark_delay=config.watermark_delay,
        late_policy=config.late_policy,
        telemetry=tel,
    )

    trust = {party: 1.0 for party in range(config.k)}
    trust_by_window: Dict[int, List[TrustChange]] = {}
    for change in config.trust_changes:
        if not 0 <= change.party < config.k:
            raise ValueError(f"trust change names party {change.party}, k={config.k}")
        trust_by_window.setdefault(change.window, []).append(change)

    epoch: Optional[_Epoch] = None
    epoch_seq = 0
    round_seq = 0
    events: List[ReadaptationEvent] = []
    window_stats: List[StreamWindowStats] = []
    messages_total = 0
    bytes_total = 0
    correct_perturbed = 0
    correct_baseline = 0
    scored = 0
    records = 0
    last_readapt_window = -(10**9)

    if restore_state is not None:
        # Overwrite the freshly initialized session with the saved state.
        # The master RNG's derived seeds above were re-drawn identically
        # (same config seed, same draw order), so only its *position* is
        # restored here; everything else is a plain state transplant.
        state = restore_state
        restore_span = (
            tracer.span("restore", parent=tel.parent, path=resume_from)
            if traced
            else None
        )
        master.bit_generator.state = state["master_rng"]
        _restore_normalizer(normalizer, state["normalizer"])
        for shard_norm, shard_state in zip(
            shard_normalizers, state["shard_normalizers"]
        ):
            _restore_normalizer(shard_norm, shard_state)
        if state["detector_reference"] is not None:
            detector.rebase(state["detector_reference"])
        _restore_miner(miner, state["miner"])
        _restore_miner(baseline, state["baseline"])
        trust.update(
            {int(party): float(level) for party, level in state["trust"].items()}
        )
        epoch = _epoch_from_state(state["epoch"])
        for target_id, party_id, entry in state["adaptors"]:
            adaptor_cache.put(
                target_id,
                party_id,
                SpaceAdaptor(
                    rotation_adaptor=entry["rotation"],
                    translation_adaptor=entry["translation"],
                ),
            )
        _restore_ingest(plane, state["ingest"])
        _restore_data_plane(data_plane, state["data_plane"])
        epoch_seq = int(state["epoch_seq"])
        round_seq = int(state["round_seq"])
        messages_total = int(state["messages_total"])
        bytes_total = int(state["bytes_total"])
        correct_perturbed = int(state["correct_perturbed"])
        correct_baseline = int(state["correct_baseline"])
        scored = int(state["scored"])
        records = int(state["records"])
        last_readapt_window = int(state["last_readapt_window"])
        events = [ReadaptationEvent(**kwargs) for kwargs in state["events"]]
        window_stats = [
            StreamWindowStats(**kwargs) for kwargs in state["window_stats"]
        ]
        if tel is not None:
            tel.metrics.counter(
                "repro_checkpoints_total",
                "Checkpoint operations by outcome.",
                outcome="restored",
            ).inc()
        if restore_span is not None:
            restore_span.end(windows=len(window_stats), records=records)
        _LOG.info(
            "restored session from %s: %d windows, %d records",
            resume_from, len(window_stats), records,
        )

    def sigmas() -> List[float]:
        return [config.noise_sigma * (2.0 - trust[p]) for p in range(config.k)]

    def negotiate(reason: str, window_index: int, statistic: float,
                  X_normalized: Optional[np.ndarray]) -> _Epoch:
        nonlocal messages_total, bytes_total, epoch_seq
        span = (
            tracer.span(
                "renegotiate", parent=tel.parent, reason=reason,
                window=window_index,
            )
            if traced
            else None
        )
        began = time.perf_counter()
        levels = sigmas()
        target, exchange, perturbations, adaptors, n_msgs, n_bytes, virtual = (
            _negotiate(config, source.dimension, levels, master)
        )
        latency = time.perf_counter() - began
        messages_total += n_msgs
        bytes_total += n_bytes
        epoch_seq += 1
        new_epoch = _Epoch(
            epoch_id=epoch_seq,
            target=target,
            plan=exchange,
            perturbations=perturbations,
            sigmas=tuple(levels),
        )
        # The providers already derived their adaptors during the exchange;
        # cache them under the new epoch so every window (and shard task)
        # of the epoch reuses them instead of re-deriving.
        for party, adaptor in enumerate(adaptors):
            adaptor_cache.put(new_epoch.epoch_id, party, adaptor)
        guarantee = None
        if config.compute_privacy and X_normalized is not None:
            guarantee = _epoch_guarantee(
                new_epoch,
                X_normalized,
                levels,
                np.random.default_rng(int(master.integers(2**32))),
            )
        events.append(
            ReadaptationEvent(
                window=window_index,
                reason=reason,
                statistic=statistic,
                latency=latency,
                messages=n_msgs,
                bytes=n_bytes,
                virtual_duration=virtual,
                privacy_guarantee=guarantee,
            )
        )
        if span is not None:
            span.end(
                epoch=epoch_seq, messages=n_msgs, bytes=n_bytes,
                latency=latency,
            )
        if m_negotiation is not None:
            m_negotiation.observe(latency)
            tel.metrics.counter(
                "repro_stream_renegotiations_total",
                "Space negotiations by trigger.",
                reason=reason,
            ).inc()
        _LOG.info(
            "negotiated space (%s) at window %d: %.1f ms, %d msgs / %d bytes",
            reason, window_index, latency * 1000.0, n_msgs, n_bytes,
        )
        return new_epoch

    def stacked_adaptor_rotations(current: _Epoch) -> np.ndarray:
        """Per-party ``R_t R_i^{-1}`` maps, stacked ``(k, d, d)``, via cache."""
        return np.stack(
            [
                adaptor_cache.get_or_compute(
                    current.epoch_id,
                    party,
                    lambda party=party: compute_adaptor(
                        current.perturbations[party], current.target
                    ),
                ).rotation_adaptor
                for party in range(config.k)
            ]
        )

    # Rounds move through four stages.  Control runs strictly in window
    # order on the driver; dispatch/settle/merge run strictly in *round*
    # order.  The pipelined driver interleaves stages of different rounds
    # (control N+1 before settle N), which is safe because the stages
    # touch disjoint session state: control owns the normalizer, drift
    # detector, trust schedule, epoch, and master RNG; settle owns the
    # data plane and the two online models; merge owns the accuracy
    # counters and per-window stats.  Every stage's own sequence is
    # identical to unpipelined execution, so results are bit-identical.
    def control(round_windows: List[Window]) -> _Round:
        """Stage 1: per-window control-plane decisions, in window order."""
        nonlocal epoch, last_readapt_window, round_seq
        round_id = round_seq
        round_seq += 1
        if traced:
            round_span = tracer.span("round", parent=tel.parent, round=round_id)
            stage = tracer.span("control", parent=round_span, round=round_id)
        else:
            round_span = stage = None

        work: List[_WindowWork] = []
        stale_epoch_ids: List[int] = []
        for window in round_windows:
            X_fresh = window.X[-window.fresh :]
            y_fresh = window.y[-window.fresh :]

            # Normalizer state flows through the merge algebra: the
            # window's moment contribution is folded into the owner
            # shard's running state and (in window order) into the global
            # one, whose frozen snapshot the transform task will use.
            contribution = make_normalizer(config.normalizer).update(X_fresh)
            shard = plan.shard_of_window(window.index)
            shard_normalizers[shard].merge(contribution)
            normalizer.merge(contribution)
            frozen = normalizer.to_batch()
            if config.normalizer == "minmax":
                norm_a, norm_b = frozen.minimums, frozen.maximums
            else:
                norm_a, norm_b = frozen.means, frozen.stds

            def privacy_view() -> Optional[np.ndarray]:
                if not config.compute_privacy:
                    return None
                return frozen.transform(X_fresh)

            if window.revision > 0:
                # An ``upsert`` correction: this window's control decisions
                # (trust schedule, drift check, negotiation) were taken when
                # revision 0 sealed.  The late rows just flow through the
                # current epoch's transform and the miners.
                if epoch is None:
                    # Heavy skew can delay every fresh row of the first
                    # windows past the watermark, so a correction is the
                    # first emission the driver sees.  Negotiate the
                    # initial space for it; the drift reference waits for
                    # a regular window.
                    epoch = negotiate("initial", window.index, 0.0, privacy_view())
                    last_readapt_window = window.index
                work.append(
                    _WindowWork(
                        window=window,
                        X_fresh=X_fresh,
                        y_fresh=y_fresh,
                        norm_a=norm_a,
                        norm_b=norm_b,
                        epoch=epoch,
                        migration=None,
                        report=DriftReport(
                            fired=False, statistic=0.0, threshold=np.inf
                        ),
                        readapted=False,
                        shard=shard,
                    )
                )
                continue

            # ----- trust schedule (applies from this window on) ----------
            changes = trust_by_window.get(window.index, ())
            for change in changes:
                trust[change.party] = change.trust

            # ----- space (re-)negotiation --------------------------------
            migration: Optional[SpaceAdaptor] = None
            readapted = False
            # The detector's reference needs >= 2 rows; under skew a sealed
            # window can be degenerate (most of its rows arrived late and
            # fell to the late policy).  Skip the drift check for those —
            # in-order windows always carry the full window_size rows.
            window_checkable = window.n_rows >= 2
            if epoch is None:
                # A trust change scheduled at the first window is folded
                # into the initial negotiation's noise levels above.
                epoch = negotiate("initial", window.index, 0.0, privacy_view())
                last_readapt_window = window.index
                if window_checkable:
                    detector.observe(window.X)  # installs the reference
                report = DriftReport(fired=False, statistic=0.0, threshold=np.inf)
            else:
                if changes:
                    old_epoch = epoch
                    epoch = negotiate("trust", window.index, 0.0, privacy_view())
                    migration = compute_adaptor(old_epoch.target, epoch.target)
                    stale_epoch_ids.append(old_epoch.epoch_id)
                    last_readapt_window = window.index
                    readapted = True
                report = (
                    detector.observe(window.X)
                    if window_checkable
                    else DriftReport(fired=False, statistic=0.0, threshold=np.inf)
                )
                cooled = (
                    window.index - last_readapt_window >= config.readapt_cooldown
                )
                if report.fired and cooled and not readapted:
                    old_epoch = epoch
                    epoch = negotiate(
                        "drift", window.index, report.statistic, privacy_view()
                    )
                    migration = compute_adaptor(old_epoch.target, epoch.target)
                    stale_epoch_ids.append(old_epoch.epoch_id)
                    detector.rebase(window.X)
                    last_readapt_window = window.index
                    readapted = True
                elif report.fired and readapted:
                    # Trust already renegotiated this window; just rebase.
                    detector.rebase(window.X)

            work.append(
                _WindowWork(
                    window=window,
                    X_fresh=X_fresh,
                    y_fresh=y_fresh,
                    norm_a=norm_a,
                    norm_b=norm_b,
                    epoch=epoch,
                    migration=migration,
                    report=report,
                    readapted=readapted,
                    shard=shard,
                )
            )
        if stage is not None:
            stage.end(windows=len(work), renegotiations=len(stale_epoch_ids))
        return _Round(
            work=work,
            stale_epoch_ids=stale_epoch_ids,
            round_id=round_id,
            span=round_span,
        )

    def dispatch(current: _Round) -> None:
        """Stage 2: fan the round's transforms out across the pool."""
        stage = (
            tracer.span("dispatch", parent=current.span, round=current.round_id)
            if traced
            else None
        )
        work = current.work
        round_epochs = {item.epoch.epoch_id: item.epoch for item in work}
        stacks = {
            epoch_id: stacked_adaptor_rotations(round_epoch)
            for epoch_id, round_epoch in round_epochs.items()
        }
        # Re-negotiation invalidation is deferred to here: windows earlier
        # in the round still belong to the replaced epoch, and their stack
        # must come from the cache, not a re-derivation.  The pipelined
        # driver drains in-flight rounds *before* this point (the drain
        # rule), so no dispatched transform ever references a stack built
        # against an epoch invalidated here.
        for epoch_id in current.stale_epoch_ids:
            adaptor_cache.invalidate(target_id=epoch_id)
        tasks = [
            {
                "X": item.X_fresh,
                "norm_kind": config.normalizer,
                "norm_a": item.norm_a,
                "norm_b": item.norm_b,
                "rotation": item.epoch.target.rotation,
                "translation": item.epoch.target.translation,
                "adaptor_rotations": stacks[item.epoch.epoch_id],
                "sigmas": np.asarray(item.epoch.sigmas),
                "noise_root": noise_root,
                "window_index": item.window.index,
                "revision": item.window.revision,
            }
            for item in work
        ]
        current.transforms = pool.submit_map(transform_window, tasks)
        live_rounds.append(current)
        if stage is not None:
            stage.end(tasks=len(tasks))

    def settle(current: _Round) -> None:
        """Stages 2b/3: gather transforms, charge the network, update models."""
        stage = (
            tracer.span("settle", parent=current.span, round=current.round_id)
            if traced
            else None
        )
        work = current.work
        assert current.transforms is not None
        for item, result in zip(work, current.transforms.gather()):
            item.X_norm = result["X_norm"]
            item.X_target = result["X_target"]

        # ----- stage 2b: charge the data movement to the network ---------
        for item in work:
            parties = np.arange(item.X_fresh.shape[0]) % config.k
            slices = [
                item.X_target[parties == party] for party in range(config.k)
            ]
            data_plane.route_window(item.window.index, slices, item.X_target)
        data_plane.flush()

        # ----- stage 3: sequential model bookkeeping + snapshots ---------
        predict_tasks = []
        for item in work:
            if item.migration is not None:
                miner.adapt_space(item.migration)
            predict_tasks.append(
                {"state": miner.export_predict_state(), "X": item.X_target}
            )
            predict_tasks.append(
                {"state": baseline.export_predict_state(), "X": item.X_norm}
            )
            miner.partial_fit(item.X_target, item.y_fresh)
            baseline.partial_fit(item.X_norm, item.y_fresh)

        # ----- stage 4: prequential predictions fan out ------------------
        current.predictions = pool.submit_map(predict_window, predict_tasks)
        if stage is not None:
            stage.end(windows=len(work))

    def merge(current: _Round) -> None:
        """Stage 5: gather predictions and merge stats, in window order."""
        nonlocal correct_perturbed, correct_baseline, scored
        stage = (
            tracer.span("merge", parent=current.span, round=current.round_id)
            if traced
            else None
        )
        assert current.predictions is not None
        predictions = current.predictions.gather()
        live_rounds.remove(current)
        for index, item in enumerate(current.work):
            pred_perturbed = predictions[2 * index]
            pred_baseline = predictions[2 * index + 1]
            acc_perturbed = accuracy_score(item.y_fresh, pred_perturbed)
            acc_baseline = accuracy_score(item.y_fresh, pred_baseline)
            correct_perturbed += int(round(acc_perturbed * item.window.fresh))
            correct_baseline += int(round(acc_baseline * item.window.fresh))
            scored += item.window.fresh
            window_stats.append(
                StreamWindowStats(
                    index=item.window.index,
                    n_records=item.window.fresh,
                    accuracy_perturbed=acc_perturbed,
                    accuracy_baseline=acc_baseline,
                    drift_statistic=item.report.statistic,
                    drift_kind=item.report.kind,
                    readapted=item.readapted,
                    revision=item.window.revision,
                )
            )
        if stage is not None:
            stage.end(windows=len(current.work))
        if current.span is not None:
            current.span.end(windows=len(current.work))
        if m_rounds is not None:
            m_rounds.inc()
            m_windows.inc(len(current.work))

    # ----- the (double-buffered) round pipeline ------------------------
    # ``inflight`` has its transforms dispatched and awaits settling;
    # ``scoring`` is settled and awaits its prediction merge.  At steady
    # state the pool holds round N+1's transforms *and* round N's
    # predictions while the driver ingests records and runs round N+2's
    # control plane — the overlap that hides driver latency.  Gathering
    # always happens in strict round order, so merge order, the
    # normalizer merge algebra, noise keying, and re-negotiation points
    # are untouched and results stay bit-identical to serial dispatch.
    live_rounds: List[_Round] = []
    inflight: Optional[_Round] = None
    scoring: Optional[_Round] = None

    def drain() -> None:
        """Finish every in-flight round, oldest first."""
        nonlocal inflight, scoring
        if scoring is None and inflight is None:
            return
        span = tracer.span("drain", parent=tel.parent) if traced else None
        drained = 0
        if scoring is not None:
            merge(scoring)
            scoring = None
            drained += 1
        if inflight is not None:
            settle(inflight)
            merge(inflight)
            inflight = None
            drained += 1
        if span is not None:
            span.end(rounds=drained)

    def feed(round_windows: List[Window]) -> None:
        """Push one sealed round of windows into the pipeline."""
        nonlocal inflight, scoring
        current = control(round_windows)
        if current.stale_epoch_ids:
            # The re-negotiation drain rule: a round that replaced the
            # epoch finishes everything still in flight *before* its
            # dispatch invalidates the stale epoch's cached adaptors —
            # no transform ever executes against a replaced space's
            # speculative state.
            drain()
        dispatch(current)
        if not overlap_enabled:
            settle(current)
            merge(current)
            return
        if scoring is not None:
            merge(scoring)
            scoring = None
        if inflight is not None:
            settle(inflight)
            scoring = inflight
        inflight = current

    def abort() -> None:
        """Cancel whatever is still in flight (no-op after a clean drain)."""
        for stale in list(live_rounds):
            for handle in (stale.transforms, stale.predictions):
                if handle is not None:
                    handle.cancel()
            live_rounds.remove(stale)

    def checkpoint_payload() -> Dict[str, Any]:
        """Capture the session's full mutable surface (drained pipeline).

        Only valid at a round boundary after :func:`drain` — with rounds
        in flight, part of the state below would still be speculative.
        """
        return {
            "format": STREAM_CHECKPOINT_FORMAT,
            "config": stream_config_mapping(config),
            "config_repr": repr(config),
            "source": _source_mapping(source),
            "progress": {
                "records": records,
                "windows": len(window_stats),
                "epochs": epoch_seq,
            },
            "state": {
                "master_rng": master.bit_generator.state,
                "normalizer": _normalizer_state(normalizer),
                "shard_normalizers": [
                    _normalizer_state(n) for n in shard_normalizers
                ],
                "detector_reference": (
                    None
                    if detector._reference is None
                    else detector._reference.copy()
                ),
                "miner": _miner_state(miner),
                "baseline": _miner_state(baseline),
                "trust": dict(trust),
                "epoch": _epoch_state(epoch),
                "adaptors": [
                    (
                        target_id,
                        party_id,
                        {
                            "rotation": adaptor.rotation_adaptor,
                            "translation": adaptor.translation_adaptor,
                        },
                    )
                    for target_id, party_id, adaptor in adaptor_cache.snapshot()
                ],
                "ingest": _ingest_state(plane),
                "data_plane": _data_plane_state(data_plane),
                "epoch_seq": epoch_seq,
                "round_seq": round_seq,
                "messages_total": messages_total,
                "bytes_total": bytes_total,
                "correct_perturbed": correct_perturbed,
                "correct_baseline": correct_baseline,
                "scored": scored,
                "records": records,
                "last_readapt_window": last_readapt_window,
                "events": [
                    {
                        "window": int(e.window),
                        "reason": e.reason,
                        "statistic": float(e.statistic),
                        "latency": float(e.latency),
                        "messages": int(e.messages),
                        "bytes": int(e.bytes),
                        "virtual_duration": float(e.virtual_duration),
                        "privacy_guarantee": (
                            None
                            if e.privacy_guarantee is None
                            else float(e.privacy_guarantee)
                        ),
                    }
                    for e in events
                ],
                "window_stats": [
                    {
                        "index": int(w.index),
                        "n_records": int(w.n_records),
                        "accuracy_perturbed": float(w.accuracy_perturbed),
                        "accuracy_baseline": float(w.accuracy_baseline),
                        "drift_statistic": float(w.drift_statistic),
                        "drift_kind": w.drift_kind,
                        "readapted": bool(w.readapted),
                        "revision": int(w.revision),
                    }
                    for w in window_stats
                ],
            },
        }

    start = time.perf_counter()
    try:
        pending: List[Window] = []
        # Providers push records through their gates; the driver no longer
        # pulls into a global buffer.  ``skew`` simulates an out-of-order
        # transport, deterministically under the session seed.
        arrivals = (
            skewed(source, config.skew, seed=config.seed)
            if config.skew
            else source
        )
        if records:
            # Resuming: the source (and the skew shuffler) regenerate the
            # same arrival order from their seeds, so skipping the already
            # ingested prefix replays the stream from the exact record the
            # checkpoint stopped at.
            arrivals = itertools.islice(arrivals, records, None)
        # Checkpoint progress is measured in windows *fed* to the pipeline
        # (``window_stats`` lags while rounds are in flight); after the
        # pre-checkpoint drain the two counts coincide.
        windows_fed = len(window_stats)
        for record in arrivals:
            records += 1
            pending.extend(plane.push(record))
            if len(pending) >= config.shards:
                windows_fed += len(pending)
                feed(pending)
                pending = []
                if checkpointer is not None and checkpointer.due(windows_fed):
                    # Draining first is what makes a checkpoint a clean
                    # round boundary; it only changes execution overlap,
                    # never merge order, so taking one cannot perturb the
                    # session fingerprint.
                    drain()
                    path = checkpointer.save(checkpoint_payload())
                    if checkpointer.evict_requested:
                        raise SessionEvicted(path, len(window_stats), records)
        # The legacy driver never flushed its buffer, so a stream whose
        # length is not a multiple of the window size dropped the partial
        # remainder.  Keep that behavior (it is what the pre-redesign
        # fingerprints pin) — except rows *readmitted* into the tail,
        # which the readmit policy promises never to lose.
        pending.extend(plane.finish(emit_partial_tail=False))
        if pending:
            feed(pending)
        drain()
    finally:
        abort()
        pool.close()
    wall = time.perf_counter() - start
    if m_records is not None:
        m_records.inc(records)

    # Invariant of the merge algebra: folding the per-shard normalizer
    # states together (fixed shard order) must reproduce the unsharded
    # state — exactly for min/max bounds, to fp rounding for Welford
    # moments (shard order vs window order merge).
    if normalizer.n_seen:
        merged = make_normalizer(config.normalizer)
        for shard_state in shard_normalizers:
            merged.merge(shard_state)
        consistent = merged.n_seen == normalizer.n_seen
        if consistent and config.normalizer == "minmax":
            consistent = np.array_equal(
                merged.minimums, normalizer.minimums
            ) and np.array_equal(merged.maximums, normalizer.maximums)
        elif consistent:
            consistent = np.allclose(
                merged.means, normalizer.means, rtol=1e-8, atol=1e-12
            )
        if not consistent:
            raise RuntimeError(
                "per-shard normalizer states diverged from the unsharded state"
            )

    return StreamSessionResult(
        config=config,
        source_name=source.name,
        source_kind=source.kind,
        records_processed=records,
        windows=window_stats,
        events=events,
        accuracy_perturbed=correct_perturbed / scored if scored else 0.0,
        accuracy_baseline=correct_baseline / scored if scored else 0.0,
        wall_seconds=wall,
        messages_sent=messages_total,
        bytes_sent=bytes_total,
        data_messages_sent=data_plane.messages_sent,
        data_bytes_sent=data_plane.bytes_sent,
        shard_records=tuple(data_plane.shard_records),
        ingest=plane.stats(),
        provider_records=tuple(data_plane.provider_records),
        overlap=overlap_enabled,
    )
