"""Distribution-drift detection over windowed streams.

When the providers' data distribution shifts, the negotiated perturbed
space goes stale in two ways: the agreed normalization bounds stop
matching the data, and the privacy guarantee — evaluated against the old
distribution — no longer describes what an attacker actually sees.  The
stream session therefore watches each window and *re-adapts the space*
(new target rotation, re-drawn exchange plan, refreshed guarantee) when a
detector fires.

Two detectors, both reference-window based:

* :class:`MeanVarianceDetector` — fires when any column's window mean
  moves more than ``mean_threshold`` reference standard deviations, or any
  column's variance changes by more than ``var_log_threshold`` in log
  space.  Cheap, robust, and the session default.
* :class:`KSDetector` — per-column two-sample Kolmogorov–Smirnov statistic
  against the reference window, thresholded at the classical critical
  value ``c(alpha) * sqrt((n + m) / (n m))``.  Distribution-shape aware;
  ``alpha`` defaults conservatively because every window tests every
  column.

After a re-adaptation the session calls :meth:`DriftDetector.rebase` with
the triggering window, making the post-drift distribution the new
reference.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = [
    "DETECTOR_KINDS",
    "DriftReport",
    "DriftDetector",
    "MeanVarianceDetector",
    "KSDetector",
    "make_detector",
]

#: names accepted by :func:`make_detector`
DETECTOR_KINDS = ("meanvar", "ks")


@dataclass(frozen=True)
class DriftReport:
    """Outcome of checking one window against the reference.

    Attributes
    ----------
    fired:
        Whether the statistic crossed the threshold.
    statistic / threshold:
        The worst (largest) per-column statistic and the bar it was held to.
    column:
        Index of the worst column (``None`` while the detector is still
        building its reference).
    kind:
        Which criterion produced the statistic (``"mean"``, ``"variance"``
        or ``"ks"``).
    """

    fired: bool
    statistic: float
    threshold: float
    column: Optional[int] = None
    kind: str = "none"


class DriftDetector(abc.ABC):
    """Base class: first observed window becomes the reference."""

    def __init__(self) -> None:
        self._reference: Optional[np.ndarray] = None

    @property
    def has_reference(self) -> bool:
        """Whether a reference window has been installed yet."""
        return self._reference is not None

    def observe(self, X: np.ndarray) -> DriftReport:
        """Check one window (rows ``(n, d)``) against the reference.

        The first window observed installs the reference and never fires.
        """
        X = np.asarray(X, dtype=float)
        if X.ndim != 2:
            raise ValueError("window must be 2-D")
        if self._reference is None:
            self.rebase(X)
            return DriftReport(fired=False, statistic=0.0, threshold=np.inf)
        if X.shape[1] != self._reference.shape[1]:
            raise ValueError(
                f"window has {X.shape[1]} columns, reference has "
                f"{self._reference.shape[1]}"
            )
        return self._compare(X)

    def rebase(self, X: np.ndarray) -> None:
        """Install ``X`` as the new reference (called after re-adaptation)."""
        X = np.asarray(X, dtype=float)
        if X.ndim != 2 or X.shape[0] < 2:
            raise ValueError("reference window needs at least 2 rows")
        self._reference = X.copy()
        self._on_rebase()

    # ------------------------------------------------------------------
    # subclass hooks
    # ------------------------------------------------------------------
    def _on_rebase(self) -> None:
        """Optional cache refresh when the reference changes."""

    @abc.abstractmethod
    def _compare(self, X: np.ndarray) -> DriftReport:
        """Produce the report for one non-reference window."""


class MeanVarianceDetector(DriftDetector):
    """Mean-shift (in reference-sigma units) and variance-ratio detector.

    Parameters
    ----------
    mean_threshold:
        Fire when any column mean moves by more than this many reference
        standard deviations.  On class-mixture data the between-window
        fluctuation has a class-composition component on top of the
        ``sigma / sqrt(n)`` sampling error; the default (0.8) sits safely
        above both on 64-row windows of the registry datasets while a
        1.5-sigma abrupt shift still fires on its first window.
    var_log_threshold:
        Fire when ``|log(var_window / var_ref)|`` exceeds this for any
        column (default ``log 4``: variance quadrupled or quartered —
        scale-only drift; mean shift is the primary trigger).
    """

    def __init__(
        self, mean_threshold: float = 0.8, var_log_threshold: float = float(np.log(4.0))
    ) -> None:
        super().__init__()
        if mean_threshold <= 0 or var_log_threshold <= 0:
            raise ValueError("thresholds must be positive")
        self.mean_threshold = mean_threshold
        self.var_log_threshold = var_log_threshold
        self._ref_mean: Optional[np.ndarray] = None
        self._ref_std: Optional[np.ndarray] = None
        self._ref_var: Optional[np.ndarray] = None
        self._ref_var_is_zero: Optional[np.ndarray] = None

    def _on_rebase(self) -> None:
        self._ref_mean = self._reference.mean(axis=0)
        std = self._reference.std(axis=0)
        self._ref_std = np.where(std > 0, std, 1.0)
        var = std**2
        self._ref_var_is_zero = var == 0
        self._ref_var = np.where(var > 0, var, 1.0)

    def _compare(self, X: np.ndarray) -> DriftReport:
        mean_stat = np.abs(X.mean(axis=0) - self._ref_mean) / self._ref_std
        var = X.var(axis=0)
        # A window variance of zero means either "still the constant column
        # it always was" (ratio 1, no drift) or — when the reference did
        # vary — a total collapse, the most extreme scale drift there is.
        collapsed = self._ref_var * np.exp(-2.0 * self.var_log_threshold)
        var_effective = np.where(
            var > 0, var, np.where(self._ref_var_is_zero, self._ref_var, collapsed)
        )
        var_stat = np.abs(np.log(var_effective / self._ref_var))

        mean_col = int(np.argmax(mean_stat))
        var_col = int(np.argmax(var_stat))
        mean_excess = mean_stat[mean_col] / self.mean_threshold
        var_excess = var_stat[var_col] / self.var_log_threshold
        if mean_excess >= var_excess:
            return DriftReport(
                fired=bool(mean_excess >= 1.0),
                statistic=float(mean_stat[mean_col]),
                threshold=self.mean_threshold,
                column=mean_col,
                kind="mean",
            )
        return DriftReport(
            fired=bool(var_excess >= 1.0),
            statistic=float(var_stat[var_col]),
            threshold=self.var_log_threshold,
            column=var_col,
            kind="variance",
        )


class KSDetector(DriftDetector):
    """Windowed two-sample Kolmogorov–Smirnov detector.

    Computes the per-column sup-distance between the empirical CDFs of the
    window and the reference; fires when the worst column exceeds the
    critical value ``c(alpha) * sqrt((n + m) / (n m))``.

    Parameters
    ----------
    alpha:
        Per-test significance level.  The default (0.001) is deliberately
        strict: a session tests every column of every window, so a
        textbook 0.05 would false-fire constantly.
    """

    _C_ALPHA = {0.10: 1.22, 0.05: 1.36, 0.01: 1.63, 0.005: 1.73, 0.001: 1.95}

    def __init__(self, alpha: float = 0.001) -> None:
        super().__init__()
        if alpha not in self._C_ALPHA:
            raise ValueError(
                f"alpha must be one of {sorted(self._C_ALPHA)}, got {alpha}"
            )
        self.alpha = alpha

    @staticmethod
    def ks_statistic(a: np.ndarray, b: np.ndarray) -> float:
        """Two-sample KS sup-distance between 1-D samples ``a`` and ``b``."""
        a = np.sort(np.asarray(a, dtype=float))
        b = np.sort(np.asarray(b, dtype=float))
        grid = np.concatenate([a, b])
        cdf_a = np.searchsorted(a, grid, side="right") / a.size
        cdf_b = np.searchsorted(b, grid, side="right") / b.size
        return float(np.abs(cdf_a - cdf_b).max())

    def _compare(self, X: np.ndarray) -> DriftReport:
        n, m = X.shape[0], self._reference.shape[0]
        threshold = self._C_ALPHA[self.alpha] * np.sqrt((n + m) / (n * m))
        stats = np.array(
            [
                self.ks_statistic(X[:, j], self._reference[:, j])
                for j in range(X.shape[1])
            ]
        )
        worst = int(np.argmax(stats))
        return DriftReport(
            fired=bool(stats[worst] > threshold),
            statistic=float(stats[worst]),
            threshold=float(threshold),
            column=worst,
            kind="ks",
        )


def make_detector(kind: str, **params) -> DriftDetector:
    """Factory keyed by detector name (``"meanvar"`` or ``"ks"``)."""
    if kind == "meanvar":
        return MeanVarianceDetector(**params)
    if kind == "ks":
        return KSDetector(**params)
    raise ValueError(f"unknown detector kind {kind!r}; use 'meanvar' or 'ks'")
