"""Event-time ingestion plane: provider gates, per-shard buffers, watermarks.

The original streaming pipeline *pulled* records through one driver-side
:class:`~repro.streaming.windows.WindowBuffer` that sealed windows by
arrival count — fine for an in-order simulation, but structurally unable
to model what the paper's multiparty deployment actually looks like: each
data provider *pushes* its own records, providers run at skewed rates, and
the network delivers out of order.  This module inverts that control flow:

* a :class:`ProviderGate` is one provider's ingestion endpoint — it
  stamps/attributes incoming records and tracks per-provider counters
  (records, observed lateness, late/dropped/readmitted/upserted);
* a :class:`ShardIngest` is one logical shard's buffer of *open* windows,
  holding the rows of every window the :class:`~repro.sharding.ShardPlan`
  assigns to that shard (the record-granular ingestion the ROADMAP asks
  for — batches accumulate where the window will be processed);
* the :class:`IngestPlane` owns both, maintains the **arrival frontier**
  (largest sequence number seen) and the **watermark**
  ``frontier - watermark_delay``, and *seals* a window the moment the
  watermark passes its last sequence number.  Regular (``revision == 0``)
  windows come out in strictly increasing index order regardless of the
  shard count, plan, or arrival interleaving — the determinism contract
  the session driver's window-ordered control plane relies on.  (Under
  ``upsert``, correction windows necessarily re-emit *earlier* indices
  after later ones sealed — each index's revisions are increasing, but
  the global emission order is only monotone per revision stream.)

Window membership is pure sequence arithmetic
(:class:`~repro.streaming.windows.EventWindowAssigner`), so a window's
contents depend only on the *event* stream: an out-of-order arrival order
whose observed lateness never exceeds ``watermark_delay`` seals exactly
the windows the sorted stream would — the bounded-lateness guarantee the
acceptance tests pin.  Records that do arrive after their window sealed
are handled by one of three late policies (:data:`LATE_POLICIES`):

* ``drop``    — never score the record as fresh, counting it per
  provider (with sliding windows it still lands as stale context in any
  open overlapping window, like every non-fresh row);
* ``readmit`` — append it to the oldest still-open window as an extra
  fresh row: no record is ever lost, at the cost of it being mined in a
  later window than it belongs to;
* ``upsert``  — re-emit it in a *correction window* carrying the original
  window index and ``revision >= 1``, so downstream consumers can patch
  the already-consumed window (the miner trains on the late rows, the
  normalizer absorbs them, accounting charges them).

With an in-order stream and ``watermark_delay=0`` the plane reproduces the
legacy buffers' windows bit-for-bit, which is how the whole redesign stays
fingerprint-compatible.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..obs import ingest_collector
from ..sharding.plan import ShardPlan
from .sources import StreamRecord
from .windows import EventWindowAssigner, Window

__all__ = [
    "LATE_POLICIES",
    "ProviderGate",
    "ShardIngest",
    "IngestStats",
    "IngestPlane",
]

#: what to do with a record that arrives after its window sealed
LATE_POLICIES = ("drop", "readmit", "upsert")

#: one buffered row: (seq, x, y, event_time)
_Row = Tuple[int, np.ndarray, Any, float]


@dataclass
class ProviderGate:
    """One data provider's ingestion endpoint and its counters.

    ``max_skew`` is the largest observed lateness — how far behind the
    arrival frontier a record of this provider ever arrived — which is
    the number an operator compares against ``watermark_delay`` to size
    the watermark for a deployment.
    """

    provider: int
    name: str
    records: int = 0
    late: int = 0
    dropped: int = 0
    readmitted: int = 0
    upserted: int = 0
    max_skew: int = 0

    def observe(self, lateness: int) -> None:
        """Count one arrival with the given observed lateness."""
        self.records += 1
        if lateness > self.max_skew:
            self.max_skew = lateness

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly per-provider counter view."""
        return {
            "provider": self.provider,
            "name": self.name,
            "records": self.records,
            "late": self.late,
            "dropped": self.dropped,
            "readmitted": self.readmitted,
            "upserted": self.upserted,
            "max_skew": self.max_skew,
        }


@dataclass(frozen=True)
class IngestStats:
    """Frozen snapshot of the plane's ingestion counters.

    ``providers`` holds one :class:`ProviderGate` snapshot per provider;
    the scalar fields are the totals over all of them.
    """

    providers: Tuple[ProviderGate, ...]
    records: int
    late: int
    dropped: int
    readmitted: int
    upserted: int
    max_skew: int

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly view (``repro stream --json``'s ``ingest`` block)."""
        return {
            "records": self.records,
            "late": self.late,
            "dropped": self.dropped,
            "readmitted": self.readmitted,
            "upserted": self.upserted,
            "max_skew": self.max_skew,
            "providers": [gate.to_dict() for gate in self.providers],
        }


class _OpenWindow:
    """One not-yet-sealed window's accumulating rows."""

    __slots__ = ("rows", "readmitted")

    def __init__(self) -> None:
        self.rows: List[_Row] = []
        self.readmitted: List[_Row] = []


class ShardIngest:
    """One logical shard's buffer of open windows.

    Rows accumulate exactly where the :class:`~repro.sharding.ShardPlan`
    says the window will be processed; the plane seals windows in index
    order, so the union of all shards' sealed output is independent of
    how many shards the rows were spread over.
    """

    def __init__(self, index: int) -> None:
        self.index = index
        self.open: Dict[int, _OpenWindow] = {}

    def insert(self, window_index: int, row: _Row, readmitted: bool = False) -> None:
        """Buffer one row for an open window this shard owns."""
        bucket = self.open.get(window_index)
        if bucket is None:
            bucket = self.open[window_index] = _OpenWindow()
        (bucket.readmitted if readmitted else bucket.rows).append(row)

    def pop(self, window_index: int) -> Optional[_OpenWindow]:
        """Remove and return the window's buffered rows (None if empty)."""
        return self.open.pop(window_index, None)


class IngestPlane:
    """The push-based, watermark-sealed ingestion surface.

    Parameters
    ----------
    plan:
        Shard assignment; window ``w``'s rows buffer on
        ``plan.shard_of_window(w)``.
    window_kind / window_size / window_step:
        The windowing policy, interpreted in event (sequence) space by an
        :class:`~repro.streaming.windows.EventWindowAssigner`.
    providers:
        Provider display names; their count ``k`` also drives the default
        round-robin attribution ``seq % k`` for records that do not name
        a provider.
    watermark_delay:
        How many sequence numbers the watermark trails the arrival
        frontier.  ``0`` seals a window as soon as any later record
        arrives (the in-order-compatible setting); a delay of ``s``
        tolerates any arrival order with observed lateness ``<= s``
        without a single late record.
    late_policy:
        One of :data:`LATE_POLICIES`.
    telemetry:
        Optional :class:`repro.obs.Telemetry` bundle.  When present, the
        plane registers a snapshot-time collector publishing its counters
        (the public ``stats()`` dict is untouched) and — if the tracer is
        enabled — emits one ``seal`` span per built window, carrying the
        window index/revision, row counts, the watermark lag at seal
        time, and the cumulative late-record count.
    """

    def __init__(
        self,
        plan: ShardPlan,
        window_kind: str,
        window_size: int,
        window_step: Optional[int] = None,
        providers: Sequence[str] = ("provider-0", "provider-1"),
        watermark_delay: int = 0,
        late_policy: str = "drop",
        telemetry: Optional[Any] = None,
    ) -> None:
        if watermark_delay < 0:
            raise ValueError(f"watermark_delay must be >= 0, got {watermark_delay}")
        if late_policy not in LATE_POLICIES:
            raise ValueError(
                f"unknown late policy {late_policy!r}; available: "
                f"{', '.join(LATE_POLICIES)}"
            )
        if not providers:
            raise ValueError("at least one provider is required")
        self.plan = plan
        self.assigner = EventWindowAssigner(window_kind, window_size, window_step)
        self.gates = [
            ProviderGate(provider=index, name=str(name))
            for index, name in enumerate(providers)
        ]
        self.shards = [ShardIngest(index) for index in range(plan.n_shards)]
        self.watermark_delay = watermark_delay
        self.late_policy = late_policy
        self.frontier = -1
        self.next_seal = 0
        self._next_seq = 0
        self._corrections: Dict[int, List[_Row]] = {}
        self._revisions: Dict[int, int] = {}
        self._finished = False
        self._telemetry = telemetry
        self._m_sealed = None
        if telemetry is not None:
            telemetry.metrics.register_collector(ingest_collector(self))
            self._m_sealed = telemetry.metrics.counter(
                "repro_ingest_windows_sealed_total",
                "Windows sealed by the ingest watermark (corrections included).",
            )

    # ------------------------------------------------------------------
    # derived state
    # ------------------------------------------------------------------
    @property
    def k(self) -> int:
        """Number of provider gates."""
        return len(self.gates)

    @property
    def watermark(self) -> int:
        """Largest sequence number that is *definitely complete*.

        Windows whose last sequence number is strictly below the
        watermark are sealed; records at or above it may still arrive.
        """
        return self.frontier - self.watermark_delay

    @property
    def open_windows(self) -> int:
        """Windows currently buffering rows across all shards."""
        return sum(len(shard.open) for shard in self.shards)

    def stats(self) -> IngestStats:
        """Snapshot of the per-provider and total ingestion counters."""
        return IngestStats(
            providers=tuple(replace(gate) for gate in self.gates),
            records=sum(g.records for g in self.gates),
            late=sum(g.late for g in self.gates),
            dropped=sum(g.dropped for g in self.gates),
            readmitted=sum(g.readmitted for g in self.gates),
            upserted=sum(g.upserted for g in self.gates),
            max_skew=max((g.max_skew for g in self.gates), default=0),
        )

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------
    def push(self, record: StreamRecord) -> List[Window]:
        """Ingest one record through its provider gate.

        Returns the windows the arrival sealed (often none, sometimes
        several).  Regular windows appear in strictly increasing index
        order; under ``upsert`` a correction (``revision >= 1``) for an
        earlier index may precede them in the same batch.
        """
        if self._finished:
            raise RuntimeError("ingest plane already finished")
        seq = record.seq if record.seq >= 0 else self._next_seq
        provider = record.provider if record.provider >= 0 else seq % self.k
        if not 0 <= provider < self.k:
            raise ValueError(
                f"record names provider {provider}, but only {self.k} "
                f"gates exist"
            )
        gate = self.gates[provider]
        gate.observe(max(0, self.frontier - seq))

        row: _Row = (
            seq,
            np.asarray(record.x, dtype=float).ravel(),
            record.y,
            float(record.time),
        )
        home = self.assigner.fresh_home(seq)
        skip = -1
        if home < self.next_seal:
            # The window where this record would have been fresh is gone.
            gate.late += 1
            if self.late_policy == "drop":
                gate.dropped += 1
            elif self.late_policy == "readmit":
                gate.readmitted += 1
                owner = self.plan.shard_of_window(self.next_seal)
                self.shards[owner].insert(self.next_seal, row, readmitted=True)
                skip = self.next_seal  # the readmitted copy is already there
            else:  # upsert
                gate.upserted += 1
                self._corrections.setdefault(home, []).append(row)
        # Fresh or late, the record is still a member of every open window
        # that overlaps its sequence number (sliding windows with
        # step < size): insert it there so window contents keep matching
        # the sorted event stream even when the fresh emission was missed.
        for index in self.assigner.windows_of_seq(seq):
            if index >= self.next_seal and index != skip:
                owner = self.plan.shard_of_window(index)
                self.shards[owner].insert(index, row)

        if seq > self.frontier:
            self.frontier = seq
        if seq >= self._next_seq:
            self._next_seq = seq + 1
        return self._seal_ready()

    def finish(self, emit_partial_tail: bool = True) -> List[Window]:
        """Seal everything still open: the stream is over.

        Seals every fully-covered window and flushes pending corrections.
        The trailing *partial* window (one the event stream never filled)
        is emitted if it has fresh rows — matching the legacy buffers'
        ``flush`` — unless ``emit_partial_tail`` is false, in which case
        its in-order remainder is discarded the way the legacy *session*
        discarded it (the driver never called ``flush``); rows readmitted
        into the tail are still emitted then, so ``readmit`` loses
        nothing.  Rows belonging only to windows beyond the tail are
        discarded, as the legacy sliding buffer discards its overlap
        remainder.
        """
        if self._finished:
            return []
        self._finished = True
        sealed: List[Window] = []
        while self.assigner.last_seq(self.next_seal) <= self.frontier:
            sealed.extend(self._flush_corrections())
            window = self._seal(self.next_seal)
            self.next_seal += 1
            if window is not None:
                sealed.append(window)
        sealed.extend(self._flush_corrections())
        tail = self._seal(self.next_seal, readmitted_only=not emit_partial_tail)
        self.next_seal += 1
        if tail is not None:
            sealed.append(tail)
        for shard in self.shards:
            shard.open.clear()
        return sealed

    # ------------------------------------------------------------------
    # sealing
    # ------------------------------------------------------------------
    def _seal_ready(self) -> List[Window]:
        """Seal every window the watermark has passed, in index order."""
        sealed: List[Window] = []
        while self.watermark > self.assigner.last_seq(self.next_seal):
            sealed.extend(self._flush_corrections())
            window = self._seal(self.next_seal)
            self.next_seal += 1
            if window is not None:
                sealed.append(window)
        return sealed

    def _seal(self, index: int, readmitted_only: bool = False) -> Optional[Window]:
        """Build window ``index`` from its owner shard's buffered rows.

        Rows are ordered by sequence number with readmitted rows (which
        carry older sequence numbers by construction) appended at the
        end, so the fresh region stays a row suffix.  Returns ``None``
        when the window has no fresh rows to contribute.  With
        ``readmitted_only`` the window's in-order rows are discarded and
        only readmitted rows (if any) are emitted — the partial-tail
        treatment of ``finish(emit_partial_tail=False)``.
        """
        owner = self.plan.shard_of_window(index)
        bucket = self.shards[owner].pop(index)
        if bucket is None:
            return None
        readmitted = sorted(bucket.readmitted, key=lambda row: row[0])
        if readmitted_only:
            if not readmitted:
                return None
            return self._build(index, readmitted, len(readmitted), revision=0)
        rows = sorted(bucket.rows, key=lambda row: row[0])
        fresh_start = self.assigner.fresh_start(index)
        fresh = sum(1 for row in rows if row[0] >= fresh_start) + len(readmitted)
        if fresh == 0:
            return None
        return self._build(index, rows + readmitted, fresh, revision=0)

    def _flush_corrections(self) -> List[Window]:
        """Emit pending ``upsert`` corrections, oldest window first."""
        if not self._corrections:
            return []
        out: List[Window] = []
        for index in sorted(self._corrections):
            rows = sorted(self._corrections.pop(index), key=lambda row: row[0])
            revision = self._revisions.get(index, 0) + 1
            self._revisions[index] = revision
            out.append(self._build(index, rows, len(rows), revision=revision))
        return out

    def _build(
        self, index: int, rows: List[_Row], fresh: int, revision: int
    ) -> Window:
        tel = self._telemetry
        if tel is not None:
            self._m_sealed.inc()
            if tel.enabled:
                tel.tracer.span(
                    "seal",
                    parent=tel.parent,
                    window=index,
                    revision=revision,
                    rows=len(rows),
                    fresh=fresh,
                    watermark_lag=max(
                        0, self.frontier - self.assigner.last_seq(index)
                    ),
                    late=sum(gate.late for gate in self.gates),
                ).end()
        times = [row[3] for row in rows]
        return Window(
            index=index,
            X=np.vstack([row[1] for row in rows]),
            y=np.asarray([row[2] for row in rows]),
            start=min(times),
            end=max(times),
            fresh=fresh,
            revision=revision,
        )

    # ------------------------------------------------------------------
    # convenience
    # ------------------------------------------------------------------
    def ingest(self, records: Iterable[StreamRecord]) -> Iterable[Window]:
        """Drive a whole stream through the plane, yielding sealed windows."""
        for record in records:
            for window in self.push(record):
                yield window
        for window in self.finish():
            yield window
