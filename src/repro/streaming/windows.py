"""Window buffers: batching a record stream into per-window tables.

Stream mining operates on *windows* — bounded batches of the most recent
records — rather than on the full history (Chhinkaniwala & Garg apply
multiplicative perturbation per sliding window for exactly this reason:
the perturbation, the drift statistics, and the miner update all need a
finite table to work on).  Two policies are provided:

* **tumbling** — non-overlapping windows of ``size`` records; every record
  belongs to exactly one window;
* **sliding** — a window of the last ``size`` records emitted every
  ``step`` records (``step < size`` gives overlap; ``step == size``
  degenerates to tumbling).

Buffers are transport-agnostic: they accept one record at a time via
:meth:`WindowBuffer.push` and hand back completed :class:`Window` objects
holding row-major feature blocks, labels, and the virtual time span —
everything downstream (normalizers, drift detectors, online miners) is
window-at-a-time.

The arrival-driven buffers above assume records arrive *in order*.  The
event-time ingestion plane (:mod:`repro.streaming.ingest`) instead keys
windows by **sequence number**: :class:`EventWindowAssigner` is the pure
arithmetic mapping a record's sequence number to the window(s) it belongs
to, so window *contents* are a function of the event stream alone — not of
the arrival order — and an out-of-order stream whose lateness stays under
the watermark seals exactly the windows the sorted stream would.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional, Tuple

import numpy as np

__all__ = [
    "WINDOW_KINDS",
    "Window",
    "WindowBuffer",
    "TumblingWindow",
    "SlidingWindow",
    "EventWindowAssigner",
    "make_window_buffer",
]

#: names accepted by :func:`make_window_buffer`
WINDOW_KINDS = ("tumbling", "sliding")


@dataclass(frozen=True)
class Window:
    """One completed batch of stream records.

    Attributes
    ----------
    index:
        0-based emission counter (the first completed window is 0).
    X / y:
        Row-major ``(n, d)`` features and the ``n`` labels.
    start / end:
        Virtual timestamps of the oldest and newest record in the window.
    fresh:
        How many of the window's *last* rows were not part of any earlier
        window.  Equals ``n_rows`` for tumbling windows; for sliding
        windows with ``step < size`` only the newest ``step`` rows are
        fresh — consumers that must touch each record exactly once
        (incremental normalizers, prequential scoring, model updates)
        should operate on ``X[-fresh:]``, while whole-window statistics
        (drift detection) use all rows.
    revision:
        0 for a window's first (and normally only) emission.  Under the
        event-time ingestion plane's ``upsert`` late policy, records that
        arrive after their window sealed are re-emitted as *correction*
        windows carrying the original index and ``revision >= 1``; every
        row of a correction is fresh.
    """

    index: int
    X: np.ndarray
    y: np.ndarray
    start: float
    end: float
    fresh: int = -1
    revision: int = 0

    def __post_init__(self) -> None:
        X = np.asarray(self.X, dtype=float)
        y = np.asarray(self.y)
        object.__setattr__(self, "X", X)
        object.__setattr__(self, "y", y)
        if X.ndim != 2:
            raise ValueError("window features must be 2-D (rows are records)")
        if y.shape != (X.shape[0],):
            raise ValueError(
                f"window labels have shape {y.shape}, expected ({X.shape[0]},)"
            )
        if self.end < self.start:
            raise ValueError("window end time precedes its start time")
        if self.fresh == -1:
            object.__setattr__(self, "fresh", X.shape[0])
        if not 0 < self.fresh <= X.shape[0]:
            raise ValueError("fresh must be in [1, n_rows]")
        if self.revision < 0:
            raise ValueError("revision must be >= 0")

    @property
    def n_rows(self) -> int:
        """Number of records in the window."""
        return self.X.shape[0]

    @property
    def n_features(self) -> int:
        """Data dimensionality."""
        return self.X.shape[1]

    @property
    def duration(self) -> float:
        """Virtual time span covered by the window."""
        return self.end - self.start


class WindowBuffer:
    """Base class: accumulate records, emit completed windows.

    Subclasses decide *when* a window completes and *which* records it
    holds; the base class owns the record queue and emission bookkeeping.
    """

    def __init__(self, size: int) -> None:
        if size < 1:
            raise ValueError("window size must be >= 1")
        self.size = size
        self._records: Deque[Tuple[np.ndarray, object, float]] = deque()
        self._emitted = 0
        self._since_emit = 0

    @property
    def windows_emitted(self) -> int:
        """How many windows have been completed so far."""
        return self._emitted

    @property
    def pending(self) -> int:
        """Records currently buffered (not yet part of an emitted window)."""
        return len(self._records)

    def push(self, x: np.ndarray, y: object, time: float = 0.0) -> List[Window]:
        """Add one record; return the windows it completed (0 or 1)."""
        x = np.asarray(x, dtype=float).ravel()
        self._records.append((x, y, float(time)))
        self._since_emit += 1
        return self._maybe_emit()

    def flush(self) -> Optional[Window]:
        """Emit whatever is buffered as a final (possibly short) window."""
        if not self._records or self._since_emit == 0:
            return None
        window = self._build(
            list(self._records), fresh=min(self._since_emit, len(self._records))
        )
        self._records.clear()
        self._since_emit = 0
        return window

    # ------------------------------------------------------------------
    # subclass hooks
    # ------------------------------------------------------------------
    def _maybe_emit(self) -> List[Window]:
        raise NotImplementedError

    def _build(
        self, records: List[Tuple[np.ndarray, object, float]], fresh: int = -1
    ) -> Window:
        X = np.vstack([r[0] for r in records])
        y = np.asarray([r[1] for r in records])
        times = [r[2] for r in records]
        window = Window(
            index=self._emitted,
            X=X,
            y=y,
            start=min(times),
            end=max(times),
            fresh=fresh,
        )
        self._emitted += 1
        return window


class TumblingWindow(WindowBuffer):
    """Non-overlapping fixed-size windows: emit and clear every ``size``."""

    def _maybe_emit(self) -> List[Window]:
        if len(self._records) < self.size:
            return []
        window = self._build(list(self._records))
        self._records.clear()
        self._since_emit = 0
        return [window]


def _resolve_sliding_step(size: int, step: Optional[int]) -> int:
    """Default and validate a sliding stride (shared by buffer + assigner)."""
    step = size if step is None else step
    if not 1 <= step <= size:
        raise ValueError(
            f"sliding step must be in [1, size]; got step={step} with "
            f"size={size}" + (
                " (a step larger than the size would silently skip "
                "records between consecutive windows)" if step > size else ""
            )
        )
    return step


class SlidingWindow(WindowBuffer):
    """Overlapping windows: the last ``size`` records, every ``step`` records.

    The first window is emitted once ``size`` records have arrived; after
    that one window per ``step`` further records.  ``step`` must not exceed
    ``size`` (a larger step would silently drop records from every window).
    """

    def __init__(self, size: int, step: Optional[int] = None) -> None:
        super().__init__(size)
        self.step = _resolve_sliding_step(size, step)

    def _maybe_emit(self) -> List[Window]:
        if len(self._records) < self.size:
            return []
        if self._emitted > 0 and self._since_emit < self.step:
            return []
        window = self._build(
            list(self._records)[-self.size :],
            fresh=min(self._since_emit, self.size),
        )
        self._since_emit = 0
        # Keep only what future windows can still include.
        while len(self._records) > self.size - self.step:
            self._records.popleft()
        return [window]


@dataclass(frozen=True)
class EventWindowAssigner:
    """Pure sequence-number arithmetic for event-time windows.

    Maps a record's sequence number (its position in the *event* order,
    independent of arrival order) to the tumbling/sliding window(s) whose
    range contains it.  Window ``w`` covers sequence numbers
    ``[w * step, w * step + size)`` with ``step == size`` for tumbling
    windows, which reproduces exactly the windows the arrival-driven
    :class:`TumblingWindow` / :class:`SlidingWindow` buffers emit on an
    in-order stream — the invariant the event-time ingestion plane's
    compatibility guarantee rests on.

    ``fresh_home(seq)`` is the unique window in which the record counts as
    *fresh* (scored and learned from exactly once); the fresh regions
    ``[fresh_start(w), last_seq(w)]`` tile the sequence line with no
    overlap and no gaps.
    """

    kind: str
    size: int
    step: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in WINDOW_KINDS:
            raise ValueError(
                f"unknown window kind {self.kind!r}; available: "
                f"{', '.join(WINDOW_KINDS)}"
            )
        if self.size < 1:
            raise ValueError("window size must be >= 1")
        if self.kind == "tumbling":
            # Tumbling windows have no stride knob; a supplied step is
            # ignored, as the legacy buffer factory ignores it.
            object.__setattr__(self, "step", self.size)
            return
        object.__setattr__(
            self, "step", _resolve_sliding_step(self.size, self.step)
        )

    # -- window ranges --------------------------------------------------
    def start_seq(self, index: int) -> int:
        """First sequence number of window ``index``."""
        if index < 0:
            raise ValueError("window index must be >= 0")
        return index * self.step

    def last_seq(self, index: int) -> int:
        """Last (inclusive) sequence number of window ``index``."""
        return self.start_seq(index) + self.size - 1

    def fresh_start(self, index: int) -> int:
        """First sequence number that is *fresh* in window ``index``."""
        if index == 0:
            return 0
        return (index - 1) * self.step + self.size

    # -- record membership ----------------------------------------------
    def windows_of_seq(self, seq: int) -> range:
        """All window indices whose range contains ``seq`` (ascending)."""
        if seq < 0:
            raise ValueError("sequence numbers must be >= 0")
        high = seq // self.step
        low = max(0, -(-(seq - self.size + 1) // self.step))
        return range(low, high + 1)

    def fresh_home(self, seq: int) -> int:
        """The unique window where ``seq`` is a fresh record."""
        if seq < 0:
            raise ValueError("sequence numbers must be >= 0")
        if seq < self.size:
            return 0
        return (seq - self.size) // self.step + 1


def make_window_buffer(kind: str, size: int, step: Optional[int] = None) -> WindowBuffer:
    """Factory keyed by policy name (``"tumbling"`` or ``"sliding"``)."""
    if kind == "tumbling":
        return TumblingWindow(size)
    if kind == "sliding":
        return SlidingWindow(size, step)
    raise ValueError(f"unknown window kind {kind!r}; use 'tumbling' or 'sliding'")
