"""Window buffers: batching a record stream into per-window tables.

Stream mining operates on *windows* — bounded batches of the most recent
records — rather than on the full history (Chhinkaniwala & Garg apply
multiplicative perturbation per sliding window for exactly this reason:
the perturbation, the drift statistics, and the miner update all need a
finite table to work on).  Two policies are provided:

* **tumbling** — non-overlapping windows of ``size`` records; every record
  belongs to exactly one window;
* **sliding** — a window of the last ``size`` records emitted every
  ``step`` records (``step < size`` gives overlap; ``step == size``
  degenerates to tumbling).

Buffers are transport-agnostic: they accept one record at a time via
:meth:`WindowBuffer.push` and hand back completed :class:`Window` objects
holding row-major feature blocks, labels, and the virtual time span —
everything downstream (normalizers, drift detectors, online miners) is
window-at-a-time.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional, Tuple

import numpy as np

__all__ = [
    "WINDOW_KINDS",
    "Window",
    "WindowBuffer",
    "TumblingWindow",
    "SlidingWindow",
    "make_window_buffer",
]

#: names accepted by :func:`make_window_buffer`
WINDOW_KINDS = ("tumbling", "sliding")


@dataclass(frozen=True)
class Window:
    """One completed batch of stream records.

    Attributes
    ----------
    index:
        0-based emission counter (the first completed window is 0).
    X / y:
        Row-major ``(n, d)`` features and the ``n`` labels.
    start / end:
        Virtual timestamps of the oldest and newest record in the window.
    fresh:
        How many of the window's *last* rows were not part of any earlier
        window.  Equals ``n_rows`` for tumbling windows; for sliding
        windows with ``step < size`` only the newest ``step`` rows are
        fresh — consumers that must touch each record exactly once
        (incremental normalizers, prequential scoring, model updates)
        should operate on ``X[-fresh:]``, while whole-window statistics
        (drift detection) use all rows.
    """

    index: int
    X: np.ndarray
    y: np.ndarray
    start: float
    end: float
    fresh: int = -1

    def __post_init__(self) -> None:
        X = np.asarray(self.X, dtype=float)
        y = np.asarray(self.y)
        object.__setattr__(self, "X", X)
        object.__setattr__(self, "y", y)
        if X.ndim != 2:
            raise ValueError("window features must be 2-D (rows are records)")
        if y.shape != (X.shape[0],):
            raise ValueError(
                f"window labels have shape {y.shape}, expected ({X.shape[0]},)"
            )
        if self.end < self.start:
            raise ValueError("window end time precedes its start time")
        if self.fresh == -1:
            object.__setattr__(self, "fresh", X.shape[0])
        if not 0 < self.fresh <= X.shape[0]:
            raise ValueError("fresh must be in [1, n_rows]")

    @property
    def n_rows(self) -> int:
        """Number of records in the window."""
        return self.X.shape[0]

    @property
    def n_features(self) -> int:
        """Data dimensionality."""
        return self.X.shape[1]

    @property
    def duration(self) -> float:
        """Virtual time span covered by the window."""
        return self.end - self.start


class WindowBuffer:
    """Base class: accumulate records, emit completed windows.

    Subclasses decide *when* a window completes and *which* records it
    holds; the base class owns the record queue and emission bookkeeping.
    """

    def __init__(self, size: int) -> None:
        if size < 1:
            raise ValueError("window size must be >= 1")
        self.size = size
        self._records: Deque[Tuple[np.ndarray, object, float]] = deque()
        self._emitted = 0
        self._since_emit = 0

    @property
    def windows_emitted(self) -> int:
        """How many windows have been completed so far."""
        return self._emitted

    @property
    def pending(self) -> int:
        """Records currently buffered (not yet part of an emitted window)."""
        return len(self._records)

    def push(self, x: np.ndarray, y: object, time: float = 0.0) -> List[Window]:
        """Add one record; return the windows it completed (0 or 1)."""
        x = np.asarray(x, dtype=float).ravel()
        self._records.append((x, y, float(time)))
        self._since_emit += 1
        return self._maybe_emit()

    def flush(self) -> Optional[Window]:
        """Emit whatever is buffered as a final (possibly short) window."""
        if not self._records or self._since_emit == 0:
            return None
        window = self._build(
            list(self._records), fresh=min(self._since_emit, len(self._records))
        )
        self._records.clear()
        self._since_emit = 0
        return window

    # ------------------------------------------------------------------
    # subclass hooks
    # ------------------------------------------------------------------
    def _maybe_emit(self) -> List[Window]:
        raise NotImplementedError

    def _build(
        self, records: List[Tuple[np.ndarray, object, float]], fresh: int = -1
    ) -> Window:
        X = np.vstack([r[0] for r in records])
        y = np.asarray([r[1] for r in records])
        times = [r[2] for r in records]
        window = Window(
            index=self._emitted,
            X=X,
            y=y,
            start=min(times),
            end=max(times),
            fresh=fresh,
        )
        self._emitted += 1
        return window


class TumblingWindow(WindowBuffer):
    """Non-overlapping fixed-size windows: emit and clear every ``size``."""

    def _maybe_emit(self) -> List[Window]:
        if len(self._records) < self.size:
            return []
        window = self._build(list(self._records))
        self._records.clear()
        self._since_emit = 0
        return [window]


class SlidingWindow(WindowBuffer):
    """Overlapping windows: the last ``size`` records, every ``step`` records.

    The first window is emitted once ``size`` records have arrived; after
    that one window per ``step`` further records.  ``step`` must not exceed
    ``size`` (a larger step would silently drop records from every window).
    """

    def __init__(self, size: int, step: Optional[int] = None) -> None:
        super().__init__(size)
        step = size if step is None else step
        if not 1 <= step <= size:
            raise ValueError("step must be in [1, size]")
        self.step = step

    def _maybe_emit(self) -> List[Window]:
        if len(self._records) < self.size:
            return []
        if self._emitted > 0 and self._since_emit < self.step:
            return []
        window = self._build(
            list(self._records)[-self.size :],
            fresh=min(self._since_emit, self.size),
        )
        self._since_emit = 0
        # Keep only what future windows can still include.
        while len(self._records) > self.size - self.step:
            self._records.popleft()
        return [window]


def make_window_buffer(kind: str, size: int, step: Optional[int] = None) -> WindowBuffer:
    """Factory keyed by policy name (``"tumbling"`` or ``"sliding"``)."""
    if kind == "tumbling":
        return TumblingWindow(size)
    if kind == "sliding":
        return SlidingWindow(size, step)
    raise ValueError(f"unknown window kind {kind!r}; use 'tumbling' or 'sliding'")
