"""repro — Space Adaptation: privacy-preserving multiparty collaborative
mining with geometric perturbation.

A full reproduction of Chen & Liu (PODC 2007) and the geometric-perturbation
machinery it builds on: the perturbation ``G(X) = RX + Psi + Delta``, the
attack-resilience privacy metrics and randomized optimizer, the Space
Adaptation Protocol over a simulated multiparty network, from-scratch KNN
and SVM(RBF) classifiers, and synthetic stand-ins for the 12 UCI datasets.
:mod:`repro.streaming` extends the batch pipeline to *data streams*:
windowed online mining with drift-triggered space re-adaptation.
:mod:`repro.sharding` runs both pipelines across parallel worker shards
(serial/thread/process backends) with deterministic, bit-identical merges.
:mod:`repro.serve` is the serving layer on top: one declarative
:class:`SessionSpec` for batch and stream workloads, and a
:class:`MiningService` engine that runs many concurrent sessions over a
shared worker pool with admission control and per-tenant seeds/budgets.
:mod:`repro.cluster` scales serving out: a :class:`ClusterController`
fronting N engine replicas with pluggable session placement, live
migration by checkpoint, rebalancing, and a merged cluster view.
:mod:`repro.obs` is the dependency-free telemetry layer underneath it
all: a metrics registry, tracing spans over the round pipeline, and
per-stage latency reports.

Quickstart
----------
>>> from repro import load_dataset, SAPConfig, run_sap_session
>>> result = run_sap_session(load_dataset("iris"), SAPConfig(k=5, seed=7))
>>> -10 < result.deviation < 10
True

Serving quickstart
------------------
>>> from repro import MiningService, SessionSpec
>>> with MiningService(max_inflight=2) as service:
...     results = service.run([
...         SessionSpec(kind="batch", dataset="iris", k=3, tenant="acme"),
...         SessionSpec(kind="stream", dataset="wine", windows=2,
...                     window_size=32, tenant="globex"),
...     ])
>>> len(results)
2
"""

from .attacks import (
    AKICAAttack,
    AttackSuite,
    DistanceInferenceAttack,
    ICAAttack,
    KnownSampleAttack,
    NaiveEstimationAttack,
    PCAAttack,
    default_suite,
    evaluate_perturbation,
    fast_suite,
)
from .core import (
    ExchangePlan,
    GeometricPerturbation,
    MinMaxNormalizer,
    OptimizationResult,
    PartyRiskProfile,
    PerturbationOptimizer,
    PrivacyReport,
    SAPSessionResult,
    SpaceAdaptor,
    ZScoreNormalizer,
    column_privacy,
    complementary_noise,
    compute_adaptor,
    draw_exchange_plan,
    haar_orthogonal,
    minimum_parties,
    minimum_privacy_guarantee,
    optimality_rate,
    risk_of_breach,
    run_sap_session,
    sample_perturbation,
    sap_risk,
    satisfaction_level,
    source_identifiability,
    standalone_risk,
)
from .datasets import (
    DATASET_NAMES,
    Dataset,
    DatasetSpec,
    PartitionScheme,
    load_dataset,
    partition,
)
from .mining import (
    KNNClassifier,
    LinearSVMClassifier,
    SVMClassifier,
    accuracy_deviation,
    accuracy_score,
)
from .checkpoint import (
    CheckpointError,
    Checkpointer,
    SessionCheckpoint,
    SessionEvicted,
    dumps_checkpoint,
    load_checkpoint,
    loads_checkpoint,
    save_checkpoint,
)
from .cluster import (
    ClusterController,
    ClusterError,
    ClusterSession,
    ClusterStats,
)
from .obs import MetricsRegistry, Telemetry, Tracer
from .parties import ClassifierSpec, SAPConfig
from .serve import (
    AdmissionError,
    Engine,
    MiningService,
    ServiceStats,
    SessionHandle,
    SessionSpec,
    TenantPolicy,
    execute_spec,
)
from .sharding import ShardPlan, make_backend
from .streaming import (
    OnlineLinearSVM,
    ReservoirKNN,
    RunningMinMaxNormalizer,
    RunningZScoreNormalizer,
    StreamConfig,
    StreamSessionResult,
    StreamSource,
    TrustChange,
    make_stream,
    run_stream_session,
)

__version__ = "1.3.0"

__all__ = [
    "__version__",
    # core
    "GeometricPerturbation",
    "sample_perturbation",
    "MinMaxNormalizer",
    "ZScoreNormalizer",
    "haar_orthogonal",
    "column_privacy",
    "minimum_privacy_guarantee",
    "PrivacyReport",
    "PerturbationOptimizer",
    "OptimizationResult",
    "SpaceAdaptor",
    "compute_adaptor",
    "complementary_noise",
    "ExchangePlan",
    "draw_exchange_plan",
    "source_identifiability",
    "optimality_rate",
    "satisfaction_level",
    "risk_of_breach",
    "standalone_risk",
    "sap_risk",
    "minimum_parties",
    "PartyRiskProfile",
    "SAPSessionResult",
    "run_sap_session",
    # attacks
    "AttackSuite",
    "NaiveEstimationAttack",
    "ICAAttack",
    "AKICAAttack",
    "PCAAttack",
    "KnownSampleAttack",
    "DistanceInferenceAttack",
    "default_suite",
    "fast_suite",
    "evaluate_perturbation",
    # datasets
    "Dataset",
    "DatasetSpec",
    "DATASET_NAMES",
    "load_dataset",
    "partition",
    "PartitionScheme",
    # mining
    "KNNClassifier",
    "SVMClassifier",
    "LinearSVMClassifier",
    "accuracy_score",
    "accuracy_deviation",
    # parties
    "SAPConfig",
    "ClassifierSpec",
    # streaming
    "StreamSource",
    "make_stream",
    "StreamConfig",
    "StreamSessionResult",
    "TrustChange",
    "run_stream_session",
    "RunningMinMaxNormalizer",
    "RunningZScoreNormalizer",
    "ReservoirKNN",
    "OnlineLinearSVM",
    # sharding
    "ShardPlan",
    "make_backend",
    # serve
    "SessionSpec",
    "execute_spec",
    "MiningService",
    "Engine",
    "SessionHandle",
    "TenantPolicy",
    "ServiceStats",
    "AdmissionError",
    # obs
    "Telemetry",
    "MetricsRegistry",
    "Tracer",
    # checkpoint
    "SessionCheckpoint",
    "Checkpointer",
    "CheckpointError",
    "SessionEvicted",
    "load_checkpoint",
    "save_checkpoint",
    "dumps_checkpoint",
    "loads_checkpoint",
    # cluster
    "ClusterController",
    "ClusterSession",
    "ClusterStats",
    "ClusterError",
]
