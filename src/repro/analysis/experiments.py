"""Experiment drivers: repetition, sweeps, and protocol audits.

These helpers sit between the figure builders and the benchmarks: they
package the repeated-run statistics (identifiability Monte Carlo, risk
sweeps, noise/optimizer ablations) that DESIGN.md section 5 calls out.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..core.protocol import draw_exchange_plan
from ..core.risk import risk_of_breach, sap_risk, source_identifiability
from ..core.session import run_sap_session
from ..datasets.partition import PartitionScheme
from ..datasets.registry import load_dataset
from ..parties.config import ClassifierSpec, SAPConfig
from ..simnet.adversary import empirical_identifiability

__all__ = [
    "identifiability_monte_carlo",
    "risk_sweep",
    "noise_sweep",
    "optimizer_ablation",
    "attack_ablation",
    "target_selection_ablation",
    "known_sample_sweep",
]


def identifiability_monte_carlo(
    k: int, n_runs: int = 2000, seed: int = 0
) -> Dict[str, float]:
    """Empirical ``pi_i`` from repeated exchange-plan draws.

    Draws the protocol's randomized exchange plan ``n_runs`` times and
    measures, for each source, the adversary's best attribution
    probability given only the forwarder identity — the quantity the paper
    claims equals ``1/(k-1)``.

    Returns summary statistics: the analytic value, the empirical maximum
    over sources, and the empirical mean.
    """
    rng = np.random.default_rng(seed)
    assignments: List[Tuple[str, str]] = []
    for _ in range(n_runs):
        plan = draw_exchange_plan(k, rng)
        for source in range(k):
            forwarder = plan.receiver_of_source(source)
            assignments.append((f"DP{forwarder}", f"DP{source}"))
    per_source = empirical_identifiability(assignments)
    values = np.array(list(per_source.values()))
    return {
        "k": float(k),
        "analytic": source_identifiability(k),
        "empirical_max": float(values.max()),
        "empirical_mean": float(values.mean()),
        "n_runs": float(n_runs),
    }


def risk_sweep(
    k_values: Sequence[int] = (2, 3, 5, 8, 10, 20),
    satisfaction: float = 0.95,
    opt_rate: float = 0.9,
) -> List[Dict[str, float]]:
    """Equations (1) and (2) evaluated across party counts.

    Uses ``rho/b = opt_rate`` (the measurable approximation the paper
    itself adopts) with ``b`` normalized to 1.
    """
    rows = []
    rho = opt_rate  # b = 1
    for k in k_values:
        pi = source_identifiability(k)
        rows.append(
            {
                "k": float(k),
                "identifiability": pi,
                "risk_eq1": risk_of_breach(pi, satisfaction, rho, 1.0),
                "risk_eq2": sap_risk(1.0, rho, satisfaction, k),
                "standalone": risk_of_breach(1.0, 1.0, rho, 1.0),
            }
        )
    return rows


def noise_sweep(
    dataset: str = "diabetes",
    sigmas: Sequence[float] = (0.0, 0.02, 0.05, 0.1, 0.2),
    classifier: Optional[ClassifierSpec] = None,
    k: int = 5,
    seed: int = 0,
) -> List[Dict[str, float]]:
    """Accuracy/privacy trade-off of the common noise component.

    For each sigma: run the full SAP pipeline (accuracy deviation) and
    evaluate the unified perturbation's privacy on one party's table.
    """
    from ..attacks.resilience import fast_suite
    from ..core.perturbation import sample_perturbation
    from ..datasets.schema import normalize_dataset

    if classifier is None:
        classifier = ClassifierSpec("knn", {"n_neighbors": 5})
    table = load_dataset(dataset)
    normalized = normalize_dataset(table)
    suite = fast_suite()
    rows = []
    for sigma in sigmas:
        config = SAPConfig(
            k=k, noise_sigma=float(sigma), classifier=classifier, seed=seed
        )
        result = run_sap_session(table, config, scheme=PartitionScheme.UNIFORM)
        rng = np.random.default_rng(seed)
        perturbation = sample_perturbation(
            normalized.n_features, rng, noise_sigma=float(sigma)
        )
        privacy = suite.guarantee(perturbation, normalized.columns(), rng)
        rows.append(
            {
                "sigma": float(sigma),
                "deviation": result.deviation,
                "privacy": privacy,
            }
        )
    return rows


def optimizer_ablation(
    dataset: str = "diabetes",
    n_rounds: int = 15,
    local_steps: int = 8,
    noise_sigma: float = 0.05,
    seed: int = 0,
    max_rows: int = 300,
) -> Dict[str, Dict[str, float]]:
    """Random search vs. hill climbing (DESIGN.md ablation #1).

    Compares the privacy statistics of (a) pure random restarts and
    (b) restarts + local search, with matched evaluation budgets reported
    alongside.
    """
    from ..core.optimizer import PerturbationOptimizer
    from .figures import _normalized_columns

    table = load_dataset(dataset)
    X = _normalized_columns(table, max_rows=max_rows, seed=seed)

    random_only = PerturbationOptimizer(
        n_rounds=n_rounds, local_steps=0, noise_sigma=noise_sigma, seed=seed
    ).optimize(X)
    hill_climb = PerturbationOptimizer(
        n_rounds=n_rounds,
        local_steps=local_steps,
        noise_sigma=noise_sigma,
        seed=seed,
    ).optimize(X)

    def stats(result) -> Dict[str, float]:
        return {
            "best": result.best_privacy,
            "rho_bar": result.rho_bar,
            "b_hat": result.b_hat,
            "optimality_rate": result.optimality_rate,
            "evaluations": float(
                len(result.round_privacies) * (1 + local_steps)
            ),
        }

    return {"random_search": stats(random_only), "hill_climbing": stats(hill_climb)}


def known_sample_sweep(
    dataset: str = "diabetes",
    known_counts: Sequence[int] = (0, 2, 5, 10, 20),
    noise_sigma: float = 0.05,
    seed: int = 0,
    max_rows: int = 300,
) -> List[Dict[str, float]]:
    """Attack strength vs. insider knowledge (known record pairs).

    For one random geometric perturbation, evaluates the known-sample,
    distance-inference, and AK-ICA attacks at increasing numbers of known
    pairs.  The expected curve — privacy guarantee collapsing as the
    adversary accumulates pairs, with the noise floor the only residual —
    is the SDM'07 argument for the noise component.
    """
    from ..attacks.ak_ica import AKICAAttack
    from ..attacks.base import build_context
    from ..attacks.distance import DistanceInferenceAttack
    from ..attacks.known_sample import KnownSampleAttack
    from ..core.perturbation import sample_perturbation
    from ..core.privacy import minimum_privacy_guarantee
    from .figures import _normalized_columns

    table = load_dataset(dataset)
    X = _normalized_columns(table, max_rows=max_rows, seed=seed)
    rng = np.random.default_rng(seed)
    perturbation = sample_perturbation(X.shape[0], rng, noise_sigma=noise_sigma)
    Y = np.asarray(perturbation.apply(X, rng=rng))

    attacks = {
        "known_sample": KnownSampleAttack(),
        "distance_inference": DistanceInferenceAttack(),
        "ak_ica": AKICAAttack(),
    }
    rows = []
    for count in known_counts:
        context = build_context(
            X,
            Y,
            known_fraction=1.0 if count else 0.0,
            max_known=int(count),
            rng=np.random.default_rng(seed + count),
        )
        row: Dict[str, float] = {"known_pairs": float(count)}
        for name, attack in attacks.items():
            estimate = attack.reconstruct(context)
            row[name] = minimum_privacy_guarantee(X, estimate)
        rows.append(row)
    return rows


def target_selection_ablation(
    dataset: str = "heart",
    candidate_counts: Sequence[int] = (1, 4),
    k: int = 4,
    repeats: int = 3,
    seed: int = 0,
) -> List[Dict[str, float]]:
    """Paper protocol (one random target) vs the voting extension.

    For each candidate count, runs the full protocol ``repeats`` times with
    privacy profiling enabled and reports the mean satisfaction level and
    mean global privacy guarantee across parties and repeats.  The
    extension should never do worse on the mean vote by construction; this
    quantifies how much it helps.
    """
    from ..core.risk import mean_satisfaction

    table = load_dataset(dataset)
    rows = []
    for count in candidate_counts:
        satisfactions = []
        guarantees = []
        deviations = []
        for repeat in range(repeats):
            config = SAPConfig(
                k=k,
                classifier=ClassifierSpec("knn", {"n_neighbors": 5}),
                target_candidates=int(count),
                optimizer_rounds=4,
                optimizer_local_steps=2,
                seed=seed + 101 * repeat,
            )
            result = run_sap_session(
                table, config, scheme=PartitionScheme.UNIFORM,
                compute_privacy=True,
            )
            satisfactions.append(mean_satisfaction(result.risk_profiles))
            guarantees.append(
                float(
                    np.mean([p.rho_global for p in result.risk_profiles])
                )
            )
            deviations.append(result.deviation)
        rows.append(
            {
                "candidates": float(count),
                "mean_satisfaction": float(np.mean(satisfactions)),
                "mean_rho_global": float(np.mean(guarantees)),
                "mean_deviation": float(np.mean(deviations)),
            }
        )
    return rows


def attack_ablation(
    dataset: str = "diabetes",
    noise_sigma: float = 0.05,
    known_fraction: float = 0.05,
    seed: int = 0,
    max_rows: int = 300,
) -> Dict[str, float]:
    """Per-attack privacy guarantees for one random perturbation
    (DESIGN.md ablation #3): which adversary model binds the guarantee."""
    from ..attacks.resilience import default_suite
    from ..core.perturbation import sample_perturbation
    from .figures import _normalized_columns

    table = load_dataset(dataset)
    X = _normalized_columns(table, max_rows=max_rows, seed=seed)
    rng = np.random.default_rng(seed)
    perturbation = sample_perturbation(X.shape[0], rng, noise_sigma=noise_sigma)
    report = default_suite(known_fraction=known_fraction).evaluate(
        perturbation, X, rng
    )
    out = dict(report.per_attack)
    out["guarantee"] = report.guarantee
    return out
