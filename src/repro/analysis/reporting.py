"""Plain-text rendering of experiment results.

The original figures are bar/line charts; in a terminal-only reproduction
every figure is regenerated as an ASCII table (and, for distributions, a
text histogram) carrying the same series the chart plots.  Benchmarks and
the CLI both render through this module so outputs stay uniform.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

import numpy as np

__all__ = ["ascii_table", "text_histogram", "format_mapping", "series_block"]


def ascii_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    float_format: str = "{:.3f}",
) -> str:
    """Render rows as a fixed-width table with a header rule.

    Floats are formatted with ``float_format``; everything else with
    ``str``.  Column widths adapt to content.
    """
    rendered: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        cells = []
        for value in row:
            if isinstance(value, float) and not isinstance(value, bool):
                cells.append(float_format.format(value))
            else:
                cells.append(str(value))
        rendered.append(cells)
    n_cols = max(len(r) for r in rendered)
    for row in rendered:
        row.extend([""] * (n_cols - len(row)))
    widths = [max(len(row[c]) for row in rendered) for c in range(n_cols)]

    def fmt(row: List[str]) -> str:
        return "  ".join(cell.ljust(width) for cell, width in zip(row, widths)).rstrip()

    lines = [fmt(rendered[0]), "-" * (sum(widths) + 2 * (n_cols - 1))]
    lines.extend(fmt(row) for row in rendered[1:])
    return "\n".join(lines)


def text_histogram(
    values: Sequence[float],
    bins: int = 10,
    width: int = 40,
    label: str = "",
) -> str:
    """A horizontal-bar histogram (Figure 2's PDF rendered as text)."""
    values = np.asarray(list(values), dtype=float)
    if values.size == 0:
        raise ValueError("no values to histogram")
    counts, edges = np.histogram(values, bins=bins)
    peak = counts.max() if counts.max() > 0 else 1
    lines = []
    if label:
        lines.append(label)
    for count, lo, hi in zip(counts, edges[:-1], edges[1:]):
        bar = "#" * int(round(width * count / peak))
        lines.append(f"[{lo:7.4f}, {hi:7.4f})  {bar} {count}")
    return "\n".join(lines)


def format_mapping(mapping: Dict[str, object], indent: int = 0) -> str:
    """Key-aligned ``key : value`` lines for a flat dictionary."""
    if not mapping:
        return ""
    pad = " " * indent
    width = max(len(str(key)) for key in mapping)
    lines = []
    for key, value in mapping.items():
        if isinstance(value, float):
            value = f"{value:.4f}"
        lines.append(f"{pad}{str(key):<{width}} : {value}")
    return "\n".join(lines)


def series_block(title: str, body: str) -> str:
    """A titled block with an underline, used to frame each figure output."""
    rule = "=" * len(title)
    return f"{title}\n{rule}\n{body}"
