"""One series builder per figure in the paper's evaluation section.

Each ``figureN_series`` function regenerates the data behind the paper's
figure N and returns it as plain Python structures (dicts/lists) so the
benchmarks, the CLI, and the tests can all consume the same code path.
Rendering to text lives in :mod:`repro.analysis.reporting`.

Figure inventory (see DESIGN.md for the experiment index):

* **Figure 2** — distribution of the minimum privacy guarantee for random
  vs. optimized perturbations on one dataset.
* **Figure 3** — optimality rate vs. number of parties for
  Diabetes/Shuttle/Votes under Class and Uniform partitions.
* **Figure 4** — lower bound on the number of parties vs. the expected
  satisfaction level for three optimality rates.
* **Figure 5 / Figure 6** — accuracy deviation of the full SAP pipeline
  (KNN / SVM-RBF) across the 12 datasets under both partition schemes.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..attacks.resilience import AttackSuite, fast_suite
from ..core.optimizer import PerturbationOptimizer
from ..core.risk import minimum_parties
from ..core.session import run_sap_session
from ..datasets.partition import PartitionScheme, partition
from ..datasets.registry import DATASET_NAMES, FIGURE3_DATASETS, load_dataset
from ..datasets.schema import normalize_dataset
from ..parties.config import ClassifierSpec, SAPConfig

__all__ = [
    "figure2_series",
    "figure3_series",
    "figure4_series",
    "figure5_series",
    "figure6_series",
    "accuracy_deviation_series",
    "FIGURE4_OPT_RATES",
]

# The optimality rates the paper reads off Figure 3 and reuses in Figure 4.
FIGURE4_OPT_RATES: Dict[str, float] = {
    "diabetes": 0.95,
    "shuttle": 0.89,
    "votes": 0.98,
}


# ----------------------------------------------------------------------
# Figure 2 — optimized vs random perturbation privacy
# ----------------------------------------------------------------------
def figure2_series(
    dataset: str = "diabetes",
    n_rounds: int = 30,
    local_steps: int = 8,
    noise_sigma: float = 0.05,
    suite: Optional[AttackSuite] = None,
    seed: int = 0,
    max_rows: int = 300,
) -> Dict[str, List[float]]:
    """Privacy-guarantee samples for random vs optimized perturbations.

    Returns ``{"random": [...], "optimized": [...]}`` with ``n_rounds``
    samples each; the paper's claim is that the optimized distribution
    sits to the right of (stochastically dominates) the random one.
    """
    table = load_dataset(dataset)
    X = _normalized_columns(table, max_rows=max_rows, seed=seed)
    optimizer = PerturbationOptimizer(
        n_rounds=n_rounds,
        local_steps=local_steps,
        noise_sigma=noise_sigma,
        suite=suite if suite is not None else fast_suite(),
        seed=seed,
    )
    result = optimizer.optimize(X)
    return {
        "random": result.random_privacies,
        "optimized": result.round_privacies,
    }


# ----------------------------------------------------------------------
# Figure 3 — optimality rate vs number of parties
# ----------------------------------------------------------------------
def figure3_series(
    datasets: Sequence[str] = FIGURE3_DATASETS,
    k_values: Sequence[int] = (5, 6, 7, 8, 9, 10),
    schemes: Sequence[PartitionScheme] = (
        PartitionScheme.CLASS,
        PartitionScheme.UNIFORM,
    ),
    n_rounds: int = 10,
    local_steps: int = 5,
    noise_sigma: float = 0.05,
    seed: int = 0,
) -> Dict[Tuple[str, str], Dict[int, float]]:
    """Mean per-party optimality rate for each (dataset, scheme, k).

    Each party of the partition runs its own n-round optimization on its
    local table; the reported value is the across-party mean of
    ``rho_bar / b_hat`` — the quantity the paper plots in Figure 3.
    """
    series: Dict[Tuple[str, str], Dict[int, float]] = {}
    for name in datasets:
        table = load_dataset(name)
        normalized = normalize_dataset(table)
        for scheme in schemes:
            scheme = PartitionScheme(scheme)
            key = (name, scheme.value)
            series[key] = {}
            for k in k_values:
                rng = np.random.default_rng(seed + 1000 * k)
                parts = partition(normalized, k, scheme, rng=rng)
                rates = []
                for index, rows in enumerate(parts):
                    local = normalized.subset(rows)
                    optimizer = PerturbationOptimizer(
                        n_rounds=n_rounds,
                        local_steps=local_steps,
                        noise_sigma=noise_sigma,
                        seed=seed + 17 * index + 1000 * k,
                    )
                    result = optimizer.optimize(local.columns())
                    rates.append(result.optimality_rate)
                series[key][k] = float(np.mean(rates))
    return series


# ----------------------------------------------------------------------
# Figure 4 — lower bound on the number of parties
# ----------------------------------------------------------------------
def figure4_series(
    opt_rates: Optional[Dict[str, float]] = None,
    s0_values: Optional[Sequence[float]] = None,
) -> Dict[str, Dict[float, int]]:
    """Minimum admissible k per (dataset opt-rate, expected satisfaction)."""
    if opt_rates is None:
        opt_rates = dict(FIGURE4_OPT_RATES)
    if s0_values is None:
        s0_values = [round(0.90 + 0.01 * i, 2) for i in range(10)]
    series: Dict[str, Dict[float, int]] = {}
    for name, rate in opt_rates.items():
        series[name] = {
            float(s0): minimum_parties(float(s0), rate) for s0 in s0_values
        }
    return series


# ----------------------------------------------------------------------
# Figures 5 and 6 — accuracy deviation across the 12 datasets
# ----------------------------------------------------------------------
def accuracy_deviation_series(
    classifier: ClassifierSpec,
    datasets: Sequence[str] = DATASET_NAMES,
    schemes: Sequence[PartitionScheme] = (
        PartitionScheme.UNIFORM,
        PartitionScheme.CLASS,
    ),
    k: int = 5,
    noise_sigma: float = 0.05,
    repeats: int = 3,
    seed: int = 0,
) -> Dict[Tuple[str, str], float]:
    """Mean accuracy deviation (percentage points) per (dataset, scheme).

    Runs the *full* protocol — partition, local perturbation, exchange,
    adaptation, pooled training — ``repeats`` times with different seeds
    and averages the deviation from the unperturbed baseline trained on
    the identical rows.
    """
    series: Dict[Tuple[str, str], float] = {}
    for name in datasets:
        table = load_dataset(name)
        for scheme in schemes:
            scheme = PartitionScheme(scheme)
            deviations = []
            for repeat in range(repeats):
                config = SAPConfig(
                    k=k,
                    noise_sigma=noise_sigma,
                    classifier=classifier,
                    seed=seed + 7919 * repeat,
                )
                result = run_sap_session(table, config, scheme=scheme)
                deviations.append(result.deviation)
            series[(name, scheme.value)] = float(np.mean(deviations))
    return series


def figure5_series(
    datasets: Sequence[str] = DATASET_NAMES,
    k: int = 5,
    noise_sigma: float = 0.05,
    repeats: int = 3,
    seed: int = 0,
    n_neighbors: int = 5,
) -> Dict[Tuple[str, str], float]:
    """Figure 5: KNN accuracy deviation, SAP-Uniform vs SAP-Class."""
    return accuracy_deviation_series(
        ClassifierSpec("knn", {"n_neighbors": n_neighbors}),
        datasets=datasets,
        k=k,
        noise_sigma=noise_sigma,
        repeats=repeats,
        seed=seed,
    )


def figure6_series(
    datasets: Sequence[str] = DATASET_NAMES,
    k: int = 5,
    noise_sigma: float = 0.05,
    repeats: int = 2,
    seed: int = 0,
    C: float = 1.0,
) -> Dict[Tuple[str, str], float]:
    """Figure 6: SVM(RBF) accuracy deviation, SAP-Uniform vs SAP-Class."""
    return accuracy_deviation_series(
        ClassifierSpec("svm_rbf", {"C": C}),
        datasets=datasets,
        k=k,
        noise_sigma=noise_sigma,
        repeats=repeats,
        seed=seed,
    )


# ----------------------------------------------------------------------
# shared plumbing
# ----------------------------------------------------------------------
def _normalized_columns(table, max_rows: int, seed: int) -> np.ndarray:
    normalized = normalize_dataset(table)
    if normalized.n_rows > max_rows:
        rng = np.random.default_rng(seed)
        rows = rng.choice(normalized.n_rows, size=max_rows, replace=False)
        normalized = normalized.subset(np.sort(rows))
    return normalized.columns()
