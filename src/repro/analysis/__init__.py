"""Experiment drivers and rendering shared by benchmarks, CLI, examples."""

from .experiments import (
    attack_ablation,
    identifiability_monte_carlo,
    noise_sweep,
    optimizer_ablation,
    risk_sweep,
)
from .figures import (
    FIGURE4_OPT_RATES,
    accuracy_deviation_series,
    figure2_series,
    figure3_series,
    figure4_series,
    figure5_series,
    figure6_series,
)
from .reporting import ascii_table, format_mapping, series_block, text_histogram

__all__ = [
    "figure2_series",
    "figure3_series",
    "figure4_series",
    "figure5_series",
    "figure6_series",
    "accuracy_deviation_series",
    "FIGURE4_OPT_RATES",
    "identifiability_monte_carlo",
    "risk_sweep",
    "noise_sweep",
    "optimizer_ablation",
    "attack_ablation",
    "ascii_table",
    "text_histogram",
    "format_mapping",
    "series_block",
]
