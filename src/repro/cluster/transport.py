"""Replica transports: the narrow surface the cluster control plane speaks.

The :class:`~repro.cluster.controller.ClusterController` never touches a
:class:`~repro.serve.engine.MiningService` directly any more — it drives
a :class:`ReplicaTransport`, whose whole vocabulary is

    submit / poll / wait / result / cancel / evict / resume / stats /
    health / close

with checkpoints crossing as **opaque RPCK bytes**
(:class:`CheckpointPayload`).  Two interchangeable backends implement it:

* :class:`InProcessReplica` — the PR 9 behavior, preserved exactly: a
  service in this process, handles passed by reference, checkpoints by
  path.  Always healthy; transport counters stay zero.
* :class:`ProcessReplica` — a service in a **separate OS process**
  (``python -m repro.cluster.replica``), driven over a framed socketpair
  (:mod:`repro.cluster.protocol`).  Results and stats come back through
  :mod:`repro.serve.wire`; checkpoints travel as bytes and are validated
  by the receiving engine like any local file.  A heartbeat thread
  watches the child (process liveness every tick, an application-level
  ping when the connection is idle) and reports death exactly once via
  ``on_death`` — the controller's crash-recovery hook.

Both backends expose the same handle type surface
(:class:`InProcessHandle` / :class:`RemoteHandle`): ``poll`` statuses are
the engine's, plus ``"lost"`` from a remote handle whose replica died —
the control plane turns ``lost`` into recovery, callers never see it for
longer than a handoff.

Determinism is untouched by construction: a transport moves *opaque
state and results*; it never reorders a session's execution, so any
schedule of migrations/crashes/resumes over process replicas reproduces
the single-engine run bit for bit.
"""

from __future__ import annotations

import os
import signal
import socket
import subprocess
import sys
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from ..checkpoint import CheckpointError, loads_checkpoint
from ..serve.engine import (
    AdmissionError,
    MiningService,
    PoolStats,
    ServiceStats,
    SessionHandle,
    SessionResult,
)
from ..serve.spec import SessionSpec
from ..serve.wire import result_from_wire, stats_from_wire
from .protocol import TransportError, read_frame, unwrap_response, write_frame

__all__ = [
    "CheckpointPayload",
    "ReplicaTransport",
    "InProcessHandle",
    "InProcessReplica",
    "RemoteHandle",
    "ProcessReplica",
]

#: handle statuses after which wait() need not keep blocking
_SETTLED = ("completed", "failed", "cancelled", "evicted")


@dataclass(frozen=True)
class CheckpointPayload:
    """One checkpoint as it crosses the control plane.

    ``path`` always names the file on the *source* replica's directory
    (kept for parked-session resume hints); ``data`` carries the full
    RPCK bytes when the checkpoint came over a wire.  A transport asked
    to resume from a payload without bytes reads ``path`` itself — every
    replica of one cluster shares the controller's checkpoint tree.
    """

    path: str
    data: Optional[bytes] = None

    def read(self) -> bytes:
        """The checkpoint bytes, loading them from ``path`` if needed."""
        if self.data is not None:
            return self.data
        with open(self.path, "rb") as stream:
            return stream.read()


class ReplicaTransport:
    """The protocol a cluster replica speaks, backend-independent.

    Implementations also carry ``index`` (position in the cluster),
    ``kind`` (``"inprocess"`` | ``"process"``), ``checkpoint_dir`` (the
    replica's own checkpoint directory or ``None``), the liveness surface
    (``healthy``, ``heartbeat_age``), and the transport counters
    (``frames_sent``/``frames_received``/``wire_bytes_sent``/
    ``wire_bytes_received`` — zero for in-process replicas).
    """

    def submit(
        self,
        spec: SessionSpec,
        checkpoint_every: Optional[int] = None,
        resume: Optional[CheckpointPayload] = None,
    ):
        """Admit one session (fresh, or resumed from a checkpoint payload)."""
        raise NotImplementedError

    def evict(
        self, session_id: int, timeout: Optional[float] = None
    ) -> Optional[CheckpointPayload]:
        """Checkpoint-and-abandon one live session; ``None`` if it settled
        before reaching a boundary."""
        raise NotImplementedError

    def resume(self, checkpoint_path: str, checkpoint_every: Optional[int] = None):
        """Re-admit a session from a checkpoint file on this replica."""
        raise NotImplementedError

    def stats(self) -> ServiceStats:
        """The replica's service snapshot (last known one if it is down)."""
        raise NotImplementedError

    def close(
        self, wait: bool = True, park: bool = False
    ) -> Optional[List[str]]:
        """Shut the replica down; with ``park=True`` returns parked paths."""
        raise NotImplementedError


# ----------------------------------------------------------------------
# in-process backend (PR 9 behavior, preserved)
# ----------------------------------------------------------------------
class InProcessHandle:
    """A replica handle backed by an engine handle in this process."""

    def __init__(self, handle: SessionHandle) -> None:
        self._handle = handle

    @property
    def spec(self) -> SessionSpec:
        return self._handle.spec

    @property
    def session_id(self) -> int:
        return self._handle.session_id

    @property
    def wall_seconds(self) -> float:
        return self._handle.wall_seconds

    @property
    def migratable(self) -> bool:
        """Whether the session can move (it writes checkpoints)."""
        return self._handle._checkpointer is not None

    def poll(self) -> str:
        """Current lifecycle status of the underlying engine session."""
        return self._handle.poll()

    def done(self) -> bool:
        """Whether the session has settled (any terminal status)."""
        return self._handle.done()

    def wait(self, timeout: Optional[float] = None) -> str:
        """Block until the session settles; returns the final status."""
        return self._handle.wait(timeout=timeout)

    def result(self, timeout: Optional[float] = None) -> SessionResult:
        """The session result, re-raising its failure if it has one."""
        return self._handle.result(timeout=timeout)

    def cancel(self) -> bool:
        """Cancel the session if it has not finished; True on success."""
        return self._handle.cancel()

    def request_evict(self) -> None:
        """Ask for a checkpoint-and-abandon at the next round boundary."""
        self._handle._checkpointer.request_evict()

    def evicted_path(self) -> Optional[str]:
        """The checkpoint file of a settled eviction, else ``None``."""
        if not self._handle.done():
            return None
        exc = self._handle._future.exception()
        return getattr(exc, "path", None)


class InProcessReplica(ReplicaTransport):
    """The original backend: a :class:`MiningService` in this process."""

    kind = "inprocess"

    def __init__(self, index: int, service: MiningService) -> None:
        self.index = index
        self.service = service
        self.checkpoint_dir = service.checkpoint_dir
        self.frames_sent = 0
        self.frames_received = 0
        self.wire_bytes_sent = 0
        self.wire_bytes_received = 0

    @property
    def healthy(self) -> bool:
        """An in-process replica lives exactly as long as the controller."""
        return True

    @property
    def heartbeat_age(self) -> float:
        """Seconds since liveness was confirmed (always now, in-process)."""
        return 0.0

    def submit(
        self,
        spec: SessionSpec,
        checkpoint_every: Optional[int] = None,
        resume: Optional[CheckpointPayload] = None,
    ) -> InProcessHandle:
        return InProcessHandle(
            self.service.submit(
                spec,
                resume_from=None if resume is None else resume.path,
                checkpoint_every=checkpoint_every,
            )
        )

    def evict(
        self, session_id: int, timeout: Optional[float] = None
    ) -> Optional[CheckpointPayload]:
        path = self.service.evict(session_id, timeout=timeout)
        return None if path is None else CheckpointPayload(path)

    def resume(
        self, checkpoint_path: str, checkpoint_every: Optional[int] = None
    ) -> InProcessHandle:
        return InProcessHandle(
            self.service.resume(
                checkpoint_path, checkpoint_every=checkpoint_every
            )
        )

    def stats(self) -> ServiceStats:
        return self.service.stats()

    def close(
        self, wait: bool = True, park: bool = False
    ) -> Optional[List[str]]:
        return self.service.close(wait=wait, park=park)


# ----------------------------------------------------------------------
# process backend
# ----------------------------------------------------------------------
class _InterruptShield:
    """Defer ``SIGINT`` for the duration of one framed exchange.

    The replica protocol is strictly request/response on one stream, so
    an exchange must be atomic with respect to Ctrl-C: an interrupt
    raised after ``write_frame`` but before ``read_frame`` completes
    abandons the in-flight response in the kernel buffer, and every
    subsequent RPC then unwraps some earlier reply — including the
    interrupt handler's own ``close(park=True)``.  Inside the main
    thread, this context manager swaps in a capturing ``SIGINT`` handler
    and re-raises :class:`KeyboardInterrupt` once the exchange finishes;
    in other threads (heartbeat, recovery) it is a no-op, since signals
    are only ever delivered to the main thread anyway.
    """

    def __enter__(self) -> "_InterruptShield":
        self._pending = False
        self._installed = False
        self._previous: Any = None
        if threading.current_thread() is threading.main_thread():
            try:
                self._previous = signal.signal(signal.SIGINT, self._capture)
                self._installed = True
            except ValueError:  # pragma: no cover — embedded interpreter
                pass
        return self

    def _capture(self, signum: int, frame: Any) -> None:
        self._pending = True

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        if self._installed:
            restore = (
                self._previous
                if self._previous is not None
                else signal.default_int_handler
            )
            signal.signal(signal.SIGINT, restore)
            if self._pending and exc_type is None:
                raise KeyboardInterrupt
        return False


class _CountingSocket:
    """Socket facade feeding the replica's wire counters."""

    def __init__(self, sock: socket.socket, owner: "ProcessReplica") -> None:
        self._sock = sock
        self._owner = owner

    def recv(self, n: int) -> bytes:
        data = self._sock.recv(n)
        self._owner.wire_bytes_received += len(data)
        return data

    def sendall(self, data: bytes) -> None:
        self._sock.sendall(data)
        self._owner.wire_bytes_sent += len(data)


class RemoteHandle:
    """A replica handle backed by a session in another process.

    Statuses are the engine's; a handle whose replica died reports
    ``"lost"`` — the cluster session layer treats it like a handoff in
    flight and waits for crash recovery to install a replacement handle.
    """

    def __init__(
        self,
        replica: "ProcessReplica",
        spec: SessionSpec,
        session_id: int,
        migratable: bool,
    ) -> None:
        self.spec = spec
        self.session_id = session_id
        self._replica = replica
        self._migratable = migratable
        self._wall_seconds = 0.0
        # Last terminal status seen; a settled session stays settled even
        # after its replica is gone (closed or crashed).
        self._settled: Optional[str] = None

    @property
    def migratable(self) -> bool:
        """Whether the session can move (it writes checkpoints)."""
        return self._migratable

    @property
    def wall_seconds(self) -> float:
        """Last observed execution wall clock (refreshed by ``poll``)."""
        self.poll()
        return self._wall_seconds

    def poll(self) -> str:
        """Current status over the wire; ``"lost"`` if the replica died."""
        if self._settled is not None:
            return self._settled
        if not self._replica.healthy:
            return "lost"
        try:
            value = self._replica._rpc("poll", session_id=self.session_id)
        except TransportError:
            return "lost"
        self._wall_seconds = value["wall_seconds"]
        status = value["status"]
        if status in _SETTLED:
            self._settled = status
        return status

    def done(self) -> bool:
        """Whether the session has settled (any terminal status)."""
        return self.poll() in _SETTLED

    def wait(self, timeout: Optional[float] = None) -> str:
        """Block until the session settles, the timeout lapses, or the
        replica dies (``"lost"``) — chunked so one waiter cannot pin the
        connection while the heartbeat needs it."""
        if self._settled is not None:
            return self._settled
        deadline = (
            None if timeout is None else time.perf_counter() + timeout
        )
        status = "lost"
        while self._replica.healthy:
            remaining = (
                None
                if deadline is None
                else max(0.0, deadline - time.perf_counter())
            )
            chunk = 0.25 if remaining is None else min(0.25, remaining)
            try:
                value = self._replica._rpc(
                    "wait", session_id=self.session_id, timeout=chunk
                )
            except TransportError:
                return "lost"
            status = value["status"]
            if status in _SETTLED:
                self._settled = status
                return status
            if remaining is not None and remaining <= chunk:
                return status
        return "lost"

    def result(self, timeout: Optional[float] = None) -> SessionResult:
        """Fetch the settled result over the wire and rehydrate it."""
        status = self.wait(timeout=timeout)
        if status == "lost":
            raise TransportError(
                f"replica {self._replica.index} died while owning session "
                f"{self.session_id}"
            )
        value = self._replica._rpc(
            "result", session_id=self.session_id, timeout=timeout
        )
        return result_from_wire(value["result"])

    def cancel(self) -> bool:
        """Cancel on the owning replica; False if it cannot be reached."""
        try:
            value = self._replica._rpc("cancel", session_id=self.session_id)
        except TransportError:
            return False
        return bool(value["cancelled"])

    def request_evict(self) -> None:
        """Ask for a checkpoint-and-abandon at the next round boundary."""
        self._replica._rpc("request_evict", session_id=self.session_id)

    def evicted_path(self) -> Optional[str]:
        """The checkpoint file of a settled eviction, else ``None``."""
        try:
            value = self._replica._rpc(
                "collect_evicted", session_id=self.session_id, timeout=5.0
            )
        except TransportError:
            return None
        return value["path"]


def _offline_stats() -> ServiceStats:
    """The snapshot of a replica that died before reporting anything."""
    return ServiceStats(
        elapsed_seconds=0.0, submitted=0, rejected=0, completed=0, failed=0,
        cancelled=0, evicted=0, active=0, records=0, messages=0, bytes=0,
        tenants=(),
        pool=PoolStats(
            backend="process", workers=0, tasks=0, batches=0,
            busy_seconds=0.0, utilization=0.0,
        ),
    )


class ProcessReplica(ReplicaTransport):
    """A replica in a separate OS process behind the framed protocol.

    Parameters
    ----------
    index:
        This replica's position in the cluster (labels, placement).
    service_kwargs:
        Constructor arguments for the child's :class:`MiningService`
        (``max_inflight``, ``shard_backend``, ``checkpoint_dir``, ...).
        Must be codec-encodable; tenant policies travel as plain field
        mappings.
    heartbeat_interval:
        Seconds between liveness checks.  Every tick checks the child
        process; when the connection is idle, an application ``ping``
        additionally guards against a wedged-but-alive child.
    on_death:
        Called **exactly once**, with this replica's index, from a
        dedicated thread, when the child is found dead — the controller
        hangs crash recovery off it.
    """

    kind = "process"

    def __init__(
        self,
        index: int,
        service_kwargs: Dict[str, Any],
        heartbeat_interval: float = 0.2,
        on_death: Optional[Callable[[int], None]] = None,
    ) -> None:
        self.index = index
        self.checkpoint_dir = service_kwargs.get("checkpoint_dir")
        self.frames_sent = 0
        self.frames_received = 0
        self.wire_bytes_sent = 0
        self.wire_bytes_received = 0
        self._lock = threading.RLock()
        self._death_lock = threading.Lock()
        self._dead = False
        self._on_death = on_death
        self._stats_cache: Optional[ServiceStats] = None
        self._last_heartbeat = time.perf_counter()
        self._stop = threading.Event()
        self._heartbeat_interval = heartbeat_interval

        parent_sock, child_sock = socket.socketpair()
        # The child must import this package; inherit our resolution.
        package_root = os.path.dirname(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            package_root
            + (os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
        )
        # ``start_new_session`` detaches the child from the terminal's
        # process group: a Ctrl-C reaches only the parent, which parks
        # sessions and then terminates replicas deliberately.
        self._process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cluster.replica",
                str(child_sock.fileno()),
            ],
            pass_fds=(child_sock.fileno(),),
            start_new_session=True,
            env=env,
        )
        child_sock.close()
        self._sock = parent_sock
        self._stream = _CountingSocket(parent_sock, self)
        try:
            value = self._rpc("init", service=dict(service_kwargs))
        except BaseException:
            self._process.kill()
            self._process.wait()
            parent_sock.close()
            raise
        self.pid = value["pid"]
        self._heartbeat = threading.Thread(
            target=self._heartbeat_loop,
            name=f"repro-replica-{index}-heartbeat",
            daemon=True,
        )
        self._heartbeat.start()

    # -- liveness -------------------------------------------------------
    @property
    def healthy(self) -> bool:
        """False once the child process died or the connection broke."""
        return not self._dead

    @property
    def heartbeat_age(self) -> float:
        """Seconds since the child last proved it is alive."""
        return time.perf_counter() - self._last_heartbeat

    def _mark_dead(self) -> None:
        with self._death_lock:
            if self._dead:
                return
            self._dead = True
        # The dead replica runs nothing any more: its last snapshot's
        # in-flight counts would otherwise haunt the cluster sums while
        # recovery re-places those sessions elsewhere.
        if self._stats_cache is not None:
            self._stats_cache.active = 0
            for tenant in self._stats_cache.tenants:
                tenant.active = 0
        callback = self._on_death
        if callback is not None:
            # A fresh thread: death is often discovered mid-RPC under
            # arbitrary caller locks, and recovery needs the controller's.
            threading.Thread(
                target=callback,
                args=(self.index,),
                name=f"repro-replica-{self.index}-recovery",
                daemon=True,
            ).start()

    def _heartbeat_loop(self) -> None:
        while not self._stop.wait(self._heartbeat_interval):
            if self._dead:
                return
            if self._process.poll() is not None:
                self._mark_dead()
                return
            # Ping only when the connection is idle: a held lock means an
            # RPC is in flight, which is liveness evidence by itself.
            if not self._lock.acquire(blocking=False):
                continue
            try:
                if self._dead or self._stop.is_set():
                    return
                self._sock.settimeout(max(2.0, 10 * self._heartbeat_interval))
                try:
                    write_frame(self._stream, {"op": "ping"})
                    self.frames_sent += 1
                    response = read_frame(self._stream)
                except (OSError, TransportError):
                    # Timeout or broken pipe with an idle child: wedged
                    # or gone.  (A timed-out ping also desynchronizes the
                    # framing, so the connection is unusable either way.)
                    self._mark_dead()
                    return
                finally:
                    self._sock.settimeout(None)
                if response is None:
                    self._mark_dead()
                    return
                self.frames_received += 1
                self._last_heartbeat = time.perf_counter()
            finally:
                self._lock.release()

    # -- the RPC plumbing ----------------------------------------------
    def _rpc(self, op: str, **fields: Any) -> Any:
        """One request/response exchange; raises :class:`TransportError`
        (after marking the replica dead) when the child is unreachable.

        The exchange is shielded from ``SIGINT``: a Ctrl-C landing between
        the request write and the response read would leave that response
        unread in the socket buffer, desynchronizing the framing for every
        later call (the interrupt path itself — park-on-shutdown — would
        then read a stale reply).  The shield defers the interrupt to the
        frame boundary, so Ctrl-C still lands, just never mid-exchange.
        """
        request = {"op": op, **fields}
        with self._lock, _InterruptShield():
            if self._dead:
                raise TransportError(
                    f"replica {self.index} is down; cannot send {op!r}"
                )
            try:
                write_frame(self._stream, request)
                self.frames_sent += 1
                response = read_frame(self._stream)
            except (OSError, TransportError) as exc:
                self._mark_dead()
                raise TransportError(
                    f"replica {self.index} connection failed during {op!r}: "
                    f"{exc}"
                ) from exc
            if response is None:
                self._mark_dead()
                raise TransportError(
                    f"replica {self.index} closed its connection during {op!r}"
                )
            self.frames_received += 1
            self._last_heartbeat = time.perf_counter()
        return unwrap_response(response)

    def _refresh_stats(self) -> None:
        try:
            value = self._rpc("stats")
        except TransportError:
            return
        self._stats_cache = stats_from_wire(value["stats"])

    # -- the transport surface -----------------------------------------
    def submit(
        self,
        spec: SessionSpec,
        checkpoint_every: Optional[int] = None,
        resume: Optional[CheckpointPayload] = None,
    ) -> RemoteHandle:
        try:
            if resume is not None:
                value = self._rpc(
                    "submit",
                    resume=resume.read(),
                    checkpoint_every=checkpoint_every,
                )
            else:
                value = self._rpc(
                    "submit",
                    spec=dict(spec.to_mapping()),
                    checkpoint_every=checkpoint_every,
                )
        except TransportError as exc:
            # To admission control, a dead replica and a full replica are
            # the same answer: place the session somewhere else.
            raise AdmissionError(
                f"replica {self.index} is down: {exc}"
            ) from exc
        handle = RemoteHandle(
            self,
            spec,
            value["session_id"],
            migratable=(
                self.checkpoint_dir is not None and spec.kind == "stream"
            ),
        )
        # Keep the cached snapshot current: if this replica dies, its
        # last-known counters (this submission included) still feed the
        # cluster's conservation sums.
        self._refresh_stats()
        return handle

    def evict(
        self, session_id: int, timeout: Optional[float] = None
    ) -> Optional[CheckpointPayload]:
        value = self._rpc("request_evict", session_id=session_id)
        if not value["evictable"]:
            raise CheckpointError(
                f"session {session_id} on replica {self.index} is not "
                f"evictable: it writes no checkpoints"
            )
        value = self._rpc(
            "collect_evicted", session_id=session_id, timeout=timeout
        )
        self._refresh_stats()
        if value["status"] != "evicted":
            return None
        return CheckpointPayload(path=value["path"], data=value["data"])

    def resume(
        self, checkpoint_path: str, checkpoint_every: Optional[int] = None
    ) -> RemoteHandle:
        data = CheckpointPayload(checkpoint_path).read()
        ckpt = loads_checkpoint(data, origin=f"{checkpoint_path!r}")
        mapping = ckpt.spec
        if mapping is None:
            raise CheckpointError(
                f"checkpoint {checkpoint_path!r} carries no session spec; it "
                f"was not written by a serving engine and cannot be re-admitted"
            )
        spec = SessionSpec.from_mapping(mapping)
        value = self._rpc(
            "submit", resume=data, checkpoint_every=checkpoint_every
        )
        handle = RemoteHandle(
            self, spec, value["session_id"], migratable=True
        )
        self._refresh_stats()
        return handle

    def stats(self) -> ServiceStats:
        if self._dead:
            return (
                self._stats_cache
                if self._stats_cache is not None
                else _offline_stats()
            )
        try:
            value = self._rpc("stats")
        except TransportError:
            return (
                self._stats_cache
                if self._stats_cache is not None
                else _offline_stats()
            )
        self._stats_cache = stats_from_wire(value["stats"])
        return self._stats_cache

    def close(
        self, wait: bool = True, park: bool = False
    ) -> Optional[List[str]]:
        self._stop.set()
        parked: Optional[List[str]] = [] if park else None
        if not self._dead:
            try:
                value = self._rpc("close", wait=wait, park=park)
                parked = value["parked"]
                self._rpc("shutdown")
            except TransportError:
                pass
        try:
            self._process.wait(timeout=10.0 if wait else 2.0)
        except subprocess.TimeoutExpired:
            self._process.terminate()
            try:
                self._process.wait(timeout=5.0)
            except subprocess.TimeoutExpired:
                self._process.kill()
                self._process.wait()
        self._dead = True
        self._sock.close()
        if self._heartbeat.is_alive():
            self._heartbeat.join(timeout=1.0)
        return parked
