"""Pluggable session-placement policies for the cluster controller.

A placement policy answers one question at submit time: *which replica
gets this session?*  It is a plain callable::

    policy(spec, session_id, eligible, cluster) -> replica index

where ``eligible`` is the tuple of replica indices currently accepting
work (draining replicas are excluded before the policy runs) and
``cluster`` is the :class:`~repro.cluster.ClusterController` itself, for
policies that want live load figures.  The policy only chooses *where* a
session runs; results are bit-identical on every replica, so placement is
purely a capacity/locality decision and never a correctness one.

Three built-ins cover the common shapes:

``hash``
    Deterministic spread: sha256 over a stable session key.  Stateless
    and reproducible — the same workload always lands the same way.
``least_loaded``
    Greedy: the replica with the fewest active sessions, breaking ties by
    the metered pool's occupancy ledger (``busy_seconds``), then index.
``tenant``
    Tenant affinity: every session of a tenant lands on the same replica
    (sha256 over the tenant name).  This is the multi-level-trust shape —
    tenants partitioned by trust/budget class each keep their perturbation
    spaces on one replica's pool.
"""

from __future__ import annotations

import hashlib
from typing import Any, Callable, Sequence, Tuple

__all__ = [
    "PLACEMENT_POLICIES",
    "hash_placement",
    "least_loaded_placement",
    "tenant_placement",
    "resolve_placement",
]

#: signature of a placement policy
PlacementPolicy = Callable[[Any, int, Sequence[int], Any], int]


def _bucket(key: str, eligible: Sequence[int]) -> int:
    digest = hashlib.sha256(key.encode("utf-8")).digest()
    return eligible[int.from_bytes(digest[:8], "big") % len(eligible)]


def hash_placement(
    spec: Any, session_id: int, eligible: Sequence[int], cluster: Any
) -> int:
    """Deterministic spread over a stable per-session key."""
    key = f"{spec.tenant}|{spec.display_label}|{spec.seed}|{session_id}"
    return _bucket(key, eligible)


def tenant_placement(
    spec: Any, session_id: int, eligible: Sequence[int], cluster: Any
) -> int:
    """Tenant affinity: one replica owns all of a tenant's sessions."""
    return _bucket(spec.tenant, eligible)


def least_loaded_placement(
    spec: Any, session_id: int, eligible: Sequence[int], cluster: Any
) -> int:
    """Fewest active sessions, ties broken by pool occupancy, then index."""

    def load(index: int) -> Tuple[int, float, int]:
        stats = cluster.replicas[index].stats()
        return (stats.active, stats.pool.busy_seconds, index)

    return min(eligible, key=load)


#: built-in policies by CLI/constructor name
PLACEMENT_POLICIES = {
    "hash": hash_placement,
    "least_loaded": least_loaded_placement,
    "tenant": tenant_placement,
}


def resolve_placement(policy: Any) -> Tuple[str, PlacementPolicy]:
    """``(name, callable)`` from a policy name or a custom callable."""
    if callable(policy):
        return getattr(policy, "__name__", "custom"), policy
    try:
        return policy, PLACEMENT_POLICIES[policy]
    except (KeyError, TypeError):
        known = ", ".join(sorted(PLACEMENT_POLICIES))
        raise ValueError(
            f"unknown placement policy {policy!r}; choose one of {known} "
            f"or pass a callable"
        ) from None
