"""The replica wire protocol: length-prefixed frames of codec payloads.

One frame is a 4-byte big-endian unsigned length followed by exactly that
many bytes of :mod:`repro.checkpoint.codec` data encoding a single dict —
the same pickle-free tagged format the checkpoint files use, so numpy
arrays, big integers, and insertion-ordered mappings cross the process
boundary exactly.  On top of frames sit two message shapes:

* a **request** ``{"op": <str>, ...}`` — one operation of the narrow
  replica surface (submit / poll / result / cancel / evict / resume /
  stats / ping / close / shutdown);
* a **response** ``{"ok": True, "value": ...}`` or ``{"ok": False,
  "error": <message>, "error_type": <name>}`` — errors are re-raised on
  the calling side as the closest local exception type, so admission
  refusals and checkpoint damage keep their distinct classes across the
  wire.

Every malformed input is a :class:`TransportError` with a distinct,
friendly message — a truncated length prefix, a truncated body, an
implausibly huge frame (corrupt prefix), an undecodable payload, a
non-mapping payload.  Reads never block past the bytes the peer actually
sent mid-frame; a clean EOF *between* frames reads as ``None`` (the peer
closed), never as an error.  The frame functions work against anything
with ``recv``/``sendall`` (sockets) or ``read``/``write`` (pipes,
``io.BytesIO``) — which is what makes the fuzz tests cheap.
"""

from __future__ import annotations

import struct
from typing import Any, Dict, Optional

from ..checkpoint import CheckpointError, CodecError, decode, encode
from ..serve.engine import AdmissionError
from ..serve.wire import WireError

__all__ = [
    "MAX_FRAME_BYTES",
    "TransportError",
    "read_frame",
    "write_frame",
    "ok_response",
    "error_response",
    "unwrap_response",
]

_LENGTH = struct.Struct(">I")

#: refuse frames claiming more than this many payload bytes — a corrupt
#: or adversarial length prefix must fail fast, not allocate gigabytes
MAX_FRAME_BYTES = 256 * 1024 * 1024


class TransportError(ValueError):
    """A malformed frame or a replica connection in a broken state."""


def _read_exact(stream: Any, n: int) -> bytes:
    """Read exactly ``n`` bytes; returns what arrived before EOF."""
    chunks = []
    remaining = n
    receiver = getattr(stream, "recv", None)
    while remaining > 0:
        if receiver is not None:
            chunk = receiver(remaining)
        else:
            chunk = stream.read(remaining)
        if not chunk:
            break
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def _write_all(stream: Any, data: bytes) -> None:
    sender = getattr(stream, "sendall", None)
    if sender is not None:
        sender(data)
        return
    stream.write(data)
    flush = getattr(stream, "flush", None)
    if flush is not None:
        flush()


def write_frame(stream: Any, payload: Dict[str, Any]) -> int:
    """Encode one mapping and send it as a frame; returns bytes written."""
    if not isinstance(payload, dict):
        raise TransportError(
            f"a frame payload must be a mapping, got {type(payload).__name__}"
        )
    try:
        body = encode(payload)
    except CodecError as exc:
        raise TransportError(f"cannot encode frame payload: {exc}") from exc
    frame = _LENGTH.pack(len(body)) + body
    _write_all(stream, frame)
    return len(frame)


def read_frame(stream: Any) -> Optional[Dict[str, Any]]:
    """Read one frame; ``None`` on a clean EOF before any prefix byte.

    Raises :class:`TransportError` for every damaged shape: a length
    prefix cut short, a body shorter than its prefix promised, a prefix
    claiming more than :data:`MAX_FRAME_BYTES`, bytes the codec cannot
    decode, or a decoded payload that is not a mapping.
    """
    prefix = _read_exact(stream, _LENGTH.size)
    if not prefix:
        return None
    if len(prefix) < _LENGTH.size:
        raise TransportError(
            f"truncated frame: got {len(prefix)} of {_LENGTH.size} length "
            f"prefix bytes before EOF"
        )
    (length,) = _LENGTH.unpack(prefix)
    if length > MAX_FRAME_BYTES:
        raise TransportError(
            f"frame claims {length} bytes (limit {MAX_FRAME_BYTES}); "
            f"refusing a corrupt or hostile length prefix"
        )
    body = _read_exact(stream, length)
    if len(body) < length:
        raise TransportError(
            f"truncated frame: got {len(body)} of {length} payload bytes "
            f"before EOF"
        )
    try:
        payload = decode(body)
    except CodecError as exc:
        raise TransportError(f"cannot decode frame payload: {exc}") from exc
    if not isinstance(payload, dict):
        raise TransportError(
            f"frame payload must be a mapping, got {type(payload).__name__}"
        )
    return payload


# ----------------------------------------------------------------------
# request/response envelopes
# ----------------------------------------------------------------------
#: exception classes that keep their identity across the wire; anything
#: else degrades to RuntimeError carrying the original type's name
_ERROR_TYPES = {
    "AdmissionError": AdmissionError,
    "CheckpointError": CheckpointError,
    "CodecError": CodecError,
    "TransportError": TransportError,
    "WireError": WireError,
    "ValueError": ValueError,
    "KeyError": KeyError,
    "TypeError": TypeError,
    "RuntimeError": RuntimeError,
}


def ok_response(value: Any = None) -> Dict[str, Any]:
    """The success envelope for one replica operation."""
    return {"ok": True, "value": value}


def error_response(exc: BaseException) -> Dict[str, Any]:
    """The failure envelope: message plus the exception's type name."""
    return {"ok": False, "error": str(exc), "error_type": type(exc).__name__}


def unwrap_response(response: Optional[Dict[str, Any]]) -> Any:
    """Return a response's value, re-raising a carried error locally.

    The error type is mapped back to the closest local class (admission
    refusals stay :class:`AdmissionError`, checkpoint damage stays
    :class:`CheckpointError`, ...); unknown types surface as
    :class:`RuntimeError` prefixed with the remote type's name.
    """
    if response is None:
        raise TransportError("replica closed the connection mid-request")
    if response.get("ok"):
        return response.get("value")
    message = str(response.get("error", "unknown replica error"))
    type_name = str(response.get("error_type", "RuntimeError"))
    error_type = _ERROR_TYPES.get(type_name)
    if error_type is None:
        raise RuntimeError(f"{type_name}: {message}")
    raise error_type(message)
