"""The process replica: a :class:`MiningService` behind a framed socket.

This module is the **child side** of the cluster's process backend.  The
parent (:class:`repro.cluster.transport.ProcessReplica`) spawns

.. code-block:: text

    python -m repro.cluster.replica <fd>

with one end of a ``socketpair`` inherited as file descriptor ``fd``,
then drives the narrow replica surface over
:mod:`repro.cluster.protocol` frames.  The child is deliberately
single-threaded at the protocol layer: requests are handled strictly in
arrival order (the engine underneath still runs its own driver threads),
which makes the protocol trivially race-free and keeps every blocking
operation — ``wait``, ``evict``, ``close`` — an explicit, parent-chosen
cost.

Checkpoints cross the boundary as **bytes in the RPCK file format**
(:func:`repro.checkpoint.dumps_checkpoint` output): a ``submit`` carrying
``resume`` bytes is written into the replica's own checkpoint directory
and re-admitted from there, so the receiving engine validates magic,
schema version, and digest exactly as it would for a local file — a
corrupted migration payload is refused with the same distinct
:class:`~repro.checkpoint.CheckpointError` messages, never silently
resumed.

Crash semantics: the child ignores ``SIGINT`` (the parent owns interrupt
handling and parks sessions before terminating children — no orphaned
workers on Ctrl-C) and exits when its socket reaches EOF, so a dead
parent can never leak a replica.
"""

from __future__ import annotations

import os
import signal
import socket
import sys
from typing import Any, Dict, Optional, Tuple

from ..checkpoint import CheckpointError
from ..serve.engine import MiningService, SessionHandle, TenantPolicy
from ..serve.wire import result_to_wire, stats_to_wire
from .protocol import error_response, ok_response, read_frame, write_frame

__all__ = ["ReplicaServer", "serve_connection", "main"]


def _policies(mapping: Optional[Dict[str, Any]]) -> Optional[Dict[str, TenantPolicy]]:
    if not mapping:
        return None
    return {
        tenant: TenantPolicy(**dict(fields)) for tenant, fields in mapping.items()
    }


class ReplicaServer:
    """One replica's operation handlers around an owned engine.

    Separated from the socket loop so tests can drive the exact protocol
    against in-memory streams — including malformed ones — without
    spawning a process.
    """

    def __init__(self, service: MiningService) -> None:
        self.service = service
        # The engine settles (forgets) finished handles; the replica keeps
        # every handle it admitted so the parent can poll/collect results
        # at its own pace.
        self._handles: Dict[int, SessionHandle] = {}
        self._resume_counter = 0

    # -- handlers: each returns (response, keep_serving) ----------------
    def _handle(self, session_id: Any) -> SessionHandle:
        handle = self._handles.get(session_id)
        if handle is None:
            raise KeyError(f"no session {session_id!r} on this replica")
        return handle

    def _op_ping(self, request: Dict[str, Any]) -> Dict[str, Any]:
        return {"pid": os.getpid(), "active": len(self._handles)}

    def _op_submit(self, request: Dict[str, Any]) -> Dict[str, Any]:
        checkpoint_every = request.get("checkpoint_every")
        resume = request.get("resume")
        if resume is not None:
            directory = self.service.checkpoint_dir
            if directory is None:
                raise CheckpointError(
                    "this replica has no checkpoint directory; it cannot "
                    "accept a checkpoint-over-the-wire resume"
                )
            os.makedirs(directory, exist_ok=True)
            self._resume_counter += 1
            path = os.path.join(
                directory, f"wire-{self._resume_counter:05d}.ckpt"
            )
            with open(path, "wb") as stream:
                stream.write(resume)
            handle = self.service.resume(path, checkpoint_every=checkpoint_every)
        else:
            handle = self.service.submit(
                request["spec"], checkpoint_every=checkpoint_every
            )
        self._handles[handle.session_id] = handle
        return {"session_id": handle.session_id}

    def _op_poll(self, request: Dict[str, Any]) -> Dict[str, Any]:
        handle = self._handle(request["session_id"])
        return {
            "status": handle.poll(),
            "wall_seconds": handle.wall_seconds,
            "queue_seconds": handle.queue_seconds,
            "migratable": handle._checkpointer is not None,
        }

    def _op_wait(self, request: Dict[str, Any]) -> Dict[str, Any]:
        handle = self._handle(request["session_id"])
        status = handle.wait(timeout=request.get("timeout"))
        return {"status": status}

    def _op_result(self, request: Dict[str, Any]) -> Dict[str, Any]:
        handle = self._handle(request["session_id"])
        # Re-raises the session's own failure; the loop wraps it into an
        # error envelope with its type preserved.
        result = handle.result(timeout=request.get("timeout"))
        return {"result": result_to_wire(result)}

    def _op_cancel(self, request: Dict[str, Any]) -> Dict[str, Any]:
        handle = self._handle(request["session_id"])
        return {"cancelled": handle.cancel()}

    def _op_request_evict(self, request: Dict[str, Any]) -> Dict[str, Any]:
        handle = self._handle(request["session_id"])
        if handle._checkpointer is None:
            return {"evictable": False}
        handle._checkpointer.request_evict()
        return {"evictable": True}

    def _op_collect_evicted(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """After an eviction settles: the checkpoint path *and its bytes*.

        The bytes travel back to the control plane so a migration can ship
        them straight to another replica without sharing a filesystem.
        """
        handle = self._handle(request["session_id"])
        status = handle.wait(timeout=request.get("timeout"))
        if status != "evicted":
            return {"status": status, "path": None, "data": None}
        path = handle._future.exception().path
        with open(path, "rb") as stream:
            data = stream.read()
        return {"status": status, "path": path, "data": data}

    def _op_stats(self, request: Dict[str, Any]) -> Dict[str, Any]:
        return {"stats": stats_to_wire(self.service.stats())}

    def _op_close(self, request: Dict[str, Any]) -> Dict[str, Any]:
        parked = self.service.close(
            wait=bool(request.get("wait", True)),
            park=bool(request.get("park", False)),
        )
        return {"parked": parked}

    _OPS = {
        "ping": _op_ping,
        "submit": _op_submit,
        "poll": _op_poll,
        "wait": _op_wait,
        "result": _op_result,
        "cancel": _op_cancel,
        "request_evict": _op_request_evict,
        "collect_evicted": _op_collect_evicted,
        "stats": _op_stats,
        "close": _op_close,
    }

    def handle_request(
        self, request: Dict[str, Any]
    ) -> Tuple[Dict[str, Any], bool]:
        """Dispatch one request; returns ``(response, keep_serving)``."""
        op = request.get("op")
        if op == "shutdown":
            return ok_response({"pid": os.getpid()}), False
        handler = self._OPS.get(op)
        if handler is None:
            return (
                error_response(
                    ValueError(f"unknown replica operation {op!r}")
                ),
                True,
            )
        try:
            return ok_response(handler(self, request)), True
        except BaseException as exc:  # noqa: BLE001 — every error crosses back
            return error_response(exc), True


def serve_connection(stream: Any, service: MiningService) -> None:
    """Serve the replica protocol on one connection until EOF/shutdown.

    A connection reset or broken pipe means the parent went away (or
    closed the socket hard on its own interrupt path) — for the child
    that is the same instruction as EOF: stop serving, exit cleanly, no
    traceback on the shared stderr.
    """
    server = ReplicaServer(service)
    serving = True
    while serving:
        try:
            request = read_frame(stream)
        except OSError:
            break
        if request is None:
            break
        response, serving = server.handle_request(request)
        try:
            write_frame(stream, response)
        except OSError:
            break


def main(argv: Optional[list] = None) -> int:
    """Child entrypoint: ``python -m repro.cluster.replica <fd>``.

    The first frame must be ``{"op": "init", "service": {...}}`` naming
    the engine's constructor arguments; everything after is the normal
    operation stream.
    """
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) != 1:
        print("usage: python -m repro.cluster.replica <socket-fd>", file=sys.stderr)
        return 2
    # The parent owns interrupt handling: it parks sessions, then
    # terminates replicas explicitly.  A terminal Ctrl-C must never kill
    # the child mid-checkpoint.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    sock = socket.socket(fileno=int(argv[0]))
    try:
        init = read_frame(sock)
        if init is None or init.get("op") != "init":
            write_frame(
                sock,
                error_response(
                    ValueError("the first frame must be the init request")
                ),
            )
            return 1
        try:
            kwargs = dict(init.get("service") or {})
            kwargs["tenants"] = _policies(kwargs.get("tenants"))
            service = MiningService(**kwargs)
        except BaseException as exc:  # noqa: BLE001 — parent must see why
            write_frame(sock, error_response(exc))
            return 1
        write_frame(sock, ok_response({"pid": os.getpid()}))
        try:
            serve_connection(sock, service)
        finally:
            service.close(wait=False)
    finally:
        sock.close()
    return 0


if __name__ == "__main__":  # pragma: no cover — exercised via subprocess
    sys.exit(main())
