"""Multi-replica serving over checkpoints.

:class:`ClusterController` is a **control plane**: it never touches an
engine directly any more, only the narrow
:class:`~repro.cluster.transport.ReplicaTransport` surface — submit /
poll / result / evict / resume / stats / health — with checkpoints
crossing as opaque RPCK payloads.  Two interchangeable backends plug in:

* ``backend="inprocess"`` (default) — N
  :class:`~repro.serve.engine.MiningService` replicas in this process,
  exactly the previous behavior;
* ``backend="process"`` — N replicas each running a service in its own
  OS process (:mod:`repro.cluster.replica`) behind a length-prefixed
  framed protocol, with heartbeat health checks and **crash recovery**:
  when a replica dies, every session it owned is re-admitted on the
  surviving replicas — from its newest intact checkpoint when one
  exists, from scratch otherwise (sessions are deterministic, so either
  way the final result is bit-identical to the undisturbed run).

The division of labor with the replicas:

* **Replica-level**: driver slots (``max_inflight``/``queue_limit``),
  the shared pool, checkpoint saves, per-session lifecycle.  Replicas
  carry *no* tenant policies.
* **Cluster-level** (this module): tenant budgets — enforced once, here,
  so a migration's re-admission on the destination replica does not
  double-charge ``max_sessions``/``privacy_budget`` — plus placement,
  migration, rebalancing, draining, crash recovery, and the merged
  :class:`ClusterStats` view.

Live migration follows the checkpoint layer's *drain rule*: a session
checkpoints only at a post-drain round boundary, so
:meth:`ClusterController.migrate` never stops the world — in-flight
rounds complete on the old owner, the state travels whole inside the
checkpoint payload, and the destination resumes through normal
admission.  Callers hold one :class:`ClusterSession` across any number
of hops, including the involuntary ones a crash forces.
"""

from __future__ import annotations

import math
import os
import threading
import time
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass
from typing import (
    Any,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..checkpoint import CheckpointError, list_checkpoints, loads_checkpoint
from ..obs import Telemetry, cluster_collector
from ..serve.engine import (
    AdmissionError,
    MiningService,
    ServiceStats,
    SessionResult,
    TenantPolicy,
    TenantStats,
)
from ..serve.spec import SessionSpec
from .placement import resolve_placement
from .transport import (
    CheckpointPayload,
    InProcessReplica,
    ProcessReplica,
    ReplicaTransport,
)

__all__ = [
    "ClusterError",
    "ClusterSession",
    "ClusterStats",
    "ClusterController",
]

#: replica backends a cluster can be built on
CLUSTER_BACKENDS = ("inprocess", "process")


class ClusterError(ValueError):
    """A cluster operation cannot proceed (bad target, parked session...).

    Subclasses :class:`ValueError` so the CLI's friendly exit-2 handling
    applies without special-casing.
    """


class ClusterSession:
    """One submitted session's cluster-wide identity, stable across hops.

    The engine hands out a fresh handle every time a session is
    (re-)admitted, so a migration — voluntary or crash-forced — would
    invalidate a raw handle.  This wrapper keeps one identity for the
    session's whole life: ``poll``/``wait``/``result`` follow the session
    to whichever replica currently owns it, blocking through handoffs
    (and through crash recovery, which is just a handoff the session did
    not ask for) instead of surfacing the internal eviction.
    """

    def __init__(
        self,
        spec: SessionSpec,
        session_id: int,
        replica: int,
        handle: Any,
        checkpoint_every: Optional[int],
    ) -> None:
        self.spec = spec
        self.session_id = session_id
        #: completed migration hops (crash recoveries included)
        self.migrations = 0
        self._cond = threading.Condition()
        self._replica = replica
        self._handle = handle
        # Bumped on every handoff; waiters blocked on the *old* handle's
        # eviction use it to tell "my handle was replaced" from "the
        # session really settled".
        self._epoch = 0
        self._migrating = False
        self._parked_path: Optional[str] = None
        self._checkpoint_every = checkpoint_every
        # Set only when a replica died and no surviving replica could
        # take the session back; terminal.
        self._lost_error: Optional[str] = None

    # -- state ----------------------------------------------------------
    @property
    def replica(self) -> int:
        """Index of the replica currently owning the session."""
        with self._cond:
            return self._replica

    @property
    def parked_path(self) -> Optional[str]:
        """The checkpoint file of a parked session, else ``None``."""
        with self._cond:
            return self._parked_path

    @property
    def wall_seconds(self) -> float:
        """Wall-clock seconds of the *current* hop's handle (a migrated
        session's earlier hops ran on other replicas' clocks)."""
        with self._cond:
            return self._handle.wall_seconds

    def poll(self) -> str:
        """Status: queued | running | migrating | parked | completed |
        failed | cancelled."""
        with self._cond:
            if self._parked_path is not None:
                return "parked"
            if self._lost_error is not None:
                return "failed"
            if self._migrating:
                return "migrating"
            status = self._handle.poll()
        # A handle settling "evicted" outside a marked handoff is the
        # instant between eviction and the park/handoff bookkeeping; a
        # "lost" handle is a crash recovery that has not claimed the
        # session yet.  Both resolve into a handoff.
        return "migrating" if status in ("evicted", "lost") else status

    def done(self) -> bool:
        """True once ``result`` would return (or raise) immediately."""
        return self.poll() in ("completed", "failed", "cancelled", "parked")

    # -- blocking -------------------------------------------------------
    def wait(self, timeout: Optional[float] = None) -> str:
        """Block through any handoffs until the session settles (or the
        timeout lapses); returns the final :meth:`poll` status."""
        deadline = _deadline(timeout)
        while True:
            with self._cond:
                if self._parked_path is not None:
                    return "parked"
                if self._lost_error is not None:
                    return "failed"
                handle = self._handle
                epoch = self._epoch
            status = handle.wait(timeout=_remaining(deadline))
            if status in ("completed", "failed", "cancelled"):
                return status
            if status in ("evicted", "lost"):
                if not self._await_handoff(epoch, deadline):
                    return self.poll()
                if self._stalled(epoch):
                    # The handoff (or the crash recovery) has not claimed
                    # the session yet; yield instead of hot-polling.
                    if deadline is not None and time.perf_counter() >= deadline:
                        return self.poll()
                    time.sleep(0.02)
                continue
            if deadline is not None and time.perf_counter() >= deadline:
                return self.poll()

    def result(self, timeout: Optional[float] = None) -> SessionResult:
        """Block for, then return, the session's result — across migrations.

        Raises :class:`ClusterError` if the session was parked (the
        checkpoint path is in the message; resume it to finish the run)
        or lost to a crash with nothing to recover from, re-raises the
        session's own exception if it failed, and
        :class:`concurrent.futures.TimeoutError` on timeout.
        """
        deadline = _deadline(timeout)
        while True:
            with self._cond:
                parked = self._parked_path
                lost = self._lost_error
                handle = self._handle
                epoch = self._epoch
            if parked is not None:
                raise ClusterError(
                    f"session {self.session_id} is parked at {parked!r}; "
                    f"resume it to finish the run"
                )
            if lost is not None:
                raise ClusterError(lost)
            status = handle.wait(timeout=_remaining(deadline))
            if status in ("completed", "failed", "cancelled"):
                return handle.result(timeout=_remaining(deadline))
            if status in ("evicted", "lost"):
                if not self._await_handoff(epoch, deadline):
                    raise FutureTimeoutError()
                if self._stalled(epoch):
                    if status == "evicted":
                        # An eviction that was not a cluster handoff;
                        # surface the SessionEvicted as the engine would.
                        return handle.result()
                    # Lost, recovery pending: yield, then re-check.
                    if deadline is not None and time.perf_counter() >= deadline:
                        raise FutureTimeoutError()
                    time.sleep(0.02)
                continue
            raise FutureTimeoutError()

    def _stalled(self, epoch: int) -> bool:
        """True when nothing replaced the epoch's handle (yet); i.e. the
        session neither handed off, parked, nor was declared lost."""
        with self._cond:
            return (
                self._epoch == epoch
                and not self._migrating
                and self._parked_path is None
                and self._lost_error is None
            )

    def _await_handoff(
        self, epoch: int, deadline: Optional[float]
    ) -> bool:
        """Wait out an in-flight handoff; False when the deadline lapsed."""
        with self._cond:
            while self._epoch == epoch and self._migrating:
                remaining = _remaining(deadline)
                if remaining is not None and remaining <= 0:
                    return False
                self._cond.wait(remaining)
        return True

    def cancel(self) -> bool:
        """Cancel while still queued on the owning replica; returns success.

        A session mid-handoff, parked, or lost cannot be cancelled (it
        holds no queue slot to give back).
        """
        with self._cond:
            if (
                self._migrating
                or self._parked_path is not None
                or self._lost_error is not None
            ):
                return False
            handle = self._handle
        return handle.cancel()

    # -- handoff bookkeeping (called by the controller) -----------------
    def _begin_handoff(self) -> Any:
        self._migrating = True
        return self._handle

    def _finish_handoff(self, replica: int, handle: Any) -> None:
        with self._cond:
            self._replica = replica
            self._handle = handle
            self._epoch += 1
            self._migrating = False
            self.migrations += 1
            self._parked_path = None
            self._cond.notify_all()

    def _abort_handoff(self, parked_path: Optional[str] = None) -> None:
        with self._cond:
            self._migrating = False
            if parked_path is not None:
                self._parked_path = parked_path
            self._cond.notify_all()

    def _mark_lost(self, message: str) -> None:
        with self._cond:
            self._migrating = False
            self._lost_error = message
            self._cond.notify_all()


@dataclass
class _ClusterTenant:
    """Cluster-level tenant budget accounting (under the cluster lock).

    Only monotonic counters live here; ``active`` is derived by scanning
    live sessions, so a migration — which never touches this ledger —
    cannot double-charge any budget.
    """

    policy: TenantPolicy
    submitted: int = 0
    privacy_sessions: int = 0
    rejected: int = 0


@dataclass
class ClusterStats:
    """A point-in-time snapshot of the whole cluster.

    ``completed``/``failed``/``cancelled``/``evicted``/``active`` and the
    ``records``/``messages``/``bytes`` traffic counters are *exact sums*
    of the per-replica :class:`ServiceStats` (the conservation invariant
    the property tests pin) — a dead process replica contributes its last
    reported snapshot, with in-flight counts zeroed, so nothing it did is
    forgotten and nothing it no longer runs is double-counted.
    ``submitted``/``rejected`` are cluster-level admissions: per-replica
    ``submitted`` counts every re-admission of a migrating or recovered
    session and so exceeds it by exactly ``migrations`` hops.
    """

    elapsed_seconds: float
    replicas: int
    placement: str
    submitted: int
    rejected: int
    migrations: int
    rebalances: int
    parked: int
    completed: int
    failed: int
    cancelled: int
    evicted: int
    active: int
    records: int
    messages: int
    bytes: int
    backend: str = "inprocess"
    healthy_replicas: int = 0
    recoveries: int = 0
    tenants: Tuple[TenantStats, ...] = ()
    per_replica: Tuple[ServiceStats, ...] = ()

    @property
    def sessions_per_second(self) -> float:
        """Completed sessions per second of cluster lifetime."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.completed / self.elapsed_seconds

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly snapshot (used by ``repro cluster --json``)."""
        return {
            "elapsed_seconds": self.elapsed_seconds,
            "replicas": self.replicas,
            "placement": self.placement,
            "backend": self.backend,
            "healthy_replicas": self.healthy_replicas,
            "submitted": self.submitted,
            "rejected": self.rejected,
            "migrations": self.migrations,
            "recoveries": self.recoveries,
            "rebalances": self.rebalances,
            "parked": self.parked,
            "completed": self.completed,
            "failed": self.failed,
            "cancelled": self.cancelled,
            "evicted": self.evicted,
            "active": self.active,
            "sessions_per_second": self.sessions_per_second,
            "records": self.records,
            "messages": self.messages,
            "bytes": self.bytes,
            "tenants": {
                t.tenant: {
                    "submitted": t.submitted,
                    "rejected": t.rejected,
                    "completed": t.completed,
                    "evicted": t.evicted,
                    "privacy_sessions": t.privacy_sessions,
                    "records": t.records,
                    "messages": t.messages,
                    "bytes": t.bytes,
                }
                for t in self.tenants
            },
            "per_replica": [stats.to_dict() for stats in self.per_replica],
        }

    def summary(self) -> str:
        """Multi-line cluster report, matching the service summary style."""
        lines = [
            f"cluster           : {self.replicas} replicas "
            f"({self.healthy_replicas} healthy, backend={self.backend}), "
            f"placement={self.placement}",
            f"sessions          : {self.completed} completed / "
            f"{self.failed} failed / {self.cancelled} cancelled / "
            f"{self.parked} parked / {self.rejected} rejected "
            f"({self.submitted} accepted)",
            f"migrations        : {self.migrations} hops "
            f"({self.rebalances} rebalance sweeps, "
            f"{self.recoveries} crash recoveries, "
            f"{self.evicted} replica evictions)",
            f"cluster rate      : {self.sessions_per_second:.2f} sessions/s "
            f"over {self.elapsed_seconds:.2f} s",
            f"records mined     : {self.records}",
            f"simnet traffic    : {self.messages} msgs / {self.bytes} bytes",
        ]
        for index, stats in enumerate(self.per_replica):
            lines.append(
                f"replica {index:<10}: {stats.completed}/{stats.submitted} done, "
                f"{stats.evicted} evicted, {stats.active} active, "
                f"pool {stats.pool.utilization * 100:.1f}% busy"
            )
        for t in sorted(self.tenants, key=lambda t: t.tenant):
            lines.append(
                f"tenant {t.tenant:<11}: {t.completed} done, "
                f"{t.rejected} rejected, {t.records} records, "
                f"{t.messages} msgs / {t.bytes} bytes"
            )
        return "\n".join(lines)


class ClusterController:
    """N engine replicas behind one submit surface, rebalanced by checkpoint.

    Parameters
    ----------
    replicas:
        Number of replicas to build.  Each owns its own metered shard
        pool (``max_inflight``/``queue_limit``/``shard_backend``/
        ``shard_workers`` apply per replica) and its own checkpoint
        subdirectory ``replica-<i>/`` under ``checkpoint_dir``.
    placement:
        ``"hash"`` | ``"least_loaded"`` | ``"tenant"`` or a callable
        ``(spec, session_id, eligible, cluster) -> replica index``; see
        :mod:`repro.cluster.placement`.
    backend:
        ``"inprocess"`` (default) runs every replica's engine in this
        process; ``"process"`` runs each in its own OS process behind
        the framed replica protocol, with heartbeat health checks and
        crash recovery.  The two are interchangeable: same API, same
        bit-identical results.
    heartbeat_interval:
        Seconds between process-replica liveness checks (ignored for the
        in-process backend).
    tenants:
        Optional ``{tenant: TenantPolicy}`` budgets, enforced *here* —
        once per session, regardless of how many replicas it visits.
    telemetry:
        Optional :class:`repro.obs.Telemetry`: registers the cluster
        collector and emits ``migrate``/``rebalance``/``drain``/
        ``recover`` spans.  Replicas themselves run untraced (their
        gauge families would collide on one registry).
    checkpoint_dir / checkpoint_every / checkpoint_retain:
        The durability knobs that make sessions *movable*: without a
        ``checkpoint_dir`` the cluster still serves, but ``migrate``/
        ``rebalance``/``drain``/``close(park=True)`` are refused (and a
        crashed process replica's sessions can only be re-run from
        scratch).  ``checkpoint_every`` is the default save cadence for
        stream sessions; ``checkpoint_retain`` caps files kept per
        session.

    Use as a context manager, or call :meth:`close` when done.
    """

    def __init__(
        self,
        replicas: int = 2,
        placement: Any = "hash",
        *,
        backend: str = "inprocess",
        heartbeat_interval: float = 0.2,
        max_inflight: int = 2,
        queue_limit: Optional[int] = None,
        shard_backend: str = "thread",
        shard_workers: Optional[int] = None,
        tenants: Optional[Mapping[str, TenantPolicy]] = None,
        telemetry: Optional[Telemetry] = None,
        checkpoint_dir: Optional[str] = None,
        checkpoint_every: Optional[int] = None,
        checkpoint_retain: Optional[int] = None,
    ) -> None:
        if replicas < 1:
            raise ClusterError(
                f"a cluster needs at least one replica, got {replicas}"
            )
        if backend not in CLUSTER_BACKENDS:
            raise ClusterError(
                f"unknown cluster backend {backend!r}; choose from "
                f"{', '.join(CLUSTER_BACKENDS)}"
            )
        try:
            self.placement, self._place = resolve_placement(placement)
        except ValueError as exc:
            raise ClusterError(str(exc)) from None
        self.backend = backend
        self.checkpoint_dir = checkpoint_dir
        self.checkpoint_every = checkpoint_every
        # Control state must exist before any replica does: a process
        # replica that dies during spawn reports through _replica_died.
        self._lock = threading.Lock()
        self._sessions: Dict[int, ClusterSession] = {}
        self._next_id = 0
        self._tenants: Dict[str, _ClusterTenant] = {
            tenant: _ClusterTenant(policy)
            for tenant, policy in dict(tenants or {}).items()
        }
        self._migrations = 0
        self._recoveries = 0
        self._rebalances = 0
        self._rejected = 0
        self._draining: set = set()
        self._closed = False
        self._started = time.perf_counter()
        self.telemetry = telemetry
        if telemetry is not None and not isinstance(telemetry, Telemetry):
            raise ValueError(
                f"telemetry must be a repro.obs.Telemetry bundle or "
                f"None, got {type(telemetry).__name__}"
            )

        def _replica_dir(index: int) -> Optional[str]:
            if checkpoint_dir is None:
                return None
            return os.path.join(checkpoint_dir, f"replica-{index}")

        built: List[ReplicaTransport] = []
        try:
            for index in range(replicas):
                if backend == "process":
                    built.append(
                        ProcessReplica(
                            index,
                            dict(
                                max_inflight=max_inflight,
                                queue_limit=queue_limit,
                                shard_backend=shard_backend,
                                shard_workers=shard_workers,
                                checkpoint_dir=_replica_dir(index),
                                checkpoint_retain=checkpoint_retain,
                            ),
                            heartbeat_interval=heartbeat_interval,
                            on_death=self._replica_died,
                        )
                    )
                else:
                    built.append(
                        InProcessReplica(
                            index,
                            MiningService(
                                max_inflight=max_inflight,
                                queue_limit=queue_limit,
                                shard_backend=shard_backend,
                                shard_workers=shard_workers,
                                checkpoint_dir=_replica_dir(index),
                                checkpoint_retain=checkpoint_retain,
                            ),
                        )
                    )
        except BaseException:
            for replica in built:
                try:
                    replica.close(wait=False)
                except Exception:
                    pass
            raise
        self.replicas: Tuple[ReplicaTransport, ...] = tuple(built)
        if telemetry is not None:
            telemetry.metrics.register_collector(cluster_collector(self))

    # ------------------------------------------------------------------
    # admission + placement
    # ------------------------------------------------------------------
    def _tenant(self, tenant: str) -> _ClusterTenant:
        ledger = self._tenants.get(tenant)
        if ledger is None:
            ledger = _ClusterTenant(TenantPolicy())
            self._tenants[tenant] = ledger
        return ledger

    def _eligible(self) -> Tuple[int, ...]:
        return tuple(
            index
            for index in range(len(self.replicas))
            if index not in self._draining and self.replicas[index].healthy
        )

    def _live_tenant_sessions(self, tenant: str) -> int:
        """Sessions of ``tenant`` still holding capacity; under the lock."""
        return sum(
            1
            for session in self._sessions.values()
            if session.spec.tenant == tenant
            and session.poll() in ("queued", "running", "migrating")
        )

    def _prune_settled(self) -> None:
        """Drop settled sessions so a long-lived cluster does not pin every
        past result; parked sessions stay (they are resumable).  Under the
        lock."""
        settled = [
            session_id
            for session_id, session in self._sessions.items()
            if session.poll() in ("completed", "failed", "cancelled")
        ]
        for session_id in settled:
            del self._sessions[session_id]

    def _admit(self, spec: SessionSpec) -> int:
        """Cluster-level admission; under the lock.  Returns a session id."""
        if self._closed:
            raise AdmissionError("cluster is closed; no new sessions accepted")
        ledger = self._tenant(spec.tenant)
        policy = ledger.policy
        if policy.max_active is not None:
            active = self._live_tenant_sessions(spec.tenant)
            if active >= policy.max_active:
                ledger.rejected += 1
                self._rejected += 1
                raise AdmissionError(
                    f"tenant {spec.tenant!r} already has {active} active "
                    f"sessions across the cluster "
                    f"(max_active={policy.max_active})"
                )
        if (
            policy.max_sessions is not None
            and ledger.submitted >= policy.max_sessions
        ):
            ledger.rejected += 1
            self._rejected += 1
            raise AdmissionError(
                f"tenant {spec.tenant!r} exhausted its session budget "
                f"({policy.max_sessions})"
            )
        if (
            spec.effective_privacy
            and policy.privacy_budget is not None
            and ledger.privacy_sessions >= policy.privacy_budget
        ):
            ledger.rejected += 1
            self._rejected += 1
            raise AdmissionError(
                f"tenant {spec.tenant!r} exhausted its privacy-evaluation "
                f"budget ({policy.privacy_budget})"
            )
        session_id = self._next_id
        self._next_id += 1
        return session_id

    def submit(
        self,
        spec: Union[SessionSpec, Mapping[str, Any]],
        *,
        checkpoint_every: Optional[int] = None,
        replica: Optional[int] = None,
    ) -> ClusterSession:
        """Admit one spec, place it, and return its :class:`ClusterSession`.

        Tenant budgets are checked here (cluster-wide, once per session);
        the chosen replica then applies its own capacity admission.  Both
        refusals raise :class:`AdmissionError`.  ``replica`` pins the
        session to one replica, bypassing the placement policy (it must
        not be draining or dead).
        """
        if not isinstance(spec, SessionSpec):
            spec = SessionSpec.from_mapping(spec)
        every = (
            checkpoint_every
            if checkpoint_every is not None
            else self.checkpoint_every
        )
        with self._lock:
            self._prune_settled()
            eligible = self._eligible()
            if replica is not None:
                self._check_replica(replica)
                if replica in self._draining:
                    raise ClusterError(
                        f"replica {replica} is draining and accepts no "
                        f"new sessions"
                    )
                if not self.replicas[replica].healthy:
                    raise ClusterError(
                        f"replica {replica} is down and accepts no "
                        f"new sessions"
                    )
                eligible = (replica,)
            elif not eligible:
                raise ClusterError(
                    "every replica is draining or down; nothing can "
                    "accept sessions"
                )
            session_id = self._admit(spec)
            ledger = self._tenant(spec.tenant)
        destination = (
            replica
            if replica is not None
            else self._place(spec, session_id, eligible, self)
        )
        if destination not in eligible:
            raise ClusterError(
                f"placement policy {self.placement!r} chose replica "
                f"{destination}, which is not an eligible replica"
            )
        try:
            handle = self.replicas[destination].submit(
                spec,
                checkpoint_every=every if spec.kind == "stream" else None,
            )
        except AdmissionError:
            with self._lock:
                ledger.rejected += 1
                self._rejected += 1
            raise
        session = ClusterSession(
            spec, session_id, destination, handle,
            every if spec.kind == "stream" else None,
        )
        with self._lock:
            ledger.submitted += 1
            if spec.effective_privacy:
                ledger.privacy_sessions += 1
            self._sessions[session_id] = session
        return session

    def run(
        self, specs: Sequence[Union[SessionSpec, Mapping[str, Any]]]
    ) -> List[SessionResult]:
        """Submit a whole workload, wait, and return results in order."""
        sessions = [self.submit(spec) for spec in specs]
        return [session.result() for session in sessions]

    @property
    def sessions(self) -> Tuple[ClusterSession, ...]:
        """Tracked (unsettled or parked) sessions, in submission order."""
        with self._lock:
            return tuple(self._sessions.values())

    def session(self, session_id: int) -> ClusterSession:
        """Look one tracked session up by id; :class:`ClusterError` if gone."""
        with self._lock:
            session = self._sessions.get(session_id)
        if session is None:
            raise ClusterError(
                f"no tracked cluster session {session_id} (settled sessions "
                f"leave the cluster; parked ones stay until resumed)"
            )
        return session

    # ------------------------------------------------------------------
    # migration
    # ------------------------------------------------------------------
    def _check_replica(self, index: int) -> None:
        if not 0 <= index < len(self.replicas):
            raise ClusterError(
                f"no replica {index}; the cluster has "
                f"{len(self.replicas)} (0..{len(self.replicas) - 1})"
            )

    def _require_migratable(self) -> None:
        if self.checkpoint_dir is None:
            raise ClusterError(
                "sessions cannot move without a cluster checkpoint_dir: "
                "migration travels by checkpoint file"
            )

    def migrate(
        self,
        session_id: int,
        dst: int,
        timeout: Optional[float] = None,
    ) -> Optional[int]:
        """Move one live stream session to replica ``dst`` by checkpoint.

        No stop-the-world: the session's in-flight round completes on the
        old owner, the checkpoint written at the next post-drain round
        boundary travels to ``dst`` (as opaque bytes when the replicas
        live in other processes), and the resumed run is bit-identical
        to never having moved.  Returns the replica the session ended on
        — normally ``dst``; the *source* if the destination refused
        admission and the session bounced back — or ``None`` if the
        session completed before reaching a boundary (nothing to move).

        Raises :class:`ClusterError` for sessions that cannot move:
        unknown ids, parked or already-migrating sessions, settled
        sessions, batch sessions, and clusters without a
        ``checkpoint_dir``.  If *neither* replica can re-admit the
        session, it is parked (checkpoint kept, capacity released) and
        the error names the file to :meth:`resume` from.
        """
        self._require_migratable()
        self._check_replica(dst)
        if not self.replicas[dst].healthy:
            raise ClusterError(
                f"replica {dst} is down; pick a live migration target"
            )
        session = self.session(session_id)
        with session._cond:
            if session._parked_path is not None:
                raise ClusterError(
                    f"session {session_id} is already parked at "
                    f"{session._parked_path!r}; resume it instead of "
                    f"migrating"
                )
            if session._migrating:
                raise ClusterError(
                    f"session {session_id} is already migrating"
                )
            src = session._replica
            if dst == src:
                raise ClusterError(
                    f"session {session_id} already lives on replica {src}"
                )
            handle = session._handle
            if handle.done():
                raise ClusterError(
                    f"session {session_id} already settled "
                    f"({handle.poll()}); nothing to migrate"
                )
            if not handle.migratable:
                raise ClusterError(
                    f"session {session_id} is not migratable: only stream "
                    f"sessions on a checkpointing cluster can move"
                )
            session._begin_handoff()
        span = self._span("migrate", session=session_id, src=src, dst=dst)
        try:
            outcome, final = self._handoff(session, handle, src, dst, timeout)
        except BaseException as exc:
            if span is not None:
                span.end(error=type(exc).__name__)
            raise
        if span is not None:
            span.end(outcome=outcome)
        self._count_migration(outcome)
        return final

    def _handoff(
        self,
        session: ClusterSession,
        handle: Any,
        src: int,
        dst: int,
        timeout: Optional[float],
    ) -> Tuple[str, Optional[int]]:
        """Evict on ``src``, resume on ``dst`` (bouncing back to ``src`` if
        the destination refuses); returns ``(outcome, final replica)``."""
        try:
            payload = self.replicas[src].evict(
                handle.session_id, timeout=timeout
            )
        except CheckpointError:
            # The handle settled (and left the replica) between our check
            # and the evict; treat exactly like completing pre-boundary.
            payload = None
        except BaseException:
            session._abort_handoff()
            raise
        if payload is None:
            session._abort_handoff()
            return "completed-first", None
        for target, outcome in ((dst, "migrated"), (src, "bounced")):
            try:
                new_handle = self.replicas[target].submit(
                    session.spec,
                    checkpoint_every=session._checkpoint_every,
                    resume=payload,
                )
            except AdmissionError:
                continue
            session._finish_handoff(target, new_handle)
            return outcome, target
        session._abort_handoff(parked_path=payload.path)
        raise ClusterError(
            f"migration parked session {session.session_id}: neither "
            f"replica {dst} nor {src} could re-admit it; resume from "
            f"{payload.path!r}"
        )

    def _count_migration(self, outcome: str) -> None:
        with self._lock:
            if outcome in ("migrated", "bounced", "drained", "recovered"):
                self._migrations += 1
            if outcome == "recovered":
                self._recoveries += 1
        if self.telemetry is not None:
            self.telemetry.metrics.counter(
                "repro_cluster_migrations_total",
                "Migration attempts by outcome.",
                outcome=outcome,
            ).inc()

    def rebalance(self, timeout: Optional[float] = None) -> List[Tuple[int, int, int]]:
        """Move sessions off hot replicas until live counts are level.

        Plans against the current distribution of *movable* sessions
        (live streams with a checkpointer), then executes the plan as
        ordinary :meth:`migrate` calls — each hop waits for its session's
        next round boundary.  Returns the executed moves as
        ``(session_id, src, dst)`` triples.
        """
        self._require_migratable()
        with self._lock:
            eligible = self._eligible()
            if not eligible:
                raise ClusterError(
                    "every replica is draining or down; nothing to rebalance"
                )
            movable: Dict[int, List[int]] = {index: [] for index in eligible}
            for session in self._sessions.values():
                with session._cond:
                    live = (
                        session._parked_path is None
                        and session._lost_error is None
                        and not session._migrating
                        and not session._handle.done()
                        and session._handle.migratable
                    )
                    owner = session._replica
                if live and owner in movable:
                    movable[owner].append(session.session_id)
        total = sum(len(ids) for ids in movable.values())
        ceiling = math.ceil(total / len(eligible)) if total else 0
        plan: List[Tuple[int, int, int]] = []
        counts = {index: len(ids) for index, ids in movable.items()}
        for src in sorted(movable, key=lambda i: -counts[i]):
            while counts[src] > ceiling:
                dst = min(
                    (i for i in eligible if i != src),
                    key=lambda i: (counts[i], i),
                    default=None,
                )
                if dst is None or counts[dst] + 1 > ceiling:
                    break
                plan.append((movable[src].pop(), src, dst))
                counts[src] -= 1
                counts[dst] += 1
        span = self._span("rebalance", planned=len(plan))
        moves: List[Tuple[int, int, int]] = []
        try:
            for session_id, src, dst in plan:
                try:
                    final = self.migrate(session_id, dst, timeout=timeout)
                except ClusterError:
                    continue  # settled or started moving since planning
                if final is not None:
                    moves.append((session_id, src, final))
        except BaseException as exc:
            if span is not None:
                span.end(error=type(exc).__name__)
            raise
        if span is not None:
            span.end(moves=len(moves))
        with self._lock:
            self._rebalances += 1
        return moves

    def drain(
        self,
        replica: int,
        timeout: Optional[float] = None,
        resume: bool = True,
    ) -> List[Tuple[int, Optional[int]]]:
        """Empty one replica: park or re-place every live session it owns.

        The replica is excluded from placement immediately; its movable
        sessions all get eviction requests up front (they reach their
        round boundaries concurrently), then each checkpoint is either
        re-placed on the remaining replicas (``resume=True``, the
        default) or left *parked* for :meth:`resume`.  Non-checkpointable
        sessions (batch, or streams on a non-checkpointing cluster) are
        waited out.  Returns ``(session_id, destination)`` pairs with
        ``None`` for parked sessions.
        """
        self._check_replica(replica)
        if resume:
            self._require_migratable()
        with self._lock:
            self._draining.add(replica)
            eligible = self._eligible()
            if resume and not eligible:
                self._draining.discard(replica)
                raise ClusterError(
                    f"cannot drain replica {replica}: it is the last "
                    f"replica accepting sessions (use resume=False to park)"
                )
            owned = [
                session
                for session in self._sessions.values()
                if session._replica == replica
            ]
        span = self._span(
            "drain", replica=replica, resume=resume, sessions=len(owned)
        )
        try:
            dispositions = self._drain_sessions(
                replica, owned, eligible, resume, timeout
            )
        except BaseException as exc:
            if span is not None:
                span.end(error=type(exc).__name__)
            raise
        if span is not None:
            span.end(moved=len([d for _, d in dispositions if d is not None]))
        return dispositions

    def _drain_sessions(
        self,
        replica: int,
        owned: Sequence[ClusterSession],
        eligible: Tuple[int, ...],
        resume: bool,
        timeout: Optional[float],
    ) -> List[Tuple[int, Optional[int]]]:
        source = self.replicas[replica]
        # Signal every movable session first so boundaries are reached
        # concurrently, then collect checkpoints one by one.
        marked: List[Tuple[ClusterSession, Any]] = []
        waited: List[ClusterSession] = []
        for session in owned:
            with session._cond:
                if (
                    session._parked_path is not None
                    or session._lost_error is not None
                    or session._migrating
                    or session._handle.done()
                ):
                    continue
                if not session._handle.migratable:
                    waited.append(session)
                    continue
                handle = session._begin_handoff()
                handle.request_evict()
                marked.append((session, handle))
        dispositions: List[Tuple[int, Optional[int]]] = []
        for session, handle in marked:
            try:
                payload = source.evict(handle.session_id, timeout=timeout)
            except CheckpointError:
                payload = None  # settled before the eviction signal landed
            if payload is None:
                session._abort_handoff()
                continue
            if not resume:
                session._abort_handoff(parked_path=payload.path)
                dispositions.append((session.session_id, None))
                continue
            destination = self._place(
                session.spec, session.session_id, eligible, self
            )
            if destination not in eligible:
                destination = eligible[0]
            try:
                new_handle = self.replicas[destination].submit(
                    session.spec,
                    checkpoint_every=session._checkpoint_every,
                    resume=payload,
                )
            except AdmissionError:
                session._abort_handoff(parked_path=payload.path)
                dispositions.append((session.session_id, None))
                continue
            session._finish_handoff(destination, new_handle)
            self._count_migration("drained")
            dispositions.append((session.session_id, destination))
        for session in waited:
            session.wait(timeout=timeout)
        return dispositions

    def resume(
        self,
        session_id: int,
        replica: Optional[int] = None,
        timeout: Optional[float] = None,
    ) -> int:
        """Re-admit a *parked* session; returns the replica it landed on.

        Parked sessions (from ``drain(..., resume=False)``, a failed
        double-admission during :meth:`migrate`, or a crash recovery
        that found no room) keep their checkpoint and their
        :class:`ClusterSession` identity; resuming hands the same object
        a fresh engine handle, so existing waiters unblock.
        """
        session = self.session(session_id)
        with self._lock:
            eligible = self._eligible()
        with session._cond:
            path = session._parked_path
            if path is None:
                raise ClusterError(
                    f"session {session_id} is not parked (status "
                    f"{session.poll()!r}); only parked sessions resume"
                )
        if replica is not None:
            self._check_replica(replica)
            destination = replica
        else:
            if not eligible:
                raise ClusterError(
                    "every replica is draining or down; nowhere to resume"
                )
            destination = self._place(
                session.spec, session.session_id, eligible, self
            )
            if destination not in eligible:
                destination = eligible[0]
        new_handle = self.replicas[destination].submit(
            session.spec,
            checkpoint_every=session._checkpoint_every,
            resume=CheckpointPayload(path),
        )
        session._finish_handoff(destination, new_handle)
        return destination

    def undrain(self, replica: int) -> None:
        """Let a drained replica accept placements again."""
        self._check_replica(replica)
        with self._lock:
            self._draining.discard(replica)

    # ------------------------------------------------------------------
    # crash recovery
    # ------------------------------------------------------------------
    def _replica_died(self, index: int) -> None:
        """Re-home every session a dead replica owned; the transport calls
        this exactly once per death, from a dedicated thread.

        Recovery is a handoff the session did not ask for: the newest
        intact checkpoint in the dead replica's directory travels to a
        surviving replica as bytes; a session without one is simply
        re-run from the start (sessions are deterministic, so the result
        is bit-identical either way — only wall-clock work is lost).
        Sessions no surviving replica can admit are parked when a
        checkpoint exists, declared lost otherwise.
        """
        with self._lock:
            if self._closed:
                return
            eligible = self._eligible()
            owned = [
                session
                for session in self._sessions.values()
                if session._replica == index
            ]
        if not owned:
            return
        span = self._span("recover", replica=index, sessions=len(owned))
        outcomes = {"recovered": 0, "parked": 0, "lost": 0}
        try:
            for session in owned:
                with session._cond:
                    if (
                        session._parked_path is not None
                        or session._lost_error is not None
                        or session._migrating
                        or session._replica != index
                    ):
                        continue
                    handle = session._begin_handoff()
                outcome = self._recover_session(session, handle, index, eligible)
                if outcome is not None:
                    outcomes[outcome] += 1
        except BaseException as exc:
            if span is not None:
                span.end(error=type(exc).__name__)
            raise
        if span is not None:
            span.end(**outcomes)

    def _latest_checkpoint(
        self, replica_index: int, engine_session_id: int
    ) -> Optional[CheckpointPayload]:
        """The newest checkpoint a dead replica left for one session that
        still validates (a save torn by the crash fails its digest and is
        skipped in favor of the previous one)."""
        directory = self.replicas[replica_index].checkpoint_dir
        if directory is None or not os.path.isdir(directory):
            return None
        label = f"session-{engine_session_id}"
        for path in reversed(list_checkpoints(directory, label=label)):
            try:
                with open(path, "rb") as stream:
                    data = stream.read()
                loads_checkpoint(data, origin=f"{path!r}")
            except (OSError, CheckpointError):
                continue
            return CheckpointPayload(path, data=data)
        return None

    def _recover_session(
        self,
        session: ClusterSession,
        handle: Any,
        dead_index: int,
        eligible: Tuple[int, ...],
    ) -> Optional[str]:
        payload = self._latest_checkpoint(dead_index, handle.session_id)
        order: List[int] = []
        if eligible:
            first = self._place(
                session.spec, session.session_id, eligible, self
            )
            if first not in eligible:
                first = eligible[0]
            order = [first] + [i for i in eligible if i != first]
        for attempt in ([payload, None] if payload is not None else [None]):
            for target in order:
                try:
                    new_handle = self.replicas[target].submit(
                        session.spec,
                        checkpoint_every=session._checkpoint_every,
                        resume=attempt,
                    )
                except AdmissionError:
                    continue
                except CheckpointError:
                    break  # damaged payload: fall through to a fresh re-run
                session._finish_handoff(target, new_handle)
                self._count_migration("recovered")
                return "recovered"
        if payload is not None:
            session._abort_handoff(parked_path=payload.path)
            return "parked"
        session._mark_lost(
            f"session {session.session_id} was lost: replica {dead_index} "
            f"died leaving no checkpoint, and no surviving replica could "
            f"re-run it"
        )
        return "lost"

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def _span(self, name: str, **attrs: Any):
        tel = self.telemetry
        if tel is not None and tel.enabled:
            return tel.span(name, **attrs)
        return None

    def stats(self) -> ClusterStats:
        """The merged cluster snapshot; traffic counters are exact sums of
        the per-replica :class:`ServiceStats` (a dead replica contributes
        its last reported snapshot, in-flight counts zeroed)."""
        per_replica = tuple(replica.stats() for replica in self.replicas)
        healthy = sum(1 for replica in self.replicas if replica.healthy)
        with self._lock:
            elapsed = time.perf_counter() - self._started
            submitted = sum(t.submitted for t in self._tenants.values())
            rejected = self._rejected
            migrations = self._migrations
            recoveries = self._recoveries
            rebalances = self._rebalances
            parked = sum(
                1
                for session in self._sessions.values()
                if session._parked_path is not None
            )
            ledgers = {
                name: (ledger.submitted, ledger.privacy_sessions,
                       ledger.rejected)
                for name, ledger in self._tenants.items()
            }
        # Material counters (work done, traffic) are exact per-replica
        # sums; the budget-bearing ones (submitted, privacy_sessions,
        # rejected) come from the cluster ledger instead — they are
        # charged once per *logical* session, however many replicas a
        # migrating session visits, and replica-level re-admissions
        # (migration hops, bounce attempts, crash re-runs) must not
        # inflate them.
        merged: Dict[str, TenantStats] = {}
        for stats in per_replica:
            for tenant in stats.tenants:
                into = merged.setdefault(tenant.tenant, TenantStats(tenant.tenant))
                for name, value in vars(tenant).items():
                    if name == "tenant":
                        continue
                    setattr(into, name, getattr(into, name) + value)
        for name, (subs, privacy, refusals) in ledgers.items():
            into = merged.setdefault(name, TenantStats(name))
            into.submitted = subs
            into.privacy_sessions = privacy
            into.rejected = refusals
        return ClusterStats(
            elapsed_seconds=elapsed,
            replicas=len(self.replicas),
            placement=self.placement,
            backend=self.backend,
            healthy_replicas=healthy,
            submitted=submitted,
            rejected=rejected,
            migrations=migrations,
            recoveries=recoveries,
            rebalances=rebalances,
            parked=parked,
            completed=sum(s.completed for s in per_replica),
            failed=sum(s.failed for s in per_replica),
            cancelled=sum(s.cancelled for s in per_replica),
            evicted=sum(s.evicted for s in per_replica),
            active=sum(s.active for s in per_replica),
            records=sum(s.records for s in per_replica),
            messages=sum(s.messages for s in per_replica),
            bytes=sum(s.bytes for s in per_replica),
            tenants=tuple(merged.values()),
            per_replica=per_replica,
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def wait_all(self, timeout: Optional[float] = None) -> None:
        """Block until every tracked session settles (or parks)."""
        deadline = _deadline(timeout)
        for session in self.sessions:
            session.wait(timeout=_remaining(deadline))

    def close(
        self, wait: bool = True, park: bool = False
    ) -> Optional[List[str]]:
        """Close every replica; process children are always reaped (clean
        shutdown first, escalating to terminate/kill) so no interrupt or
        crash path leaks an orphan.  ``park=True`` parks live
        checkpointable sessions (scheduled checkpoint-on-shutdown) and
        returns the written checkpoint paths; plain close waits sessions
        out and returns ``None``."""
        if park:
            self._require_migratable()
        with self._lock:
            if self._closed:
                return [] if park else None
            self._closed = True
            sessions = list(self._sessions.values())
        if not park:
            for replica in self.replicas:
                replica.close(wait=wait)
            return None
        paths: List[str] = []
        parked_by_replica: Dict[int, List[str]] = {}
        for replica in self.replicas:
            parked = replica.close(wait=wait, park=True) or []
            parked_by_replica[replica.index] = list(parked)
            paths.extend(parked)
        for session in sessions:
            with session._cond:
                if (
                    session._parked_path is not None
                    or session._lost_error is not None
                    or session._migrating
                ):
                    continue
                handle = session._handle
                path: Optional[str] = None
                if handle.poll() == "evicted":
                    path = handle.evicted_path()
                if path is None:
                    # A process replica is gone by now; recover the path
                    # from the parked list by the engine session's label.
                    prefix = f"session-{handle.session_id}-"
                    candidates = [
                        p
                        for p in parked_by_replica.get(session._replica, [])
                        if os.path.basename(p).startswith(prefix)
                    ]
                    path = candidates[-1] if candidates else None
                if path is not None:
                    session._parked_path = path
                    session._cond.notify_all()
        return paths

    def __enter__(self) -> "ClusterController":
        """Context-manager entry: the controller itself."""
        return self

    def __exit__(self, *exc_info: object) -> None:
        """Context-manager exit: close every replica."""
        self.close()


def _deadline(timeout: Optional[float]) -> Optional[float]:
    return None if timeout is None else time.perf_counter() + timeout


def _remaining(deadline: Optional[float]) -> Optional[float]:
    if deadline is None:
        return None
    return max(0.0, deadline - time.perf_counter())
