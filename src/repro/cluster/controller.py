"""Multi-replica serving over checkpoints.

:class:`ClusterController` fronts N in-process
:class:`~repro.serve.engine.MiningService` replicas — each with its own
metered shard pool and its own checkpoint directory — and moves sessions
between them *by checkpoint*: the durable-session machinery from
:mod:`repro.checkpoint` already guarantees that evict-here / resume-there
reproduces the uninterrupted run bit for bit, so rebalancing is pure
placement with zero correctness surface.

The division of labor with the engine:

* **Replica-level** (each :class:`MiningService`): driver slots
  (``max_inflight``/``queue_limit``), the shared pool, checkpoint saves,
  per-session lifecycle.  Replicas carry *no* tenant policies.
* **Cluster-level** (this module): tenant budgets — enforced once, here,
  so a migration's re-admission on the destination replica does not
  double-charge ``max_sessions``/``privacy_budget`` — plus placement,
  migration, rebalancing, draining, and the merged
  :class:`ClusterStats` view.

Live migration follows the checkpoint layer's *drain rule*: a session
checkpoints only at a post-drain round boundary, so
:meth:`ClusterController.migrate` never stops the world — in-flight
rounds complete on the old owner, the state travels whole inside the
checkpoint file, and the destination resumes through normal admission.
Callers hold one :class:`ClusterSession` across any number of hops.
"""

from __future__ import annotations

import math
import os
import threading
import time
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass
from typing import (
    Any,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..checkpoint import CheckpointError
from ..obs import Telemetry, cluster_collector
from ..serve.engine import (
    AdmissionError,
    MiningService,
    ServiceStats,
    SessionHandle,
    SessionResult,
    TenantPolicy,
    TenantStats,
)
from ..serve.spec import SessionSpec
from .placement import resolve_placement

__all__ = [
    "ClusterError",
    "ClusterSession",
    "ClusterStats",
    "ClusterController",
]


class ClusterError(ValueError):
    """A cluster operation cannot proceed (bad target, parked session...).

    Subclasses :class:`ValueError` so the CLI's friendly exit-2 handling
    applies without special-casing.
    """


class ClusterSession:
    """One submitted session's cluster-wide identity, stable across hops.

    The engine hands out a fresh :class:`SessionHandle` every time a
    session is (re-)admitted, so a migration would invalidate a raw
    handle.  This wrapper keeps one identity for the session's whole
    life: ``poll``/``wait``/``result`` follow the session to whichever
    replica currently owns it, blocking through handoffs instead of
    surfacing the internal eviction.
    """

    def __init__(
        self,
        spec: SessionSpec,
        session_id: int,
        replica: int,
        handle: SessionHandle,
        checkpoint_every: Optional[int],
    ) -> None:
        self.spec = spec
        self.session_id = session_id
        #: completed migration hops
        self.migrations = 0
        self._cond = threading.Condition()
        self._replica = replica
        self._handle = handle
        # Bumped on every handoff; waiters blocked on the *old* handle's
        # eviction use it to tell "my handle was replaced" from "the
        # session really settled".
        self._epoch = 0
        self._migrating = False
        self._parked_path: Optional[str] = None
        self._checkpoint_every = checkpoint_every

    # -- state ----------------------------------------------------------
    @property
    def replica(self) -> int:
        """Index of the replica currently owning the session."""
        with self._cond:
            return self._replica

    @property
    def parked_path(self) -> Optional[str]:
        """The checkpoint file of a parked session, else ``None``."""
        with self._cond:
            return self._parked_path

    @property
    def wall_seconds(self) -> float:
        """Wall-clock seconds of the *current* hop's handle (a migrated
        session's earlier hops ran on other replicas' clocks)."""
        with self._cond:
            return self._handle.wall_seconds

    def poll(self) -> str:
        """Status: queued | running | migrating | parked | completed |
        failed | cancelled."""
        with self._cond:
            if self._parked_path is not None:
                return "parked"
            if self._migrating:
                return "migrating"
            status = self._handle.poll()
        # A handle settling "evicted" outside a marked handoff is the
        # instant between eviction and the park/handoff bookkeeping.
        return "migrating" if status == "evicted" else status

    def done(self) -> bool:
        """True once ``result`` would return (or raise) immediately."""
        return self.poll() in ("completed", "failed", "cancelled", "parked")

    # -- blocking -------------------------------------------------------
    def wait(self, timeout: Optional[float] = None) -> str:
        """Block through any handoffs until the session settles (or the
        timeout lapses); returns the final :meth:`poll` status."""
        deadline = _deadline(timeout)
        while True:
            with self._cond:
                if self._parked_path is not None:
                    return "parked"
                handle = self._handle
                epoch = self._epoch
            status = handle.wait(timeout=_remaining(deadline))
            if status in ("completed", "failed", "cancelled"):
                return status
            if status == "evicted":
                if not self._await_handoff(epoch, deadline):
                    return self.poll()
                continue
            if deadline is not None and time.perf_counter() >= deadline:
                return self.poll()

    def result(self, timeout: Optional[float] = None) -> SessionResult:
        """Block for, then return, the session's result — across migrations.

        Raises :class:`ClusterError` if the session was parked (the
        checkpoint path is in the message; resume it to finish the run),
        re-raises the session's own exception if it failed, and
        :class:`concurrent.futures.TimeoutError` on timeout.
        """
        deadline = _deadline(timeout)
        while True:
            with self._cond:
                parked = self._parked_path
                handle = self._handle
                epoch = self._epoch
            if parked is not None:
                raise ClusterError(
                    f"session {self.session_id} is parked at {parked!r}; "
                    f"resume it to finish the run"
                )
            status = handle.wait(timeout=_remaining(deadline))
            if status in ("completed", "failed", "cancelled"):
                return handle.result(timeout=_remaining(deadline))
            if status == "evicted":
                if not self._await_handoff(epoch, deadline):
                    raise FutureTimeoutError()
                with self._cond:
                    settled_here = (
                        self._epoch == epoch
                        and not self._migrating
                        and self._parked_path is None
                    )
                if settled_here:
                    # An eviction that was not a cluster handoff; surface
                    # the SessionEvicted as the engine would.
                    return handle.result()
                continue
            raise FutureTimeoutError()

    def _await_handoff(
        self, epoch: int, deadline: Optional[float]
    ) -> bool:
        """Wait out an in-flight handoff; False when the deadline lapsed."""
        with self._cond:
            while self._epoch == epoch and self._migrating:
                remaining = _remaining(deadline)
                if remaining is not None and remaining <= 0:
                    return False
                self._cond.wait(remaining)
        return True

    def cancel(self) -> bool:
        """Cancel while still queued on the owning replica; returns success.

        A session mid-handoff or parked cannot be cancelled (it holds no
        queue slot to give back).
        """
        with self._cond:
            if self._migrating or self._parked_path is not None:
                return False
            handle = self._handle
        return handle.cancel()

    # -- handoff bookkeeping (called by the controller) -----------------
    def _begin_handoff(self) -> SessionHandle:
        self._migrating = True
        return self._handle

    def _finish_handoff(
        self, replica: int, handle: SessionHandle
    ) -> None:
        with self._cond:
            self._replica = replica
            self._handle = handle
            self._epoch += 1
            self._migrating = False
            self.migrations += 1
            self._parked_path = None
            self._cond.notify_all()

    def _abort_handoff(self, parked_path: Optional[str] = None) -> None:
        with self._cond:
            self._migrating = False
            if parked_path is not None:
                self._parked_path = parked_path
            self._cond.notify_all()


@dataclass
class _ClusterTenant:
    """Cluster-level tenant budget accounting (under the cluster lock).

    Only monotonic counters live here; ``active`` is derived by scanning
    live sessions, so a migration — which never touches this ledger —
    cannot double-charge any budget.
    """

    policy: TenantPolicy
    submitted: int = 0
    privacy_sessions: int = 0
    rejected: int = 0


@dataclass
class ClusterStats:
    """A point-in-time snapshot of the whole cluster.

    ``completed``/``failed``/``cancelled``/``evicted``/``active`` and the
    ``records``/``messages``/``bytes`` traffic counters are *exact sums*
    of the per-replica :class:`ServiceStats` (the conservation invariant
    the property tests pin).  ``submitted``/``rejected`` are cluster-level
    admissions: per-replica ``submitted`` counts every re-admission of a
    migrating session and so exceeds it by exactly ``migrations`` hops.
    """

    elapsed_seconds: float
    replicas: int
    placement: str
    submitted: int
    rejected: int
    migrations: int
    rebalances: int
    parked: int
    completed: int
    failed: int
    cancelled: int
    evicted: int
    active: int
    records: int
    messages: int
    bytes: int
    tenants: Tuple[TenantStats, ...] = ()
    per_replica: Tuple[ServiceStats, ...] = ()

    @property
    def sessions_per_second(self) -> float:
        """Completed sessions per second of cluster lifetime."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.completed / self.elapsed_seconds

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly snapshot (used by ``repro cluster --json``)."""
        return {
            "elapsed_seconds": self.elapsed_seconds,
            "replicas": self.replicas,
            "placement": self.placement,
            "submitted": self.submitted,
            "rejected": self.rejected,
            "migrations": self.migrations,
            "rebalances": self.rebalances,
            "parked": self.parked,
            "completed": self.completed,
            "failed": self.failed,
            "cancelled": self.cancelled,
            "evicted": self.evicted,
            "active": self.active,
            "sessions_per_second": self.sessions_per_second,
            "records": self.records,
            "messages": self.messages,
            "bytes": self.bytes,
            "tenants": {
                t.tenant: {
                    "submitted": t.submitted,
                    "rejected": t.rejected,
                    "completed": t.completed,
                    "evicted": t.evicted,
                    "privacy_sessions": t.privacy_sessions,
                    "records": t.records,
                    "messages": t.messages,
                    "bytes": t.bytes,
                }
                for t in self.tenants
            },
            "per_replica": [stats.to_dict() for stats in self.per_replica],
        }

    def summary(self) -> str:
        """Multi-line cluster report, matching the service summary style."""
        lines = [
            f"cluster           : {self.replicas} replicas, "
            f"placement={self.placement}",
            f"sessions          : {self.completed} completed / "
            f"{self.failed} failed / {self.cancelled} cancelled / "
            f"{self.parked} parked / {self.rejected} rejected "
            f"({self.submitted} accepted)",
            f"migrations        : {self.migrations} hops "
            f"({self.rebalances} rebalance sweeps, "
            f"{self.evicted} replica evictions)",
            f"cluster rate      : {self.sessions_per_second:.2f} sessions/s "
            f"over {self.elapsed_seconds:.2f} s",
            f"records mined     : {self.records}",
            f"simnet traffic    : {self.messages} msgs / {self.bytes} bytes",
        ]
        for index, stats in enumerate(self.per_replica):
            lines.append(
                f"replica {index:<10}: {stats.completed}/{stats.submitted} done, "
                f"{stats.evicted} evicted, {stats.active} active, "
                f"pool {stats.pool.utilization * 100:.1f}% busy"
            )
        for t in sorted(self.tenants, key=lambda t: t.tenant):
            lines.append(
                f"tenant {t.tenant:<11}: {t.completed} done, "
                f"{t.rejected} rejected, {t.records} records, "
                f"{t.messages} msgs / {t.bytes} bytes"
            )
        return "\n".join(lines)


class ClusterController:
    """N engine replicas behind one submit surface, rebalanced by checkpoint.

    Parameters
    ----------
    replicas:
        Number of :class:`MiningService` replicas to build.  Each owns
        its own metered shard pool (``max_inflight``/``queue_limit``/
        ``shard_backend``/``shard_workers`` apply per replica) and its own
        checkpoint subdirectory ``replica-<i>/`` under ``checkpoint_dir``.
    placement:
        ``"hash"`` | ``"least_loaded"`` | ``"tenant"`` or a callable
        ``(spec, session_id, eligible, cluster) -> replica index``; see
        :mod:`repro.cluster.placement`.
    tenants:
        Optional ``{tenant: TenantPolicy}`` budgets, enforced *here* —
        once per session, regardless of how many replicas it visits.
    telemetry:
        Optional :class:`repro.obs.Telemetry`: registers the cluster
        collector and emits ``migrate``/``rebalance``/``drain`` spans.
        Replicas themselves run untraced (their gauge families would
        collide on one registry).
    checkpoint_dir / checkpoint_every / checkpoint_retain:
        The durability knobs that make sessions *movable*: without a
        ``checkpoint_dir`` the cluster still serves, but ``migrate``/
        ``rebalance``/``drain``/``close(park=True)`` are refused.
        ``checkpoint_every`` is the default save cadence for stream
        sessions; ``checkpoint_retain`` caps files kept per session.

    Use as a context manager, or call :meth:`close` when done.
    """

    def __init__(
        self,
        replicas: int = 2,
        placement: Any = "hash",
        *,
        max_inflight: int = 2,
        queue_limit: Optional[int] = None,
        shard_backend: str = "thread",
        shard_workers: Optional[int] = None,
        tenants: Optional[Mapping[str, TenantPolicy]] = None,
        telemetry: Optional[Telemetry] = None,
        checkpoint_dir: Optional[str] = None,
        checkpoint_every: Optional[int] = None,
        checkpoint_retain: Optional[int] = None,
    ) -> None:
        if replicas < 1:
            raise ClusterError(
                f"a cluster needs at least one replica, got {replicas}"
            )
        try:
            self.placement, self._place = resolve_placement(placement)
        except ValueError as exc:
            raise ClusterError(str(exc)) from None
        self.checkpoint_dir = checkpoint_dir
        self.checkpoint_every = checkpoint_every
        self.replicas: Tuple[MiningService, ...] = tuple(
            MiningService(
                max_inflight=max_inflight,
                queue_limit=queue_limit,
                shard_backend=shard_backend,
                shard_workers=shard_workers,
                checkpoint_dir=(
                    None
                    if checkpoint_dir is None
                    else os.path.join(checkpoint_dir, f"replica-{index}")
                ),
                checkpoint_retain=checkpoint_retain,
            )
            for index in range(replicas)
        )
        self._lock = threading.Lock()
        self._sessions: Dict[int, ClusterSession] = {}
        self._next_id = 0
        self._tenants: Dict[str, _ClusterTenant] = {
            tenant: _ClusterTenant(policy)
            for tenant, policy in dict(tenants or {}).items()
        }
        self._migrations = 0
        self._rebalances = 0
        self._rejected = 0
        self._draining: set = set()
        self._closed = False
        self._started = time.perf_counter()
        self.telemetry = telemetry
        if telemetry is not None:
            if not isinstance(telemetry, Telemetry):
                raise ValueError(
                    f"telemetry must be a repro.obs.Telemetry bundle or "
                    f"None, got {type(telemetry).__name__}"
                )
            telemetry.metrics.register_collector(cluster_collector(self))

    # ------------------------------------------------------------------
    # admission + placement
    # ------------------------------------------------------------------
    def _tenant(self, tenant: str) -> _ClusterTenant:
        ledger = self._tenants.get(tenant)
        if ledger is None:
            ledger = _ClusterTenant(TenantPolicy())
            self._tenants[tenant] = ledger
        return ledger

    def _eligible(self) -> Tuple[int, ...]:
        return tuple(
            index
            for index in range(len(self.replicas))
            if index not in self._draining
        )

    def _live_tenant_sessions(self, tenant: str) -> int:
        """Sessions of ``tenant`` still holding capacity; under the lock."""
        return sum(
            1
            for session in self._sessions.values()
            if session.spec.tenant == tenant
            and session.poll() in ("queued", "running", "migrating")
        )

    def _prune_settled(self) -> None:
        """Drop settled sessions so a long-lived cluster does not pin every
        past result; parked sessions stay (they are resumable).  Under the
        lock."""
        settled = [
            session_id
            for session_id, session in self._sessions.items()
            if session.poll() in ("completed", "failed", "cancelled")
        ]
        for session_id in settled:
            del self._sessions[session_id]

    def _admit(self, spec: SessionSpec) -> int:
        """Cluster-level admission; under the lock.  Returns a session id."""
        if self._closed:
            raise AdmissionError("cluster is closed; no new sessions accepted")
        ledger = self._tenant(spec.tenant)
        policy = ledger.policy
        if policy.max_active is not None:
            active = self._live_tenant_sessions(spec.tenant)
            if active >= policy.max_active:
                ledger.rejected += 1
                self._rejected += 1
                raise AdmissionError(
                    f"tenant {spec.tenant!r} already has {active} active "
                    f"sessions across the cluster "
                    f"(max_active={policy.max_active})"
                )
        if (
            policy.max_sessions is not None
            and ledger.submitted >= policy.max_sessions
        ):
            ledger.rejected += 1
            self._rejected += 1
            raise AdmissionError(
                f"tenant {spec.tenant!r} exhausted its session budget "
                f"({policy.max_sessions})"
            )
        if (
            spec.effective_privacy
            and policy.privacy_budget is not None
            and ledger.privacy_sessions >= policy.privacy_budget
        ):
            ledger.rejected += 1
            self._rejected += 1
            raise AdmissionError(
                f"tenant {spec.tenant!r} exhausted its privacy-evaluation "
                f"budget ({policy.privacy_budget})"
            )
        session_id = self._next_id
        self._next_id += 1
        return session_id

    def submit(
        self,
        spec: Union[SessionSpec, Mapping[str, Any]],
        *,
        checkpoint_every: Optional[int] = None,
        replica: Optional[int] = None,
    ) -> ClusterSession:
        """Admit one spec, place it, and return its :class:`ClusterSession`.

        Tenant budgets are checked here (cluster-wide, once per session);
        the chosen replica then applies its own capacity admission.  Both
        refusals raise :class:`AdmissionError`.  ``replica`` pins the
        session to one replica, bypassing the placement policy (it must
        not be draining).
        """
        if not isinstance(spec, SessionSpec):
            spec = SessionSpec.from_mapping(spec)
        every = (
            checkpoint_every
            if checkpoint_every is not None
            else self.checkpoint_every
        )
        with self._lock:
            self._prune_settled()
            eligible = self._eligible()
            if replica is not None:
                self._check_replica(replica)
                if replica in self._draining:
                    raise ClusterError(
                        f"replica {replica} is draining and accepts no "
                        f"new sessions"
                    )
                eligible = (replica,)
            elif not eligible:
                raise ClusterError(
                    "every replica is draining; nothing can accept sessions"
                )
            session_id = self._admit(spec)
            ledger = self._tenant(spec.tenant)
        destination = (
            replica
            if replica is not None
            else self._place(spec, session_id, eligible, self)
        )
        if destination not in eligible:
            raise ClusterError(
                f"placement policy {self.placement!r} chose replica "
                f"{destination}, which is not an eligible replica"
            )
        try:
            handle = self.replicas[destination].submit(
                spec,
                checkpoint_every=every if spec.kind == "stream" else None,
            )
        except AdmissionError:
            with self._lock:
                ledger.rejected += 1
                self._rejected += 1
            raise
        session = ClusterSession(
            spec, session_id, destination, handle,
            every if spec.kind == "stream" else None,
        )
        with self._lock:
            ledger.submitted += 1
            if spec.effective_privacy:
                ledger.privacy_sessions += 1
            self._sessions[session_id] = session
        return session

    def run(
        self, specs: Sequence[Union[SessionSpec, Mapping[str, Any]]]
    ) -> List[SessionResult]:
        """Submit a whole workload, wait, and return results in order."""
        sessions = [self.submit(spec) for spec in specs]
        return [session.result() for session in sessions]

    @property
    def sessions(self) -> Tuple[ClusterSession, ...]:
        """Tracked (unsettled or parked) sessions, in submission order."""
        with self._lock:
            return tuple(self._sessions.values())

    def session(self, session_id: int) -> ClusterSession:
        """Look one tracked session up by id; :class:`ClusterError` if gone."""
        with self._lock:
            session = self._sessions.get(session_id)
        if session is None:
            raise ClusterError(
                f"no tracked cluster session {session_id} (settled sessions "
                f"leave the cluster; parked ones stay until resumed)"
            )
        return session

    # ------------------------------------------------------------------
    # migration
    # ------------------------------------------------------------------
    def _check_replica(self, index: int) -> None:
        if not 0 <= index < len(self.replicas):
            raise ClusterError(
                f"no replica {index}; the cluster has "
                f"{len(self.replicas)} (0..{len(self.replicas) - 1})"
            )

    def _require_migratable(self) -> None:
        if self.checkpoint_dir is None:
            raise ClusterError(
                "sessions cannot move without a cluster checkpoint_dir: "
                "migration travels by checkpoint file"
            )

    def migrate(
        self,
        session_id: int,
        dst: int,
        timeout: Optional[float] = None,
    ) -> Optional[int]:
        """Move one live stream session to replica ``dst`` by checkpoint.

        No stop-the-world: the session's in-flight round completes on the
        old owner, the checkpoint written at the next post-drain round
        boundary travels to ``dst``, and the resumed run is bit-identical
        to never having moved.  Returns the replica the session ended on
        — normally ``dst``; the *source* if the destination refused
        admission and the session bounced back — or ``None`` if the
        session completed before reaching a boundary (nothing to move).

        Raises :class:`ClusterError` for sessions that cannot move:
        unknown ids, parked or already-migrating sessions, settled
        sessions, batch sessions, and clusters without a
        ``checkpoint_dir``.  If *neither* replica can re-admit the
        session, it is parked (checkpoint kept, capacity released) and
        the error names the file to :meth:`resume` from.
        """
        self._require_migratable()
        self._check_replica(dst)
        session = self.session(session_id)
        with session._cond:
            if session._parked_path is not None:
                raise ClusterError(
                    f"session {session_id} is already parked at "
                    f"{session._parked_path!r}; resume it instead of "
                    f"migrating"
                )
            if session._migrating:
                raise ClusterError(
                    f"session {session_id} is already migrating"
                )
            src = session._replica
            if dst == src:
                raise ClusterError(
                    f"session {session_id} already lives on replica {src}"
                )
            handle = session._handle
            if handle.done():
                raise ClusterError(
                    f"session {session_id} already settled "
                    f"({handle.poll()}); nothing to migrate"
                )
            if handle._checkpointer is None:
                raise ClusterError(
                    f"session {session_id} is not migratable: only stream "
                    f"sessions on a checkpointing cluster can move"
                )
            session._begin_handoff()
        span = self._span("migrate", session=session_id, src=src, dst=dst)
        try:
            outcome, final = self._handoff(session, handle, src, dst, timeout)
        except BaseException as exc:
            if span is not None:
                span.end(error=type(exc).__name__)
            raise
        if span is not None:
            span.end(outcome=outcome)
        self._count_migration(outcome)
        return final

    def _handoff(
        self,
        session: ClusterSession,
        handle: SessionHandle,
        src: int,
        dst: int,
        timeout: Optional[float],
    ) -> Tuple[str, Optional[int]]:
        """Evict on ``src``, resume on ``dst`` (bouncing back to ``src`` if
        the destination refuses); returns ``(outcome, final replica)``."""
        try:
            path = self.replicas[src].evict(handle.session_id, timeout=timeout)
        except CheckpointError:
            # The handle settled (and left the replica) between our check
            # and the evict; treat exactly like completing pre-boundary.
            path = None
        except BaseException:
            session._abort_handoff()
            raise
        if path is None:
            session._abort_handoff()
            return "completed-first", None
        for target, outcome in ((dst, "migrated"), (src, "bounced")):
            try:
                new_handle = self.replicas[target].submit(
                    session.spec,
                    resume_from=path,
                    checkpoint_every=session._checkpoint_every,
                )
            except AdmissionError:
                continue
            session._finish_handoff(target, new_handle)
            return outcome, target
        session._abort_handoff(parked_path=path)
        raise ClusterError(
            f"migration parked session {session.session_id}: neither "
            f"replica {dst} nor {src} could re-admit it; resume from "
            f"{path!r}"
        )

    def _count_migration(self, outcome: str) -> None:
        with self._lock:
            if outcome in ("migrated", "bounced", "drained"):
                self._migrations += 1
        if self.telemetry is not None:
            self.telemetry.metrics.counter(
                "repro_cluster_migrations_total",
                "Migration attempts by outcome.",
                outcome=outcome,
            ).inc()

    def rebalance(self, timeout: Optional[float] = None) -> List[Tuple[int, int, int]]:
        """Move sessions off hot replicas until live counts are level.

        Plans against the current distribution of *movable* sessions
        (live streams with a checkpointer), then executes the plan as
        ordinary :meth:`migrate` calls — each hop waits for its session's
        next round boundary.  Returns the executed moves as
        ``(session_id, src, dst)`` triples.
        """
        self._require_migratable()
        with self._lock:
            eligible = self._eligible()
            if not eligible:
                raise ClusterError("every replica is draining; nothing to rebalance")
            movable: Dict[int, List[int]] = {index: [] for index in eligible}
            for session in self._sessions.values():
                with session._cond:
                    live = (
                        session._parked_path is None
                        and not session._migrating
                        and not session._handle.done()
                        and session._handle._checkpointer is not None
                    )
                    owner = session._replica
                if live and owner in movable:
                    movable[owner].append(session.session_id)
        total = sum(len(ids) for ids in movable.values())
        ceiling = math.ceil(total / len(eligible)) if total else 0
        plan: List[Tuple[int, int, int]] = []
        counts = {index: len(ids) for index, ids in movable.items()}
        for src in sorted(movable, key=lambda i: -counts[i]):
            while counts[src] > ceiling:
                dst = min(
                    (i for i in eligible if i != src),
                    key=lambda i: (counts[i], i),
                    default=None,
                )
                if dst is None or counts[dst] + 1 > ceiling:
                    break
                plan.append((movable[src].pop(), src, dst))
                counts[src] -= 1
                counts[dst] += 1
        span = self._span("rebalance", planned=len(plan))
        moves: List[Tuple[int, int, int]] = []
        try:
            for session_id, src, dst in plan:
                try:
                    final = self.migrate(session_id, dst, timeout=timeout)
                except ClusterError:
                    continue  # settled or started moving since planning
                if final is not None:
                    moves.append((session_id, src, final))
        except BaseException as exc:
            if span is not None:
                span.end(error=type(exc).__name__)
            raise
        if span is not None:
            span.end(moves=len(moves))
        with self._lock:
            self._rebalances += 1
        return moves

    def drain(
        self,
        replica: int,
        timeout: Optional[float] = None,
        resume: bool = True,
    ) -> List[Tuple[int, Optional[int]]]:
        """Empty one replica: park or re-place every live session it owns.

        The replica is excluded from placement immediately; its movable
        sessions all get eviction requests up front (they reach their
        round boundaries concurrently), then each checkpoint is either
        re-placed on the remaining replicas (``resume=True``, the
        default) or left *parked* for :meth:`resume`.  Non-checkpointable
        sessions (batch, or streams on a non-checkpointing cluster) are
        waited out.  Returns ``(session_id, destination)`` pairs with
        ``None`` for parked sessions.
        """
        self._check_replica(replica)
        if resume:
            self._require_migratable()
        with self._lock:
            self._draining.add(replica)
            eligible = self._eligible()
            if resume and not eligible:
                self._draining.discard(replica)
                raise ClusterError(
                    f"cannot drain replica {replica}: it is the last "
                    f"replica accepting sessions (use resume=False to park)"
                )
            owned = [
                session
                for session in self._sessions.values()
                if session._replica == replica
            ]
        span = self._span(
            "drain", replica=replica, resume=resume, sessions=len(owned)
        )
        try:
            dispositions = self._drain_sessions(
                replica, owned, eligible, resume, timeout
            )
        except BaseException as exc:
            if span is not None:
                span.end(error=type(exc).__name__)
            raise
        if span is not None:
            span.end(moved=len([d for _, d in dispositions if d is not None]))
        return dispositions

    def _drain_sessions(
        self,
        replica: int,
        owned: Sequence[ClusterSession],
        eligible: Tuple[int, ...],
        resume: bool,
        timeout: Optional[float],
    ) -> List[Tuple[int, Optional[int]]]:
        service = self.replicas[replica]
        # Signal every movable session first so boundaries are reached
        # concurrently, then collect checkpoints one by one.
        marked: List[Tuple[ClusterSession, SessionHandle]] = []
        waited: List[ClusterSession] = []
        for session in owned:
            with session._cond:
                if (
                    session._parked_path is not None
                    or session._migrating
                    or session._handle.done()
                ):
                    continue
                if session._handle._checkpointer is None:
                    waited.append(session)
                    continue
                handle = session._begin_handoff()
                handle._checkpointer.request_evict()
                marked.append((session, handle))
        dispositions: List[Tuple[int, Optional[int]]] = []
        for session, handle in marked:
            try:
                path = service.evict(handle.session_id, timeout=timeout)
            except CheckpointError:
                path = None  # settled before the eviction signal landed
            if path is None:
                session._abort_handoff()
                continue
            if not resume:
                session._abort_handoff(parked_path=path)
                dispositions.append((session.session_id, None))
                continue
            destination = self._place(
                session.spec, session.session_id, eligible, self
            )
            if destination not in eligible:
                destination = eligible[0]
            try:
                new_handle = self.replicas[destination].submit(
                    session.spec,
                    resume_from=path,
                    checkpoint_every=session._checkpoint_every,
                )
            except AdmissionError:
                session._abort_handoff(parked_path=path)
                dispositions.append((session.session_id, None))
                continue
            session._finish_handoff(destination, new_handle)
            self._count_migration("drained")
            dispositions.append((session.session_id, destination))
        for session in waited:
            session.wait(timeout=timeout)
        return dispositions

    def resume(
        self,
        session_id: int,
        replica: Optional[int] = None,
        timeout: Optional[float] = None,
    ) -> int:
        """Re-admit a *parked* session; returns the replica it landed on.

        Parked sessions (from ``drain(..., resume=False)`` or a failed
        double-admission during :meth:`migrate`) keep their checkpoint
        and their :class:`ClusterSession` identity; resuming hands the
        same object a fresh engine handle, so existing waiters unblock.
        """
        session = self.session(session_id)
        with self._lock:
            eligible = self._eligible()
        with session._cond:
            path = session._parked_path
            if path is None:
                raise ClusterError(
                    f"session {session_id} is not parked (status "
                    f"{session.poll()!r}); only parked sessions resume"
                )
        if replica is not None:
            self._check_replica(replica)
            destination = replica
        else:
            if not eligible:
                raise ClusterError(
                    "every replica is draining; nowhere to resume"
                )
            destination = self._place(
                session.spec, session.session_id, eligible, self
            )
            if destination not in eligible:
                destination = eligible[0]
        new_handle = self.replicas[destination].submit(
            session.spec,
            resume_from=path,
            checkpoint_every=session._checkpoint_every,
        )
        session._finish_handoff(destination, new_handle)
        return destination

    def undrain(self, replica: int) -> None:
        """Let a drained replica accept placements again."""
        self._check_replica(replica)
        with self._lock:
            self._draining.discard(replica)

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def _span(self, name: str, **attrs: Any):
        tel = self.telemetry
        if tel is not None and tel.enabled:
            return tel.span(name, **attrs)
        return None

    def stats(self) -> ClusterStats:
        """The merged cluster snapshot; traffic counters are exact sums of
        the per-replica :class:`ServiceStats`."""
        per_replica = tuple(service.stats() for service in self.replicas)
        with self._lock:
            elapsed = time.perf_counter() - self._started
            submitted = sum(t.submitted for t in self._tenants.values())
            rejected = self._rejected
            migrations = self._migrations
            rebalances = self._rebalances
            parked = sum(
                1
                for session in self._sessions.values()
                if session._parked_path is not None
            )
            ledgers = {
                name: (ledger.submitted, ledger.privacy_sessions,
                       ledger.rejected)
                for name, ledger in self._tenants.items()
            }
        # Material counters (work done, traffic) are exact per-replica
        # sums; the budget-bearing ones (submitted, privacy_sessions,
        # rejected) come from the cluster ledger instead — they are
        # charged once per *logical* session, however many replicas a
        # migrating session visits, and replica-level re-admissions
        # (migration hops, bounce attempts) must not inflate them.
        merged: Dict[str, TenantStats] = {}
        for stats in per_replica:
            for tenant in stats.tenants:
                into = merged.setdefault(tenant.tenant, TenantStats(tenant.tenant))
                for name, value in vars(tenant).items():
                    if name == "tenant":
                        continue
                    setattr(into, name, getattr(into, name) + value)
        for name, (subs, privacy, refusals) in ledgers.items():
            into = merged.setdefault(name, TenantStats(name))
            into.submitted = subs
            into.privacy_sessions = privacy
            into.rejected = refusals
        return ClusterStats(
            elapsed_seconds=elapsed,
            replicas=len(self.replicas),
            placement=self.placement,
            submitted=submitted,
            rejected=rejected,
            migrations=migrations,
            rebalances=rebalances,
            parked=parked,
            completed=sum(s.completed for s in per_replica),
            failed=sum(s.failed for s in per_replica),
            cancelled=sum(s.cancelled for s in per_replica),
            evicted=sum(s.evicted for s in per_replica),
            active=sum(s.active for s in per_replica),
            records=sum(s.records for s in per_replica),
            messages=sum(s.messages for s in per_replica),
            bytes=sum(s.bytes for s in per_replica),
            tenants=tuple(merged.values()),
            per_replica=per_replica,
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def wait_all(self, timeout: Optional[float] = None) -> None:
        """Block until every tracked session settles (or parks)."""
        deadline = _deadline(timeout)
        for session in self.sessions:
            session.wait(timeout=_remaining(deadline))

    def close(
        self, wait: bool = True, park: bool = False
    ) -> Optional[List[str]]:
        """Close every replica.  ``park=True`` parks live checkpointable
        sessions (scheduled checkpoint-on-shutdown) and returns the
        written checkpoint paths; plain close waits sessions out and
        returns ``None``."""
        if park:
            self._require_migratable()
        with self._lock:
            if self._closed:
                return [] if park else None
            self._closed = True
            sessions = list(self._sessions.values())
        if not park:
            for service in self.replicas:
                service.close(wait=wait)
            return None
        paths: List[str] = []
        for service in self.replicas:
            paths.extend(service.close(wait=wait, park=True))
        for session in sessions:
            with session._cond:
                if (
                    session._parked_path is None
                    and not session._migrating
                    and session._handle.poll() == "evicted"
                ):
                    session._parked_path = (
                        session._handle._future.exception().path
                    )
                    session._cond.notify_all()
        return paths

    def __enter__(self) -> "ClusterController":
        """Context-manager entry: the controller itself."""
        return self

    def __exit__(self, *exc_info: object) -> None:
        """Context-manager exit: close every replica."""
        self.close()


def _deadline(timeout: Optional[float]) -> Optional[float]:
    return None if timeout is None else time.perf_counter() + timeout


def _remaining(deadline: Optional[float]) -> Optional[float]:
    if deadline is None:
        return None
    return max(0.0, deadline - time.perf_counter())
