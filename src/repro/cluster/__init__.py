"""Multi-replica serving over checkpoints: placement, migration, recovery.

The scale-out layer the ROADMAP's "scale-out serving over checkpoints"
item asks for.  A :class:`ClusterController` is a **control plane** over
N replicas, each speaking the narrow :class:`ReplicaTransport` protocol
(submit / poll / result / evict / resume / stats / health), with
checkpoints crossing as opaque RPCK payloads:

* **backends** (:mod:`~repro.cluster.transport`) — ``"inprocess"`` runs
  every replica's :class:`~repro.serve.MiningService` in this process;
  ``"process"`` runs each in its own OS process
  (:mod:`~repro.cluster.replica`) behind the length-prefixed framed
  protocol of :mod:`~repro.cluster.protocol`, with heartbeat health
  checks and crash recovery (a dead replica's sessions re-resume from
  their newest intact checkpoints on the survivors);
* **placement** (:mod:`~repro.cluster.placement`) — pluggable policies
  choosing a replica per submit: deterministic ``hash``, greedy
  ``least_loaded`` over the occupancy ledger, and ``tenant`` affinity
  (the multi-level-trust shape: tenants placed by trust/budget class);
* **live migration** — :meth:`ClusterController.migrate` evicts on the
  owner at the session's next post-drain round boundary (in-flight
  rounds complete first; no stop-the-world) and resumes on the
  destination through ordinary admission — over the wire when the
  replicas live in other processes;
* **rebalancing / draining** — a :meth:`~ClusterController.rebalance`
  sweep levels live-session counts, :meth:`~ClusterController.drain`
  empties one replica (re-placing or parking its sessions), and
  ``close(park=True)`` parks everything via scheduled
  checkpoint-on-shutdown;
* **merged view** — :class:`ClusterStats` sums per-replica
  :class:`~repro.serve.ServiceStats` exactly (records, messages, bytes —
  the conservation invariant, which holds across process boundaries),
  with cluster-level admission and migration counters on top.

The governing invariant, property-swept like the checkpoint layer's: any
schedule of migrations, crashes, and resumes across replicas × backends
× shards × plans is **bit-identical** to the unmigrated single-engine
run, because a checkpoint carries the complete session state — RNGs,
normalizers, online miner, epoch and perturbation-space adaptor —
between pools, and the digest-checked RPCK format refuses damaged state
instead of resuming it.
"""

from .controller import (
    CLUSTER_BACKENDS,
    ClusterController,
    ClusterError,
    ClusterSession,
    ClusterStats,
)
from .placement import (
    PLACEMENT_POLICIES,
    hash_placement,
    least_loaded_placement,
    resolve_placement,
    tenant_placement,
)
from .protocol import MAX_FRAME_BYTES, TransportError, read_frame, write_frame
from .transport import (
    CheckpointPayload,
    InProcessReplica,
    ProcessReplica,
    ReplicaTransport,
)

__all__ = [
    "CLUSTER_BACKENDS",
    "ClusterController",
    "ClusterError",
    "ClusterSession",
    "ClusterStats",
    "PLACEMENT_POLICIES",
    "hash_placement",
    "least_loaded_placement",
    "tenant_placement",
    "resolve_placement",
    "MAX_FRAME_BYTES",
    "TransportError",
    "read_frame",
    "write_frame",
    "CheckpointPayload",
    "ReplicaTransport",
    "InProcessReplica",
    "ProcessReplica",
]
