"""Multi-replica serving over checkpoints: placement, migration, rebalance.

The scale-out layer the ROADMAP's "scale-out serving over checkpoints"
item asks for.  A :class:`ClusterController` fronts N in-process
:class:`~repro.serve.MiningService` replicas — each with its own metered
shard pool and checkpoint directory — and moves live sessions between
them by checkpoint file:

* **placement** (:mod:`~repro.cluster.placement`) — pluggable policies
  choosing a replica per submit: deterministic ``hash``, greedy
  ``least_loaded`` over the occupancy ledger, and ``tenant`` affinity
  (the multi-level-trust shape: tenants placed by trust/budget class);
* **live migration** — :meth:`ClusterController.migrate` evicts on the
  owner at the session's next post-drain round boundary (in-flight
  rounds complete first; no stop-the-world) and resumes on the
  destination through ordinary admission;
* **rebalancing / draining** — a :meth:`~ClusterController.rebalance`
  sweep levels live-session counts, :meth:`~ClusterController.drain`
  empties one replica (re-placing or parking its sessions), and
  ``close(park=True)`` parks everything via scheduled
  checkpoint-on-shutdown;
* **merged view** — :class:`ClusterStats` sums per-replica
  :class:`~repro.serve.ServiceStats` exactly (records, messages, bytes —
  the conservation invariant), with cluster-level admission and
  migration counters on top.

The governing invariant, property-swept like the checkpoint layer's: any
schedule of migrations across replicas × backends × shards × plans is
**bit-identical** to the unmigrated single-engine run, because a
checkpoint carries the complete session state — RNGs, normalizers,
online miner, epoch and perturbation-space adaptor — between pools.
"""

from .controller import (
    ClusterController,
    ClusterError,
    ClusterSession,
    ClusterStats,
)
from .placement import (
    PLACEMENT_POLICIES,
    hash_placement,
    least_loaded_placement,
    resolve_placement,
    tenant_placement,
)

__all__ = [
    "ClusterController",
    "ClusterError",
    "ClusterSession",
    "ClusterStats",
    "PLACEMENT_POLICIES",
    "hash_placement",
    "least_loaded_placement",
    "tenant_placement",
    "resolve_placement",
]
