"""Worker-pool executors behind the sharded engine.

Three interchangeable backends run the per-shard task functions of
:mod:`repro.sharding.worker`:

* :class:`SerialBackend` — runs tasks inline, in submission order.  The
  deterministic reference: every other backend must produce byte-identical
  results (guaranteed because tasks are pure functions of their arguments
  and results are always collected in submission order).
* :class:`ThreadBackend` — ``concurrent.futures.ThreadPoolExecutor``.
  Cheap to spin up and effective when tasks spend their time inside numpy
  (which releases the GIL for BLAS work).
* :class:`ProcessBackend` — ``concurrent.futures.ProcessPoolExecutor``.
  True multi-core parallelism; tasks and results cross a pickle boundary,
  so task functions must be module-level and arguments picklable (the
  worker module is written to that contract).

All backends expose the same operations — ordered :meth:`map`, its
asynchronous sibling :meth:`submit_map` (which returns a gatherable
:class:`ShardFutures` handle instead of blocking), and :meth:`close` —
plus context-manager sugar.  Ordered collection is the load-bearing
property: completion order may vary wildly across backends and runs, but
``map``/``gather`` always return ``[fn(t) for t in tasks]`` in task
order, which is what makes the engine's merge step deterministic.
``submit_map`` is what lets the streaming driver pipeline rounds: it
dispatches one round's tasks to the pool and keeps the driver free to run
the next round's control plane while they execute, gathering later in
strict round order.  On the serial backend the handle is already
completed at submit time (tasks ran inline, in order), so a pipelined
driver degenerates to exactly the serial execution order.

A failed task fails the whole dispatch: ``gather`` (and therefore
``map``) re-raises the *first* failing task's exception in task order and
cancels every not-yet-started future of the same dispatch, so a poisoned
batch does not keep burning a shared pool's workers on work whose round
is already dead.  Tasks already running when the failure surfaces cannot
be interrupted — ``concurrent.futures`` has no preemption — but nothing
queued behind them starts.

Backends are safe to share between session driver threads: the serving
layer (:mod:`repro.serve`) hands one pool to many concurrent sessions, so
lazy pool construction is lock-guarded and ``submit`` relies on the
``concurrent.futures`` executors' own thread safety.  A shared pool is
usually wrapped in a :class:`MeteredBackend`, which counts dispatched
tasks and worker-occupancy busy time — submit→gather spans included — so
the service can report a utilization figure that stays ``<= 1`` even
when many sessions overlap on the pool.
"""

from __future__ import annotations

import abc
import threading
import time
from concurrent.futures import Executor, Future, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, List, Optional, Sequence, TypeVar

__all__ = [
    "BACKENDS",
    "ShardFutures",
    "ShardBackend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "MeteredBackend",
    "make_backend",
]

BACKENDS = ("serial", "thread", "process")

_Task = TypeVar("_Task")
_Result = TypeVar("_Result")


class ShardFutures:
    """A gatherable handle for one :meth:`ShardBackend.submit_map` dispatch.

    ``gather`` blocks until every task of the dispatch finished and
    returns their results in *task* order — the same list the blocking
    ``map`` would have returned.  It may be called once; the handle is
    consumed by it.  ``cancel`` abandons whatever has not started yet
    (best-effort: running tasks cannot be interrupted).
    """

    def gather(self) -> List[_Result]:
        """Block for, then return, the dispatch's results in task order."""
        raise NotImplementedError

    def done(self) -> bool:
        """True once every task of the dispatch has finished."""
        raise NotImplementedError

    def cancel(self) -> None:
        """Best-effort cancellation of every not-yet-started task."""

    def on_done(self, callback: Callable[[], None]) -> None:
        """Invoke ``callback`` exactly once when every task has settled.

        Settled means finished, failed, or cancelled.  The callback may
        run on a worker thread (pool backends) or inline (completed
        handles); metering uses it to close a dispatch's busy span when
        the work actually ends rather than when the driver gathers.
        """
        callback()


class _CompletedFutures(ShardFutures):
    """An already-completed dispatch (serial backend, empty task lists)."""

    def __init__(self, results: List[_Result]) -> None:
        self._results = results

    def gather(self) -> List[_Result]:
        """Return the inline-computed results (no blocking)."""
        return self._results

    def done(self) -> bool:
        """Always true: the work ran at submit time."""
        return True


class _PoolFutures(ShardFutures):
    """A dispatch in flight on a ``concurrent.futures`` executor."""

    def __init__(self, futures: List["Future[_Result]"]) -> None:
        self._futures = futures

    def on_done(self, callback: Callable[[], None]) -> None:
        """Fire ``callback`` when the dispatch's last future settles."""
        pending = [len(self._futures)]
        lock = threading.Lock()

        def _one_settled(_future: "Future[_Result]") -> None:
            with lock:
                pending[0] -= 1
                if pending[0]:
                    return
            callback()

        for future in self._futures:
            future.add_done_callback(_one_settled)

    def gather(self) -> List[_Result]:
        """Collect results in submission order, failing fast.

        The first task failure (in task order) cancels every outstanding
        future of this dispatch before re-raising, so one poisoned task
        does not keep a shared pool busy finishing a dead round's work.
        """
        results: List[_Result] = []
        try:
            for future in self._futures:
                results.append(future.result())
        except BaseException:
            self.cancel()
            raise
        return results

    def done(self) -> bool:
        """True once every future of the dispatch has settled."""
        return all(future.done() for future in self._futures)

    def cancel(self) -> None:
        """Cancel every future that has not started running yet."""
        for future in self._futures:
            future.cancel()


class ShardBackend(abc.ABC):
    """Common contract: ordered map over pure task functions."""

    #: backend identifier, matching the :func:`make_backend` key
    name: str = "abstract"

    #: whether dispatches can make progress while the driver does other
    #: work — i.e. whether a pipelined driver can actually hide latency
    #: behind :meth:`submit_map` (false for inline/serial execution)
    supports_overlap: bool = False

    @abc.abstractmethod
    def map(
        self, fn: Callable[[_Task], _Result], tasks: Sequence[_Task]
    ) -> List[_Result]:
        """Apply ``fn`` to every task and return results in *task* order."""

    def submit_map(
        self, fn: Callable[[_Task], _Result], tasks: Sequence[_Task]
    ) -> ShardFutures:
        """Dispatch the tasks without blocking; gather the handle later.

        The base implementation runs the tasks inline and hands back an
        already-completed handle — correct for any backend, overlapping
        for none.  Pool backends override it with a real asynchronous
        dispatch.
        """
        return _CompletedFutures(self.map(fn, tasks))

    def close(self) -> None:
        """Release pooled workers (idempotent; no-op for serial)."""

    def warm(self) -> None:
        """Eagerly build the worker pool (no-op for serial).

        Long-lived owners (the serving engine) call this from the
        constructing thread so a process pool is forked *before* any
        driver threads exist — forking a multi-threaded process can leave
        child workers holding another thread's locks.
        """

    def __enter__(self) -> "ShardBackend":
        """Context-manager entry: the backend itself."""
        return self

    def __exit__(self, *exc_info: object) -> None:
        """Context-manager exit: shut the pool down."""
        self.close()


def _warm_noop() -> None:
    """Module-level no-op task used to pre-fork pool workers (picklable)."""


class SerialBackend(ShardBackend):
    """Inline execution — the deterministic reference backend."""

    name = "serial"

    def map(
        self, fn: Callable[[_Task], _Result], tasks: Sequence[_Task]
    ) -> List[_Result]:
        """Run every task in the calling thread, in order."""
        return [fn(task) for task in tasks]


class _PoolBackend(ShardBackend):
    """Shared submit/collect logic for the two ``concurrent.futures`` pools."""

    supports_overlap = True

    def __init__(self, n_workers: int) -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.n_workers = n_workers
        self._pool: Optional[Executor] = None
        self._lock = threading.Lock()

    def _make_pool(self) -> Executor:
        raise NotImplementedError

    def submit_map(
        self, fn: Callable[[_Task], _Result], tasks: Sequence[_Task]
    ) -> ShardFutures:
        """Submit all tasks and return the in-flight dispatch handle."""
        if not tasks:
            return _CompletedFutures([])
        with self._lock:
            # Concurrent session drivers may race to the first dispatch;
            # only one of them must build the executor.
            if self._pool is None:
                self._pool = self._make_pool()
            pool = self._pool
        return _PoolFutures([pool.submit(fn, task) for task in tasks])

    def map(
        self, fn: Callable[[_Task], _Result], tasks: Sequence[_Task]
    ) -> List[_Result]:
        """Submit all tasks, then gather results in submission order."""
        return self.submit_map(fn, tasks).gather()

    def close(self) -> None:
        """Shut the pool down and drop the worker handles."""
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def warm(self) -> None:
        """Build the executor and pre-start its workers, on this thread.

        Executors start workers lazily at submit time, so warming submits
        one no-op per worker — a process pool forks every child here,
        before the owner spins up any other threads.
        """
        with self._lock:
            if self._pool is None:
                self._pool = self._make_pool()
            pool = self._pool
        futures = [pool.submit(_warm_noop) for _ in range(self.n_workers)]
        for future in futures:
            future.result()


class ThreadBackend(_PoolBackend):
    """Thread-pool execution; parallel where numpy releases the GIL."""

    name = "thread"

    def _make_pool(self) -> Executor:
        return ThreadPoolExecutor(
            max_workers=self.n_workers, thread_name_prefix="repro-shard"
        )


class ProcessBackend(_PoolBackend):
    """Process-pool execution; requires picklable tasks and results."""

    name = "process"

    def _make_pool(self) -> Executor:
        return ProcessPoolExecutor(max_workers=self.n_workers)


class _MeteredFutures(ShardFutures):
    """Wraps a dispatch handle so its busy span ends when it is gathered."""

    def __init__(
        self, inner: ShardFutures, owner: "MeteredBackend", weight: int, n_tasks: int
    ) -> None:
        self._inner = inner
        self._owner = owner
        self._weight = weight
        self._n_tasks = n_tasks
        self._settled = False
        # gather() and cancel() may race from different threads; the span
        # must be closed exactly once or the occupancy ledger corrupts.
        self._settle_lock = threading.Lock()

    def _settle(self) -> None:
        with self._settle_lock:
            if self._settled:
                return
            self._settled = True
        self._owner._end_span(self._weight, self._n_tasks)

    def gather(self) -> List[_Result]:
        """Gather the wrapped dispatch, closing its busy span exactly once."""
        try:
            return self._inner.gather()
        finally:
            self._settle()

    def done(self) -> bool:
        """True once the wrapped dispatch has settled."""
        return self._inner.done()

    def cancel(self) -> None:
        """Cancel the wrapped dispatch and close its busy span."""
        self._inner.cancel()
        self._settle()

    def on_done(self, callback: Callable[[], None]) -> None:
        """Delegate completion notification to the wrapped dispatch."""
        self._inner.on_done(callback)


class MeteredBackend(ShardBackend):
    """A pass-through wrapper that meters the demand placed on a backend.

    Every dispatch — blocking ``map`` and asynchronous ``submit_map``
    alike — is forwarded unchanged; the wrapper accumulates the number of
    tasks and batches dispatched plus ``busy_seconds``, a *worker
    occupancy* integral: at any instant the in-flight dispatches demand
    ``min(tasks, workers)`` workers each, the total is clamped at the
    pool's physical worker count, and ``busy_seconds`` integrates that
    clamped occupancy over time.  A dispatch's span opens at submit (not
    just while a driver is blocked, so pipelined rounds are accounted for
    the whole time they occupy workers) and closes as soon as its last
    task settles — or at gather/cancel, whichever comes first — so a
    handle a driver is slow to gather does not count idle workers as
    busy.  Because occupancy never exceeds the worker count,
    ``busy_seconds <= workers x elapsed`` and :meth:`utilization` is
    ``<= 1`` no matter how many concurrent sessions overlap on the pool —
    concurrent spans share the capacity instead of being double-counted.
    """

    name = "metered"

    def __init__(self, inner: ShardBackend) -> None:
        self.inner = inner
        self.name = f"metered-{inner.name}"
        self._lock = threading.Lock()
        self.tasks_dispatched = 0
        self.batches_dispatched = 0
        self.busy_seconds = 0.0
        self._active_weight = 0
        self._last_transition = time.perf_counter()

    @property
    def n_workers(self) -> int:
        """Worker count of the wrapped backend (1 for serial)."""
        return getattr(self.inner, "n_workers", 1)

    @property
    def supports_overlap(self) -> bool:  # type: ignore[override]
        """Whether the wrapped backend can overlap dispatches with the driver."""
        return self.inner.supports_overlap

    # -- occupancy integral, guarded by the lock -------------------------
    def _advance_clock(self, now: float) -> None:
        """Integrate the clamped occupancy since the last transition."""
        if self._active_weight > 0:
            occupied = min(self._active_weight, self.n_workers)
            self.busy_seconds += (now - self._last_transition) * occupied
        self._last_transition = now

    def _begin_span(self, weight: int) -> None:
        with self._lock:
            self._advance_clock(time.perf_counter())
            self._active_weight += weight

    def _end_span(self, weight: int, n_tasks: int) -> None:
        with self._lock:
            self._advance_clock(time.perf_counter())
            self._active_weight -= weight
            self.tasks_dispatched += n_tasks
            self.batches_dispatched += 1

    def _span_weight(self, n_tasks: int) -> int:
        """Workers one dispatch can occupy: its task count, pool-clamped."""
        return max(1, min(n_tasks, self.n_workers))

    def map(
        self, fn: Callable[[_Task], _Result], tasks: Sequence[_Task]
    ) -> List[_Result]:
        """Forward to the wrapped backend inside one accounted busy span."""
        weight = self._span_weight(len(tasks))
        self._begin_span(weight)
        try:
            return self.inner.map(fn, tasks)
        finally:
            self._end_span(weight, len(tasks))

    def submit_map(
        self, fn: Callable[[_Task], _Result], tasks: Sequence[_Task]
    ) -> ShardFutures:
        """Forward the dispatch; its busy span closes at gather time."""
        if not tasks:
            # Nothing occupies a worker: count the batch, open no span
            # (a weight-1 span would stay open until the caller gathers).
            inner = self.inner.submit_map(fn, tasks)
            with self._lock:
                self.batches_dispatched += 1
            return inner
        weight = self._span_weight(len(tasks))
        self._begin_span(weight)
        try:
            inner = self.inner.submit_map(fn, tasks)
        except BaseException:
            self._end_span(weight, len(tasks))
            raise
        handle = _MeteredFutures(inner, self, weight, len(tasks))
        # Close the span the moment the work actually ends; the gather/
        # cancel settle in the handle is the (idempotent) backstop that
        # guarantees the ledger balances even on error paths.
        inner.on_done(handle._settle)
        return handle

    def close(self) -> None:
        """Close the wrapped backend."""
        self.inner.close()

    def warm(self) -> None:
        """Eagerly build the wrapped backend's pool."""
        self.inner.warm()

    def utilization(self, elapsed_seconds: float) -> float:
        """Fraction of ``workers x elapsed`` capacity that was occupied.

        Clamped to ``[0, 1]``: occupancy cannot exceed the worker count by
        construction, and the clamp additionally absorbs the sub-tick skew
        between the caller's elapsed clock and the span transitions.
        """
        if elapsed_seconds <= 0:
            return 0.0
        with self._lock:
            self._advance_clock(time.perf_counter())
            busy = self.busy_seconds
        return min(1.0, busy / (self.n_workers * elapsed_seconds))


def make_backend(kind: str, n_workers: Optional[int] = None) -> ShardBackend:
    """Factory keyed by backend name.

    ``n_workers`` defaults to the shard count the engine passes in; it is
    ignored by the serial backend.
    """
    if kind == "serial":
        return SerialBackend()
    workers = 1 if n_workers is None else n_workers
    if kind == "thread":
        return ThreadBackend(workers)
    if kind == "process":
        return ProcessBackend(workers)
    raise ValueError(
        f"unknown shard backend {kind!r}; available: {', '.join(BACKENDS)}"
    )
