"""Worker-pool executors behind the sharded engine.

Three interchangeable backends run the per-shard task functions of
:mod:`repro.sharding.worker`:

* :class:`SerialBackend` — runs tasks inline, in submission order.  The
  deterministic reference: every other backend must produce byte-identical
  results (guaranteed because tasks are pure functions of their arguments
  and results are always collected in submission order).
* :class:`ThreadBackend` — ``concurrent.futures.ThreadPoolExecutor``.
  Cheap to spin up and effective when tasks spend their time inside numpy
  (which releases the GIL for BLAS work).
* :class:`ProcessBackend` — ``concurrent.futures.ProcessPoolExecutor``.
  True multi-core parallelism; tasks and results cross a pickle boundary,
  so task functions must be module-level and arguments picklable (the
  worker module is written to that contract).

All backends expose the same two operations — ordered :meth:`map` and
:meth:`close` — plus context-manager sugar.  Ordered collection is the
load-bearing property: completion order may vary wildly across backends
and runs, but ``map`` always returns ``[fn(t) for t in tasks]`` in task
order, which is what makes the engine's merge step deterministic.
"""

from __future__ import annotations

import abc
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, List, Optional, Sequence, TypeVar

__all__ = [
    "BACKENDS",
    "ShardBackend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "make_backend",
]

BACKENDS = ("serial", "thread", "process")

_Task = TypeVar("_Task")
_Result = TypeVar("_Result")


class ShardBackend(abc.ABC):
    """Common contract: ordered map over pure task functions."""

    #: backend identifier, matching the :func:`make_backend` key
    name: str = "abstract"

    @abc.abstractmethod
    def map(
        self, fn: Callable[[_Task], _Result], tasks: Sequence[_Task]
    ) -> List[_Result]:
        """Apply ``fn`` to every task and return results in *task* order."""

    def close(self) -> None:
        """Release pooled workers (idempotent; no-op for serial)."""

    def __enter__(self) -> "ShardBackend":
        """Context-manager entry: the backend itself."""
        return self

    def __exit__(self, *exc_info: object) -> None:
        """Context-manager exit: shut the pool down."""
        self.close()


class SerialBackend(ShardBackend):
    """Inline execution — the deterministic reference backend."""

    name = "serial"

    def map(
        self, fn: Callable[[_Task], _Result], tasks: Sequence[_Task]
    ) -> List[_Result]:
        """Run every task in the calling thread, in order."""
        return [fn(task) for task in tasks]


class _PoolBackend(ShardBackend):
    """Shared submit/collect logic for the two ``concurrent.futures`` pools."""

    def __init__(self, n_workers: int) -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.n_workers = n_workers
        self._pool: Optional[Executor] = None

    def _make_pool(self) -> Executor:
        raise NotImplementedError

    def map(
        self, fn: Callable[[_Task], _Result], tasks: Sequence[_Task]
    ) -> List[_Result]:
        """Submit all tasks, then gather results in submission order."""
        if not tasks:
            return []
        if self._pool is None:
            self._pool = self._make_pool()
        futures = [self._pool.submit(fn, task) for task in tasks]
        return [future.result() for future in futures]

    def close(self) -> None:
        """Shut the pool down and drop the worker handles."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


class ThreadBackend(_PoolBackend):
    """Thread-pool execution; parallel where numpy releases the GIL."""

    name = "thread"

    def _make_pool(self) -> Executor:
        return ThreadPoolExecutor(
            max_workers=self.n_workers, thread_name_prefix="repro-shard"
        )


class ProcessBackend(_PoolBackend):
    """Process-pool execution; requires picklable tasks and results."""

    name = "process"

    def _make_pool(self) -> Executor:
        return ProcessPoolExecutor(max_workers=self.n_workers)


def make_backend(kind: str, n_workers: Optional[int] = None) -> ShardBackend:
    """Factory keyed by backend name.

    ``n_workers`` defaults to the shard count the engine passes in; it is
    ignored by the serial backend.
    """
    if kind == "serial":
        return SerialBackend()
    workers = 1 if n_workers is None else n_workers
    if kind == "thread":
        return ThreadBackend(workers)
    if kind == "process":
        return ProcessBackend(workers)
    raise ValueError(
        f"unknown shard backend {kind!r}; available: {', '.join(BACKENDS)}"
    )
