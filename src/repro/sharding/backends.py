"""Worker-pool executors behind the sharded engine.

Three interchangeable backends run the per-shard task functions of
:mod:`repro.sharding.worker`:

* :class:`SerialBackend` — runs tasks inline, in submission order.  The
  deterministic reference: every other backend must produce byte-identical
  results (guaranteed because tasks are pure functions of their arguments
  and results are always collected in submission order).
* :class:`ThreadBackend` — ``concurrent.futures.ThreadPoolExecutor``.
  Cheap to spin up and effective when tasks spend their time inside numpy
  (which releases the GIL for BLAS work).
* :class:`ProcessBackend` — ``concurrent.futures.ProcessPoolExecutor``.
  True multi-core parallelism; tasks and results cross a pickle boundary,
  so task functions must be module-level and arguments picklable (the
  worker module is written to that contract).

All backends expose the same two operations — ordered :meth:`map` and
:meth:`close` — plus context-manager sugar.  Ordered collection is the
load-bearing property: completion order may vary wildly across backends
and runs, but ``map`` always returns ``[fn(t) for t in tasks]`` in task
order, which is what makes the engine's merge step deterministic.

Backends are safe to share between session driver threads: the serving
layer (:mod:`repro.serve`) hands one pool to many concurrent sessions, so
lazy pool construction is lock-guarded and ``submit`` relies on the
``concurrent.futures`` executors' own thread safety.  A shared pool is
usually wrapped in a :class:`MeteredBackend`, which counts dispatched
tasks and the wall-clock demand placed on the pool so the service can
report utilization.
"""

from __future__ import annotations

import abc
import threading
import time
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, List, Optional, Sequence, TypeVar

__all__ = [
    "BACKENDS",
    "ShardBackend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "MeteredBackend",
    "make_backend",
]

BACKENDS = ("serial", "thread", "process")

_Task = TypeVar("_Task")
_Result = TypeVar("_Result")


class ShardBackend(abc.ABC):
    """Common contract: ordered map over pure task functions."""

    #: backend identifier, matching the :func:`make_backend` key
    name: str = "abstract"

    @abc.abstractmethod
    def map(
        self, fn: Callable[[_Task], _Result], tasks: Sequence[_Task]
    ) -> List[_Result]:
        """Apply ``fn`` to every task and return results in *task* order."""

    def close(self) -> None:
        """Release pooled workers (idempotent; no-op for serial)."""

    def warm(self) -> None:
        """Eagerly build the worker pool (no-op for serial).

        Long-lived owners (the serving engine) call this from the
        constructing thread so a process pool is forked *before* any
        driver threads exist — forking a multi-threaded process can leave
        child workers holding another thread's locks.
        """

    def __enter__(self) -> "ShardBackend":
        """Context-manager entry: the backend itself."""
        return self

    def __exit__(self, *exc_info: object) -> None:
        """Context-manager exit: shut the pool down."""
        self.close()


def _warm_noop() -> None:
    """Module-level no-op task used to pre-fork pool workers (picklable)."""


class SerialBackend(ShardBackend):
    """Inline execution — the deterministic reference backend."""

    name = "serial"

    def map(
        self, fn: Callable[[_Task], _Result], tasks: Sequence[_Task]
    ) -> List[_Result]:
        """Run every task in the calling thread, in order."""
        return [fn(task) for task in tasks]


class _PoolBackend(ShardBackend):
    """Shared submit/collect logic for the two ``concurrent.futures`` pools."""

    def __init__(self, n_workers: int) -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.n_workers = n_workers
        self._pool: Optional[Executor] = None
        self._lock = threading.Lock()

    def _make_pool(self) -> Executor:
        raise NotImplementedError

    def map(
        self, fn: Callable[[_Task], _Result], tasks: Sequence[_Task]
    ) -> List[_Result]:
        """Submit all tasks, then gather results in submission order."""
        if not tasks:
            return []
        with self._lock:
            # Concurrent session drivers may race to the first map() call;
            # only one of them must build the executor.
            if self._pool is None:
                self._pool = self._make_pool()
            pool = self._pool
        futures = [pool.submit(fn, task) for task in tasks]
        return [future.result() for future in futures]

    def close(self) -> None:
        """Shut the pool down and drop the worker handles."""
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def warm(self) -> None:
        """Build the executor and pre-start its workers, on this thread.

        Executors start workers lazily at submit time, so warming submits
        one no-op per worker — a process pool forks every child here,
        before the owner spins up any other threads.
        """
        with self._lock:
            if self._pool is None:
                self._pool = self._make_pool()
            pool = self._pool
        futures = [pool.submit(_warm_noop) for _ in range(self.n_workers)]
        for future in futures:
            future.result()


class ThreadBackend(_PoolBackend):
    """Thread-pool execution; parallel where numpy releases the GIL."""

    name = "thread"

    def _make_pool(self) -> Executor:
        return ThreadPoolExecutor(
            max_workers=self.n_workers, thread_name_prefix="repro-shard"
        )


class ProcessBackend(_PoolBackend):
    """Process-pool execution; requires picklable tasks and results."""

    name = "process"

    def _make_pool(self) -> Executor:
        return ProcessPoolExecutor(max_workers=self.n_workers)


class MeteredBackend(ShardBackend):
    """A pass-through wrapper that meters the demand placed on a backend.

    Every ``map`` call is forwarded unchanged; the wrapper accumulates the
    number of tasks dispatched, the number of ``map`` batches, and the
    summed wall-clock time spent inside ``map``.  When several session
    drivers share the pool their batches overlap in time, so
    ``busy_seconds`` measures *demand* (it can exceed elapsed wall time);
    dividing by ``workers x elapsed`` yields the utilization figure the
    serving layer reports.
    """

    name = "metered"

    def __init__(self, inner: ShardBackend) -> None:
        self.inner = inner
        self.name = f"metered-{inner.name}"
        self._lock = threading.Lock()
        self.tasks_dispatched = 0
        self.batches_dispatched = 0
        self.busy_seconds = 0.0

    @property
    def n_workers(self) -> int:
        """Worker count of the wrapped backend (1 for serial)."""
        return getattr(self.inner, "n_workers", 1)

    def map(
        self, fn: Callable[[_Task], _Result], tasks: Sequence[_Task]
    ) -> List[_Result]:
        """Forward to the wrapped backend, accounting tasks and wall time."""
        began = time.perf_counter()
        try:
            return self.inner.map(fn, tasks)
        finally:
            elapsed = time.perf_counter() - began
            with self._lock:
                self.tasks_dispatched += len(tasks)
                self.batches_dispatched += 1
                self.busy_seconds += elapsed

    def close(self) -> None:
        """Close the wrapped backend."""
        self.inner.close()

    def warm(self) -> None:
        """Eagerly build the wrapped backend's pool."""
        self.inner.warm()

    def utilization(self, elapsed_seconds: float) -> float:
        """Fraction of ``workers x elapsed`` wall capacity that was demanded."""
        if elapsed_seconds <= 0:
            return 0.0
        return self.busy_seconds / (self.n_workers * elapsed_seconds)


def make_backend(kind: str, n_workers: Optional[int] = None) -> ShardBackend:
    """Factory keyed by backend name.

    ``n_workers`` defaults to the shard count the engine passes in; it is
    ignored by the serial backend.
    """
    if kind == "serial":
        return SerialBackend()
    workers = 1 if n_workers is None else n_workers
    if kind == "thread":
        return ThreadBackend(workers)
    if kind == "process":
        return ProcessBackend(workers)
    raise ValueError(
        f"unknown shard backend {kind!r}; available: {', '.join(BACKENDS)}"
    )
