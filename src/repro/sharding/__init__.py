"""Parallel sharded execution for the batch and streaming pipelines.

The multiparty pipeline is embarrassingly parallel almost everywhere —
per-party perturbation, per-window transforms, prequential scoring, and
per-party risk profiling are all independent units of work — but the seed
implementation ran every one of them on a single thread.  This subsystem
supplies the missing engine:

* :mod:`~repro.sharding.plan` — :class:`ShardPlan`, deterministic
  hash/round-robin/per-party assignment of windows, records, and batches
  to N logical shards;
* :mod:`~repro.sharding.backends` — interchangeable serial / thread-pool /
  process-pool executors with order-preserving ``map``;
* :mod:`~repro.sharding.worker` — the pure, picklable task functions
  (stacked-matmul window transform, snapshot prediction, per-party risk
  profiling);
* :mod:`~repro.sharding.engine` — :class:`ShardPool` (plan + backend) and
  :class:`DataPlane` (a persistent :mod:`repro.simnet` network that
  charges every per-shard record batch, forward hop, and merged result to
  the message/byte ledgers).

Determinism guarantee: task content never depends on shard count or
backend, results are merged in fixed window/shard order, and all noise is
drawn from ``(root, window, party)``-keyed generators — so a session with
``shards=4`` on the process backend is bit-identical to ``shards=1`` on
the serial one.
"""

from .backends import (
    BACKENDS,
    MeteredBackend,
    ProcessBackend,
    SerialBackend,
    ShardBackend,
    ShardFutures,
    ThreadBackend,
    make_backend,
)
from .engine import DataPlane, ShardPool
from .plan import SHARD_STRATEGIES, ShardPlan
from .worker import party_risk_task, predict_window, transform_window

__all__ = [
    "SHARD_STRATEGIES",
    "ShardPlan",
    "BACKENDS",
    "ShardBackend",
    "ShardFutures",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "MeteredBackend",
    "make_backend",
    "ShardPool",
    "DataPlane",
    "transform_window",
    "predict_window",
    "party_risk_task",
]
