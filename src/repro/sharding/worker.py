"""Pure task functions executed on worker shards.

Every function here is a *pure* function of one picklable ``task`` dict —
no shared state, no live objects — so the same task produces bit-identical
results on the serial, thread, and process backends, and results can be
merged in plan order regardless of completion order.  That purity is the
whole determinism story of :mod:`repro.sharding`: the engine never lets a
task's content depend on *where* or *when* it runs.

Three task families:

* :func:`transform_window` — normalize one window's fresh rows and move
  them into the negotiated target space with a **single stacked matmul**.
  The per-party loop of the original streaming session is gone: composing
  a party's perturbation ``G_i : (R_i, t_i, sigma_i)`` with its adaptor
  ``A_it = <R_t R_i^{-1}, t_t - R_t R_i^{-1} t_i>`` collapses analytically,

      ``A_it(G_i(x)) = R_t x + t_t + R_t R_i^{-1} Delta_i``,

  so the rotation/translation part is *party-independent* — one
  ``X_norm @ R_t'`` covers every provider's rows at once — and only the
  (cheap, additive) complementary-noise term stays per-party.  The noise
  is drawn from a generator seeded by ``(root, window, party)``, never
  from a sequentially shared stream, so realizations are independent of
  the shard count and backend.
* :func:`predict_window` — prequential prediction from a frozen miner
  snapshot (:func:`repro.streaming.online_miner.predict_from_state`).
* :func:`party_risk_task` — one party's privacy/risk profile for the
  batch session (attack-suite guarantees plus the bound estimate), the
  embarrassingly parallel tail of ``run_sap_session(compute_privacy=True)``.
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

from ..core.normalization import MinMaxNormalizer, ZScoreNormalizer
from ..core.perturbation import GeometricPerturbation

__all__ = ["transform_window", "predict_window", "party_risk_task"]


def _frozen_normalizer(task: Dict[str, Any]):
    """Rebuild the frozen batch normalizer shipped with a transform task."""
    kind = task["norm_kind"]
    if kind == "minmax":
        return MinMaxNormalizer(
            minimums=task["norm_a"], maximums=task["norm_b"]
        )
    if kind == "zscore":
        return ZScoreNormalizer(means=task["norm_a"], stds=task["norm_b"])
    raise ValueError(f"unknown normalizer kind {kind!r}")


def transform_window(task: Dict[str, Any]) -> Dict[str, np.ndarray]:
    """Normalize + perturb + adapt one window's fresh rows.

    Task fields
    -----------
    ``X`` (n, d)
        The window's fresh raw rows.
    ``norm_kind`` / ``norm_a`` / ``norm_b``
        Frozen normalizer state (window-order-merged, so identical for
        every shard count).
    ``rotation`` (d, d) / ``translation`` (d,)
        The epoch's target perturbation ``G_t``.
    ``adaptor_rotations`` (k, d, d)
        Stacked per-party rotation adaptors ``R_t R_i^{-1}`` (the
        complementary-noise maps).
    ``sigmas`` (k,)
        Per-party effective noise levels fixed at negotiation time.
    ``noise_root`` / ``window_index`` / ``revision``
        Seed material: party ``p``'s noise generator is
        ``default_rng([noise_root, window_index, p])`` for a window's
        first emission (``revision`` 0 or absent — the legacy keying,
        kept bit-identical), and
        ``default_rng([noise_root, window_index, p, revision])`` for an
        ``upsert`` correction, so late rows draw noise independent of the
        sealed window's.

    Returns ``{"X_norm": (n, d), "X_target": (n, d)}`` — the normalized
    rows (the baseline miner's view) and the unified-target-space rows
    (the SAP miner's view).  Rows keep their arrival order; record ``i``
    belongs to party ``i % k``, matching the stream session's round-robin
    attribution.
    """
    X = np.asarray(task["X"], dtype=float)
    X_norm = _frozen_normalizer(task).transform(X)

    rotation = np.asarray(task["rotation"], dtype=float)
    translation = np.asarray(task["translation"], dtype=float)
    # The stacked matmul: every party's rows share the target map.
    X_target = X_norm @ rotation.T + translation

    adaptor_rotations = np.asarray(task["adaptor_rotations"], dtype=float)
    sigmas = np.asarray(task["sigmas"], dtype=float)
    k = adaptor_rotations.shape[0]
    parties = np.arange(X.shape[0]) % k
    revision = int(task.get("revision", 0))
    for party in range(k):
        sigma = float(sigmas[party])
        if sigma <= 0.0:
            continue
        rows = parties == party
        n_p = int(rows.sum())
        if n_p == 0:
            continue
        seed_key = [int(task["noise_root"]), int(task["window_index"]), party]
        if revision:
            # Corrections extend the key instead of re-using the sealed
            # window's stream, which would correlate the late rows' noise
            # with rows already released.
            seed_key.append(revision)
        rng = np.random.default_rng(seed_key)
        # Same orientation as GeometricPerturbation.apply: (d, n) columns.
        noise = rng.normal(scale=sigma, size=(X.shape[1], n_p))
        X_target[rows] += (adaptor_rotations[party] @ noise).T
    return {"X_norm": X_norm, "X_target": X_target}


def predict_window(task: Dict[str, Any]) -> np.ndarray:
    """Predict labels for one window from a frozen miner snapshot.

    ``task`` holds ``state`` (see ``OnlineClassifier.export_predict_state``)
    and ``X``, the rows to score.  Pure and stateless: the snapshot was
    taken *before* the window's training step, so prequential
    test-then-train semantics survive the parallel dispatch.
    """
    # Imported lazily: repro.streaming itself builds on repro.sharding, so
    # a module-level import would be circular.
    from ..streaming.online_miner import predict_from_state

    return predict_from_state(task["state"], np.asarray(task["X"], dtype=float))


def party_risk_task(task: Dict[str, Any]) -> Any:
    """Compute one party's :class:`~repro.core.risk.PartyRiskProfile`.

    Task fields: ``party`` (node name), ``X_cols`` (d, n) local table,
    ``perturbation`` (the party's ``G_i``), ``target`` (the negotiated
    ``G_t``), ``noise_sigma``, ``k``, optimizer budget
    (``optimizer_rounds`` / ``optimizer_local_steps``), three seeds
    (``rho_local_seed`` / ``rho_global_seed`` / ``optimizer_seed``), and an
    optional ``suite`` (``None`` selects the fast attack suite, built
    inside the worker so process backends never pickle it).

    Heavy imports happen lazily here both to dodge the ``attacks -> core``
    import cycle and to keep fork-based worker start cheap.
    """
    from ..attacks.resilience import fast_suite
    from ..core.optimizer import PerturbationOptimizer
    from ..core.risk import PartyRiskProfile

    suite = task.get("suite") or fast_suite()
    X_cols = np.asarray(task["X_cols"], dtype=float)
    perturbation: GeometricPerturbation = task["perturbation"]
    target: GeometricPerturbation = task["target"]

    rho_local = suite.guarantee(
        perturbation, X_cols, np.random.default_rng(task["rho_local_seed"])
    )
    global_perturbation = GeometricPerturbation(
        rotation=target.rotation,
        translation=target.translation,
        noise_sigma=task["noise_sigma"],
    )
    rho_global = suite.guarantee(
        global_perturbation, X_cols, np.random.default_rng(task["rho_global_seed"])
    )
    optimizer = PerturbationOptimizer(
        n_rounds=max(4, int(task["optimizer_rounds"]) // 2),
        local_steps=int(task["optimizer_local_steps"]),
        noise_sigma=task["noise_sigma"],
        suite=suite,
        seed=int(task["optimizer_seed"]),
    )
    result = optimizer.optimize(X_cols)
    b_hat = max(result.b_hat, rho_local, 1e-9)
    return PartyRiskProfile(
        party=task["party"],
        rho_local=max(rho_local, 1e-9),
        rho_global=rho_global,
        b=b_hat,
        k=int(task["k"]),
    )
