"""The sharded execution engine's data plane and executor facade.

Compute and accounting are deliberately split:

* **Compute** runs through a :class:`ShardPool` — a :class:`ShardPlan`
  plus a worker-pool backend.  Tasks are the pure functions of
  :mod:`repro.sharding.worker`; results always come back in task order,
  and per-window merge happens in window order, so the numbers a session
  produces are bit-identical across shard counts and backends.
* **Accounting** runs through a :class:`DataPlane` — a persistent
  :mod:`repro.simnet` network with one gate node per data provider, one
  node per logical shard, and a miner sink.  Every per-window party batch
  is serialized, encrypted, and delivered over it (``SHARD_BATCH``, plus a
  ``SHARD_FORWARD`` hop when the plan's batch affinity differs from the
  window's owner, and a ``SHARD_RESULT`` submission of the merged window
  to the miner), so the message/byte cost of sharded ingestion is charged
  exactly like the negotiation traffic — nothing moves off the books.

The data plane's counters are kept separate from the negotiation
network's: a session reports control-plane and shard-traffic costs
side by side rather than blending them.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, TypeVar

import numpy as np

from ..simnet.channel import Network
from ..simnet.messages import Message, MessageKind
from ..simnet.node import Node
from .backends import ShardBackend, ShardFutures, make_backend
from .plan import ShardPlan

__all__ = ["ShardPool", "DataPlane"]

_Task = TypeVar("_Task")
_Result = TypeVar("_Result")


class ShardPool:
    """A shard plan bound to an executor backend.

    The pool is the engine's single compute entry point: ``map`` fans a
    list of pure tasks out to the backend and returns results in task
    order.  Logical shard ids (from the plan) decide data routing and
    merge order; the backend decides physical placement — the two are
    independent, which is why results cannot depend on scheduling.

    ``backend`` may be a backend *name* (the pool builds and owns a fresh
    executor sized to the plan) or an already-built :class:`ShardBackend`
    *instance* — the sharing hook the serving layer uses to run many
    concurrent sessions over one physical worker pool.  A shared instance
    is never shut down by :meth:`close`; its owner does that.
    """

    def __init__(
        self, plan: ShardPlan, backend: str | ShardBackend = "serial"
    ) -> None:
        self.plan = plan
        if isinstance(backend, ShardBackend):
            self.backend = backend
            self._owns_backend = False
        else:
            self.backend = make_backend(backend, plan.n_shards)
            self._owns_backend = True

    def map(
        self, fn: Callable[[_Task], _Result], tasks: Sequence[_Task]
    ) -> List[_Result]:
        """Ordered map over the backend (see :meth:`ShardBackend.map`)."""
        return self.backend.map(fn, tasks)

    def submit_map(
        self, fn: Callable[[_Task], _Result], tasks: Sequence[_Task]
    ) -> ShardFutures:
        """Asynchronous dispatch (see :meth:`ShardBackend.submit_map`)."""
        return self.backend.submit_map(fn, tasks)

    @property
    def supports_overlap(self) -> bool:
        """Whether dispatches can run while the driver does other work."""
        return self.backend.supports_overlap

    def close(self) -> None:
        """Release the backend's worker pool (no-op for a shared backend)."""
        if self._owns_backend:
            self.backend.close()

    def __enter__(self) -> "ShardPool":
        """Context-manager entry: the pool itself."""
        return self

    def __exit__(self, *exc_info: object) -> None:
        """Context-manager exit: release the workers."""
        self.close()


class _PartyGate(Node):
    """A data provider's ingest gate: sends batches, expects no replies.

    ``records_sent`` counts the rows this provider pushed onto the wire,
    giving the data plane a per-provider traffic view that lines up with
    the ingestion plane's per-provider gate counters.
    """

    def __init__(self, name: str, network: Network, seed: int = 0) -> None:
        super().__init__(name, network, seed=seed)
        self.records_sent = 0


class _ShardWorkerNode(Node):
    """A logical shard's network presence: receives (and forwards) batches."""

    def __init__(self, name: str, network: Network, index: int, seed: int = 0) -> None:
        super().__init__(name, network, seed=seed)
        self.index = index
        self.records_received = 0
        self.batches_received = 0

    def on_shard_batch(self, message: Message) -> None:
        """Accept a party batch, forwarding it when another shard owns it."""
        owner = int(message.payload["owner"])
        if owner != self.index:
            # Party-affine routing delivered the batch here; hand it to the
            # window's owner (an extra, fully accounted network hop).
            self.send(
                MessageKind.SHARD_FORWARD,
                f"shard-{owner}",
                dict(message.payload),
            )
            return
        self._absorb(message)

    def on_shard_forward(self, message: Message) -> None:
        """Accept a batch forwarded from a party-affine shard."""
        self._absorb(message)

    def _absorb(self, message: Message) -> None:
        self.records_received += int(
            np.asarray(message.payload["X"]).shape[0]
        )
        self.batches_received += 1


class _MinerSink(Node):
    """The miner's ingest endpoint for merged per-window result batches."""

    def __init__(self, name: str, network: Network, seed: int = 0) -> None:
        super().__init__(name, network, seed=seed)
        self.windows_received = 0
        self.records_received = 0

    def on_shard_result(self, message: Message) -> None:
        """Account one merged window batch."""
        self.windows_received += 1
        self.records_received += int(np.asarray(message.payload["X"]).shape[0])


class DataPlane:
    """Persistent simnet network carrying the sharded session's data traffic.

    One instance lives for a whole streaming session (unlike the
    per-epoch negotiation networks), so latency, bandwidth, and adversary
    ledgers accumulate over the run exactly as they would on a long-lived
    deployment.
    """

    def __init__(
        self,
        plan: ShardPlan,
        provider_names: Sequence[str],
        seed: int = 0,
        miner_name: str = "stream-miner",
    ) -> None:
        self.plan = plan
        self.network = Network(seed=seed)
        self.gates = [_PartyGate(name, self.network) for name in provider_names]
        self.shards = [
            _ShardWorkerNode(f"shard-{index}", self.network, index=index)
            for index in range(plan.n_shards)
        ]
        self.sink = _MinerSink(miner_name, self.network)

    def route_window(
        self,
        window_index: int,
        party_slices: Sequence[Optional[np.ndarray]],
        merged: np.ndarray,
    ) -> None:
        """Charge one window's data movement to the network.

        ``party_slices[p]`` is party ``p``'s share of the window's
        target-space batch (``None``/empty when the party contributed no
        rows); ``merged`` is the full window the owner submits to the
        miner.  Providers adapt locally — they hold their own adaptors —
        so the wire carries target-space rows.
        """
        owner = self.plan.shard_of_window(window_index)
        for party, rows in enumerate(party_slices):
            if rows is None or rows.shape[0] == 0:
                continue
            destination = self.plan.shard_of_batch(window_index, party)
            self.gates[party].records_sent += int(rows.shape[0])
            self.gates[party].send(
                MessageKind.SHARD_BATCH,
                f"shard-{destination}",
                {"window": window_index, "owner": owner, "X": rows},
            )
        self.shards[owner].send(
            MessageKind.SHARD_RESULT,
            self.sink.name,
            {"window": window_index, "X": merged},
        )

    def flush(self) -> None:
        """Deliver everything in flight (runs the discrete-event kernel)."""
        self.network.run()

    @property
    def messages_sent(self) -> int:
        """Data-plane messages accepted for transmission so far."""
        return self.network.messages_sent

    @property
    def bytes_sent(self) -> int:
        """Data-plane payload bytes accepted for transmission so far."""
        return self.network.bytes_sent

    @property
    def shard_records(self) -> List[int]:
        """Records absorbed per logical shard, in fixed shard order."""
        return [shard.records_received for shard in self.shards]

    @property
    def provider_records(self) -> List[int]:
        """Rows pushed per provider gate, in fixed provider order."""
        return [gate.records_sent for gate in self.gates]
