"""Deterministic partitioning of stream/batch work across worker shards.

A :class:`ShardPlan` decides *where* a unit of work lives: which logical
shard owns a window of stream records, where a party's per-window batch is
routed, and how a flat index range is split for batch-parallel work.  The
plan is pure arithmetic over indices — it never looks at data values — so
the assignment is reproducible across runs, processes, and executor
backends, which is what lets the engine merge per-shard results in a fixed
order and produce bit-identical output regardless of how work was
physically scheduled.

Three strategies mirror the partitioning modes named in the roadmap:

* ``round_robin`` — ``key % n_shards``; perfectly balanced, the default;
* ``hash``        — a splitmix64 finalizer over ``key ^ salt``; balanced in
  expectation and independent of key *order*, so interleaving or renaming
  streams never skews placement (resizing ``n_shards`` remaps keys, as
  with any modulo hash);
* ``party``       — per-party affinity: every batch from data provider
  ``p`` lands on shard ``p % n_shards``, modelling deployments where each
  provider maintains a dedicated ingest link.  Window ownership stays
  round-robin, so a non-owner shard *forwards* party batches to the owner
  (the engine charges that extra hop to the simulated network).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

__all__ = ["ShardPlan", "SHARD_STRATEGIES"]

SHARD_STRATEGIES = ("round_robin", "hash", "party")

_MASK64 = (1 << 64) - 1


def _splitmix64(value: int) -> int:
    """The splitmix64 finalizer: a fast, well-mixed 64-bit permutation.

    Used instead of Python's ``hash`` because the builtin is salted per
    process — worthless for an assignment that must agree across the
    process-pool backend's workers.
    """
    value = (value + 0x9E3779B97F4A7C15) & _MASK64
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & _MASK64
    return (value ^ (value >> 31)) & _MASK64


@dataclass(frozen=True)
class ShardPlan:
    """Assignment of windows, records, and party batches to ``n_shards``.

    Attributes
    ----------
    n_shards:
        Number of logical shards (>= 1).  Logical shards are merge slots,
        not OS threads: the executor backend decides physical placement,
        and the merge step always iterates shards ``0..n_shards-1``.
    strategy:
        One of :data:`SHARD_STRATEGIES`.
    n_parties:
        Number of data providers; required by the ``party`` strategy so
        batch routing can validate party indices.
    salt:
        Mixed into the ``hash`` strategy's key so two concurrent sessions
        shard independently.
    """

    n_shards: int
    strategy: str = "round_robin"
    n_parties: Optional[int] = None
    salt: int = 0

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        if self.strategy not in SHARD_STRATEGIES:
            raise ValueError(
                f"unknown shard strategy {self.strategy!r}; available: "
                f"{', '.join(SHARD_STRATEGIES)}"
            )
        if self.strategy == "party" and (
            self.n_parties is None or self.n_parties < 1
        ):
            raise ValueError("the 'party' strategy requires n_parties >= 1")

    # ------------------------------------------------------------------
    # assignment
    # ------------------------------------------------------------------
    def shard_of_window(self, window_index: int) -> int:
        """Logical shard that *owns* window ``window_index``.

        The owner runs the window's transform, merges its party batches,
        and submits the result batch to the miner.  Ownership is
        round-robin for the ``party`` strategy too — party affinity applies
        to batch *routing*, not window compute (see :meth:`shard_of_batch`).
        """
        if window_index < 0:
            raise ValueError("window_index must be >= 0")
        if self.strategy == "hash":
            return int(_splitmix64(window_index ^ self.salt) % self.n_shards)
        return window_index % self.n_shards

    def shard_of_record(self, record_index: int, party: Optional[int] = None) -> int:
        """Logical shard a raw record would be routed to.

        Exposed for record-granular pipelines (the streaming engine shards
        at window granularity so that window contents — and therefore all
        downstream numerics — are independent of the shard count).
        """
        if record_index < 0:
            raise ValueError("record_index must be >= 0")
        if self.strategy == "party":
            if party is None:
                raise ValueError("the 'party' strategy needs the record's party")
            return self._party_shard(party)
        if self.strategy == "hash":
            return int(_splitmix64(record_index ^ self.salt) % self.n_shards)
        return record_index % self.n_shards

    def shard_of_batch(self, window_index: int, party: int) -> int:
        """Shard that *receives* party ``party``'s batch of one window.

        Under ``round_robin``/``hash`` batches go straight to the window's
        owner.  Under ``party`` they go to the party's affine shard, which
        forwards to the owner when the two differ.
        """
        if self.strategy == "party":
            return self._party_shard(party)
        return self.shard_of_window(window_index)

    def _party_shard(self, party: int) -> int:
        assert self.n_parties is not None
        if not 0 <= party < self.n_parties:
            raise ValueError(
                f"party {party} out of range for n_parties={self.n_parties}"
            )
        return party % self.n_shards

    # ------------------------------------------------------------------
    # batch-parallel helpers
    # ------------------------------------------------------------------
    def partition_indices(
        self, n_items: int, parties: Optional[np.ndarray] = None
    ) -> List[np.ndarray]:
        """Split ``range(n_items)`` into per-shard index arrays.

        Used by batch-parallel callers (e.g. the batch session's per-party
        risk profiling) to hand each shard a contiguous work list.  The
        returned arrays are sorted, disjoint, and cover every index; their
        concatenation in shard order is the canonical merge order.
        """
        if n_items < 0:
            raise ValueError("n_items must be >= 0")
        if self.strategy == "party" and parties is None:
            # Default attribution matches the stream session's round-robin
            # record-to-provider mapping.
            parties = np.arange(n_items) % int(self.n_parties)
        owners = np.array(
            [
                self.shard_of_record(
                    i, None if parties is None else int(parties[i])
                )
                for i in range(n_items)
            ],
            dtype=int,
        )
        return [
            np.flatnonzero(owners == shard) for shard in range(self.n_shards)
        ]
