"""Column normalization.

The paper defines the perturbation over "the *normalized* original dataset";
its translation component is drawn from ``U[-1, 1]`` per dimension, which
only makes sense when columns live on a comparable scale.  The min-max
normalizer (to ``[0, 1]``) is the one used throughout this reproduction; a
z-score normalizer is provided for ablations.

In the multiparty setting the providers must agree on *common* bounds or
the pooled table would mix scales.  The bounds are treated as
domain-knowledge metadata (age ranges, vote domains, ...), which matches
how the original experiments normalize the pooled UCI tables before
splitting them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = ["MinMaxNormalizer", "ZScoreNormalizer"]


@dataclass
class MinMaxNormalizer:
    """Map each column to ``[0, 1]`` using fitted (or supplied) bounds.

    Operates on row-major ``(n, d)`` matrices.  Constant columns map to
    ``0.5`` (centre of the range) instead of dividing by zero.
    """

    minimums: Optional[np.ndarray] = None
    maximums: Optional[np.ndarray] = None

    def fit(self, X: np.ndarray) -> "MinMaxNormalizer":
        """Learn per-column bounds from ``X``."""
        X = np.asarray(X, dtype=float)
        if X.ndim != 2:
            raise ValueError("X must be 2-D")
        self.minimums = X.min(axis=0)
        self.maximums = X.max(axis=0)
        return self

    def _check(self, X: np.ndarray) -> np.ndarray:
        if self.minimums is None or self.maximums is None:
            raise RuntimeError("normalizer is not fitted")
        X = np.asarray(X, dtype=float)
        if X.ndim != 2 or X.shape[1] != self.minimums.shape[0]:
            raise ValueError(
                f"X has shape {X.shape}, normalizer was fitted on "
                f"{self.minimums.shape[0]} columns"
            )
        return X

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Scale columns into ``[0, 1]`` (values outside the fitted bounds
        extrapolate linearly — providers may hold unseen extremes)."""
        X = self._check(X)
        span = self.maximums - self.minimums
        safe = np.where(span > 0, span, 1.0)
        out = (X - self.minimums) / safe
        constant = span == 0
        if constant.any():
            out[:, constant] = 0.5
        return out

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        """Fit on ``X`` then transform it."""
        return self.fit(X).transform(X)

    def inverse_transform(self, X: np.ndarray) -> np.ndarray:
        """Map normalized values back to the original scale."""
        X = self._check(X)
        span = self.maximums - self.minimums
        return X * span + self.minimums


@dataclass
class ZScoreNormalizer:
    """Standardize each column to zero mean and unit variance."""

    means: Optional[np.ndarray] = None
    stds: Optional[np.ndarray] = None

    def fit(self, X: np.ndarray) -> "ZScoreNormalizer":
        """Learn per-column moments from ``X``."""
        X = np.asarray(X, dtype=float)
        if X.ndim != 2:
            raise ValueError("X must be 2-D")
        self.means = X.mean(axis=0)
        self.stds = X.std(axis=0)
        return self

    def _check(self, X: np.ndarray) -> np.ndarray:
        if self.means is None or self.stds is None:
            raise RuntimeError("normalizer is not fitted")
        X = np.asarray(X, dtype=float)
        if X.ndim != 2 or X.shape[1] != self.means.shape[0]:
            raise ValueError(
                f"X has shape {X.shape}, normalizer was fitted on "
                f"{self.means.shape[0]} columns"
            )
        return X

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Standardize columns (constant columns map to 0)."""
        X = self._check(X)
        safe = np.where(self.stds > 0, self.stds, 1.0)
        return (X - self.means) / safe

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        """Fit on ``X`` then transform it."""
        return self.fit(X).transform(X)

    def inverse_transform(self, X: np.ndarray) -> np.ndarray:
        """Undo standardization."""
        X = self._check(X)
        return X * self.stds + self.means
