"""Space adaptation: moving a perturbed table into the target space.

Section 3 of the paper.  Given a provider's perturbation
``G_i : (R_i, t_i)`` (with noise) and the protocol's target perturbation
``G_t : (R_t, t_t)`` (noise-free), the provider's perturbed table
``Y_i = R_i X_i + Psi_i + Delta_i`` can be re-expressed as

    Y_{i->t} = R_t R_i^{-1} Y_i + (Psi_t - R_t R_i^{-1} Psi_i)
               = R_t X_i + Psi_t + R_t R_i^{-1} Delta_i

The first factor is the **rotation adaptor** ``R_it = R_t R_i^{-1}``; the
second summand the **translation adaptor**
``Psi_it = Psi_t - R_t R_i^{-1} Psi_i`` (still rank-one, so it is stored as
a vector); the surviving term ``Delta_it = R_t R_i^{-1} Delta_i`` is the
**complementary noise** — inheriting the source-space noise is equivalent
to never removing it, which is the point: the adaptor alone cannot
de-noise anyone's data.

Crucially, the pair ``<R_it, Psi_it>`` reveals neither ``R_i`` nor ``R_t``
individually (it is their product plus a blinded translation), which is
why providers may hand adaptors to the coordinator.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from .perturbation import GeometricPerturbation
from .rotation import is_orthogonal

__all__ = [
    "SpaceAdaptor",
    "AdaptorCache",
    "compute_adaptor",
    "complementary_noise",
]


@dataclass(frozen=True)
class SpaceAdaptor:
    """The pair ``<R_it, Psi_it>`` a provider submits to the coordinator."""

    rotation_adaptor: np.ndarray
    translation_adaptor: np.ndarray

    def __post_init__(self) -> None:
        rotation = np.asarray(self.rotation_adaptor, dtype=float)
        translation = np.asarray(self.translation_adaptor, dtype=float)
        object.__setattr__(self, "rotation_adaptor", rotation)
        object.__setattr__(self, "translation_adaptor", translation)
        d = translation.shape[0]
        if rotation.shape != (d, d):
            raise ValueError(
                f"rotation adaptor {rotation.shape} does not match translation "
                f"dimension {d}"
            )
        if not is_orthogonal(rotation):
            raise ValueError(
                "rotation adaptor must be orthogonal (product of orthogonal "
                "matrices)"
            )

    @property
    def dimension(self) -> int:
        """Data dimensionality ``d``."""
        return self.translation_adaptor.shape[0]

    def apply(self, Y: np.ndarray) -> np.ndarray:
        """Adapt a perturbed table (``d x N``) into the target space."""
        Y = np.asarray(Y, dtype=float)
        if Y.ndim != 2 or Y.shape[0] != self.dimension:
            raise ValueError(
                f"expected column-oriented data with {self.dimension} rows, "
                f"got {Y.shape}"
            )
        return self.rotation_adaptor @ Y + self.translation_adaptor[:, None]


def compute_adaptor(
    source: GeometricPerturbation, target: GeometricPerturbation
) -> SpaceAdaptor:
    """Build ``A_it = <R_t R_i^{-1}, t_t - R_t R_i^{-1} t_i>``.

    ``R^{-1} = R'`` for orthogonal matrices, so no linear solve is needed.
    The target's noise level is irrelevant here (SAP's target space is
    noise-free by construction); only its rotation/translation enter.
    """
    if source.dimension != target.dimension:
        raise ValueError(
            f"dimension mismatch: source d={source.dimension}, "
            f"target d={target.dimension}"
        )
    rotation_adaptor = target.rotation @ source.rotation.T
    translation_adaptor = target.translation - rotation_adaptor @ source.translation
    return SpaceAdaptor(
        rotation_adaptor=rotation_adaptor,
        translation_adaptor=translation_adaptor,
    )


class AdaptorCache:
    """LRU cache of negotiated :class:`SpaceAdaptor` objects.

    Keys are ``(target_id, party_id)``: an opaque identifier of the
    negotiated target space (the streaming session uses the epoch counter)
    and the adapting party's index.  Long-running sessions — the streaming
    engine consults the per-party adaptors every window, and every shard
    task needs the stacked adaptor rotations — hit the cache instead of
    re-deriving ``<R_t R_i^{-1}, Psi_it>`` from the perturbation parameters,
    which cuts repeat re-adaptation latency to a dictionary lookup.

    The cache is bounded (``maxsize`` entries, least-recently-used
    eviction) and thread-safe, so a thread-backend engine may probe it
    concurrently.  :meth:`invalidate` is the re-negotiation hook: when a
    target space is re-drawn, dropping its ``target_id`` evicts every
    stale adaptor at once.
    """

    def __init__(self, maxsize: int = 64) -> None:
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self.maxsize = maxsize
        self._entries: "OrderedDict[Tuple[object, object], SpaceAdaptor]" = (
            OrderedDict()
        )
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        """Number of cached adaptors."""
        with self._lock:
            return len(self._entries)

    def get(self, target_id: object, party_id: object) -> Optional[SpaceAdaptor]:
        """Return the cached adaptor for ``(target_id, party_id)`` or ``None``."""
        key = (target_id, party_id)
        with self._lock:
            adaptor = self._entries.get(key)
            if adaptor is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return adaptor

    def put(self, target_id: object, party_id: object, adaptor: SpaceAdaptor) -> None:
        """Insert (or refresh) one adaptor, evicting the LRU entry if full."""
        key = (target_id, party_id)
        with self._lock:
            self._entries[key] = adaptor
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)

    def get_or_compute(
        self,
        target_id: object,
        party_id: object,
        factory: Callable[[], SpaceAdaptor],
    ) -> SpaceAdaptor:
        """Cached lookup with fallback to ``factory`` (result is cached)."""
        adaptor = self.get(target_id, party_id)
        if adaptor is None:
            adaptor = factory()
            self.put(target_id, party_id, adaptor)
        return adaptor

    def snapshot(self) -> List[Tuple[object, object, SpaceAdaptor]]:
        """Every cached entry as ``(target_id, party_id, adaptor)``, LRU first.

        The checkpoint hook: replaying the snapshot through :meth:`put`
        on a fresh cache reproduces both the contents and the eviction
        order.  Adaptors are immutable, so sharing them is safe.
        """
        with self._lock:
            return [
                (target_id, party_id, adaptor)
                for (target_id, party_id), adaptor in self._entries.items()
            ]

    def invalidate(
        self,
        target_id: Optional[object] = None,
        party_id: Optional[object] = None,
    ) -> int:
        """Drop matching entries; the re-negotiation hook.

        ``invalidate(target_id=e)`` evicts every party's adaptor for a
        stale target; ``invalidate(party_id=p)`` evicts one party across
        targets (e.g. after its trust level — and thus its effective
        perturbation — changes); no arguments clears the cache.  Returns
        the number of evicted entries.
        """
        with self._lock:
            keys = [
                key
                for key in self._entries
                if (target_id is None or key[0] == target_id)
                and (party_id is None or key[1] == party_id)
            ]
            for key in keys:
                del self._entries[key]
            return len(keys)

    @property
    def stats(self) -> Dict[str, int]:
        """Hit/miss/size counters (for reports and tests)."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "size": len(self._entries),
                "maxsize": self.maxsize,
            }


def complementary_noise(
    source: GeometricPerturbation,
    target: GeometricPerturbation,
    noise: np.ndarray,
) -> np.ndarray:
    """``Delta_it = R_t R_i^{-1} Delta_i`` — the noise the target space inherits.

    Provided for analysis/tests: verifies that adapting a noisy table equals
    perturbing the original with the target and adding this matrix.
    """
    noise = np.asarray(noise, dtype=float)
    if noise.shape[0] != source.dimension:
        raise ValueError("noise matrix does not match the data dimension")
    return (target.rotation @ source.rotation.T) @ noise
