"""Space adaptation: moving a perturbed table into the target space.

Section 3 of the paper.  Given a provider's perturbation
``G_i : (R_i, t_i)`` (with noise) and the protocol's target perturbation
``G_t : (R_t, t_t)`` (noise-free), the provider's perturbed table
``Y_i = R_i X_i + Psi_i + Delta_i`` can be re-expressed as

    Y_{i->t} = R_t R_i^{-1} Y_i + (Psi_t - R_t R_i^{-1} Psi_i)
               = R_t X_i + Psi_t + R_t R_i^{-1} Delta_i

The first factor is the **rotation adaptor** ``R_it = R_t R_i^{-1}``; the
second summand the **translation adaptor**
``Psi_it = Psi_t - R_t R_i^{-1} Psi_i`` (still rank-one, so it is stored as
a vector); the surviving term ``Delta_it = R_t R_i^{-1} Delta_i`` is the
**complementary noise** — inheriting the source-space noise is equivalent
to never removing it, which is the point: the adaptor alone cannot
de-noise anyone's data.

Crucially, the pair ``<R_it, Psi_it>`` reveals neither ``R_i`` nor ``R_t``
individually (it is their product plus a blinded translation), which is
why providers may hand adaptors to the coordinator.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .perturbation import GeometricPerturbation
from .rotation import is_orthogonal

__all__ = ["SpaceAdaptor", "compute_adaptor", "complementary_noise"]


@dataclass(frozen=True)
class SpaceAdaptor:
    """The pair ``<R_it, Psi_it>`` a provider submits to the coordinator."""

    rotation_adaptor: np.ndarray
    translation_adaptor: np.ndarray

    def __post_init__(self) -> None:
        rotation = np.asarray(self.rotation_adaptor, dtype=float)
        translation = np.asarray(self.translation_adaptor, dtype=float)
        object.__setattr__(self, "rotation_adaptor", rotation)
        object.__setattr__(self, "translation_adaptor", translation)
        d = translation.shape[0]
        if rotation.shape != (d, d):
            raise ValueError(
                f"rotation adaptor {rotation.shape} does not match translation "
                f"dimension {d}"
            )
        if not is_orthogonal(rotation):
            raise ValueError(
                "rotation adaptor must be orthogonal (product of orthogonal "
                "matrices)"
            )

    @property
    def dimension(self) -> int:
        """Data dimensionality ``d``."""
        return self.translation_adaptor.shape[0]

    def apply(self, Y: np.ndarray) -> np.ndarray:
        """Adapt a perturbed table (``d x N``) into the target space."""
        Y = np.asarray(Y, dtype=float)
        if Y.ndim != 2 or Y.shape[0] != self.dimension:
            raise ValueError(
                f"expected column-oriented data with {self.dimension} rows, "
                f"got {Y.shape}"
            )
        return self.rotation_adaptor @ Y + self.translation_adaptor[:, None]


def compute_adaptor(
    source: GeometricPerturbation, target: GeometricPerturbation
) -> SpaceAdaptor:
    """Build ``A_it = <R_t R_i^{-1}, t_t - R_t R_i^{-1} t_i>``.

    ``R^{-1} = R'`` for orthogonal matrices, so no linear solve is needed.
    The target's noise level is irrelevant here (SAP's target space is
    noise-free by construction); only its rotation/translation enter.
    """
    if source.dimension != target.dimension:
        raise ValueError(
            f"dimension mismatch: source d={source.dimension}, "
            f"target d={target.dimension}"
        )
    rotation_adaptor = target.rotation @ source.rotation.T
    translation_adaptor = target.translation - rotation_adaptor @ source.translation
    return SpaceAdaptor(
        rotation_adaptor=rotation_adaptor,
        translation_adaptor=translation_adaptor,
    )


def complementary_noise(
    source: GeometricPerturbation,
    target: GeometricPerturbation,
    noise: np.ndarray,
) -> np.ndarray:
    """``Delta_it = R_t R_i^{-1} Delta_i`` — the noise the target space inherits.

    Provided for analysis/tests: verifies that adapting a noisy table equals
    perturbing the original with the target and adding this matrix.
    """
    noise = np.asarray(noise, dtype=float)
    if noise.shape[0] != source.dimension:
        raise ValueError("noise matrix does not match the data dimension")
    return (target.rotation @ source.rotation.T) @ noise
