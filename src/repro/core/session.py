"""High-level façade: run one complete SAP collaboration end to end.

:func:`run_sap_session` wires the whole stack together — normalization,
partitioning, the simulated network, the three protocol roles, mining, and
the risk accounting — and returns a :class:`SAPSessionResult` with
everything the paper's figures need:

* perturbed-pipeline accuracy vs. the unperturbed baseline on the *same*
  train/test rows (Figures 5/6 deviations);
* the ``(forwarder, source)`` pairs of the run (identifiability audits);
* optional per-party privacy/risk profiles (satisfaction, eq. (1)/(2)).

Since the serving redesign, :func:`run_sap_session` is a thin wrapper: it
lifts its arguments into a :class:`repro.serve.SessionSpec` and executes
it through :func:`repro.serve.execute_spec`, the same path a
:class:`repro.serve.MiningService` drives many concurrent sessions
through.  The protocol internals live in :func:`_execute_sap_session`,
which optionally fans its shard work out to an externally owned (shared)
worker backend.  Results are bit-identical either way.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

import numpy as np

from ..datasets.partition import PartitionScheme, partition
from ..datasets.schema import Dataset
from ..mining.metrics import accuracy_deviation, accuracy_score
from ..parties.config import SAPConfig, make_classifier
from ..parties.coordinator import Coordinator
from ..parties.miner import MinerResult, ServiceProvider
from ..parties.provider import DataProvider
from ..sharding.backends import ShardBackend, ShardFutures
from ..sharding.engine import ShardPool
from ..sharding.plan import ShardPlan
from ..sharding.worker import party_risk_task
from ..simnet.channel import Network
from .normalization import MinMaxNormalizer
from .risk import PartyRiskProfile

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (attacks -> core)
    from ..attacks.resilience import AttackSuite

__all__ = ["SAPSessionResult", "run_sap_session", "stratified_test_mask"]


@dataclass
class SAPSessionResult:
    """Everything measured in one protocol run."""

    config: SAPConfig
    scheme: PartitionScheme
    accuracy_perturbed: float
    accuracy_standard: float
    miner_result: MinerResult
    forwarder_source_pairs: List[Tuple[str, str]]
    messages_sent: int
    bytes_sent: int
    virtual_duration: float
    risk_profiles: List[PartyRiskProfile] = field(default_factory=list)
    network: Optional[Network] = None

    @property
    def deviation(self) -> float:
        """Accuracy deviation in percentage points (Figures 5/6)."""
        return accuracy_deviation(self.accuracy_perturbed, self.accuracy_standard)

    def summary(self) -> str:
        """Multi-line run report."""
        lines = [
            f"scheme            : {self.scheme.value}",
            f"providers (k)     : {self.config.k}",
            f"classifier        : {self.config.classifier.name}",
            f"standard accuracy : {self.accuracy_standard:.4f}",
            f"SAP accuracy      : {self.accuracy_perturbed:.4f}",
            f"deviation         : {self.deviation:+.2f} points",
            f"messages / bytes  : {self.messages_sent} / {self.bytes_sent}",
            f"virtual duration  : {self.virtual_duration * 1000:.1f} ms",
        ]
        for profile in self.risk_profiles:
            lines.append(profile.summary())
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly view of the run (``repro session --json``)."""
        return {
            "kind": "batch",
            "scheme": self.scheme.value,
            "k": self.config.k,
            "classifier": self.config.classifier.name,
            "noise_sigma": self.config.noise_sigma,
            "seed": self.config.seed,
            "accuracy_perturbed": self.accuracy_perturbed,
            "accuracy_standard": self.accuracy_standard,
            "deviation": self.deviation,
            "messages_sent": self.messages_sent,
            "bytes_sent": self.bytes_sent,
            "virtual_duration": self.virtual_duration,
            "forwarder_source_pairs": [list(p) for p in self.forwarder_source_pairs],
            "risk_profiles": [
                {
                    "party": p.party,
                    "rho_local": p.rho_local,
                    "rho_global": p.rho_global,
                    "b": p.b,
                    "satisfaction": p.satisfaction,
                    "breach_risk": p.breach_risk,
                    "overall_risk": p.overall_risk,
                }
                for p in self.risk_profiles
            ],
        }


def stratified_test_mask(
    y: np.ndarray, test_fraction: float, rng: np.random.Generator
) -> np.ndarray:
    """Boolean holdout mask keeping every class on both sides when possible."""
    y = np.asarray(y)
    mask = np.zeros(len(y), dtype=bool)
    for label in np.unique(y):
        members = np.flatnonzero(y == label)
        members = members[rng.permutation(len(members))]
        n_test = int(round(len(members) * test_fraction))
        if len(members) >= 2:
            n_test = min(max(n_test, 1), len(members) - 1)
        else:
            n_test = 0
        mask[members[:n_test]] = True
    return mask


def run_sap_session(
    dataset: Dataset,
    config: SAPConfig,
    scheme: PartitionScheme | str = PartitionScheme.UNIFORM,
    compute_privacy: bool = False,
    privacy_suite: Optional["AttackSuite"] = None,
    keep_network: bool = False,
) -> SAPSessionResult:
    """Run the full protocol on one dataset and measure the outcome.

    A thin wrapper over the serving layer: the arguments are lifted into a
    :class:`repro.serve.SessionSpec` (under the seed-preserving
    ``"default"`` tenant) and executed inline — bit-identical to the
    pre-serving API for any fixed seed.

    Parameters
    ----------
    dataset:
        The pooled table (synthetic UCI stand-in).  It is min-max
        normalized here — modelling the providers' agreed common domain
        bounds — then partitioned into ``config.k`` local tables.
    config:
        Protocol knobs (k, noise, classifier, seeds).
    scheme:
        ``uniform`` or ``class`` partition distribution.
    compute_privacy:
        When true, also evaluate per-party privacy guarantees and risk
        profiles (slower: runs the attack suite and a small optimizer per
        party to estimate the bound ``b``).
    privacy_suite:
        Attack suite for the privacy evaluation; defaults to the fast
        suite.
    keep_network:
        Attach the network (with its observation ledger) to the result for
        information-flow inspection.
    """
    # Imported here: repro.serve sits above this module in the layering.
    from ..serve.engine import execute_spec
    from ..serve.spec import SessionSpec

    spec = SessionSpec.from_batch(
        dataset, config, scheme=scheme, compute_privacy=compute_privacy
    )
    return execute_spec(
        spec, dataset=dataset, privacy_suite=privacy_suite, keep_network=keep_network
    )


def _execute_sap_session(
    dataset: Dataset,
    config: SAPConfig,
    scheme: PartitionScheme | str = PartitionScheme.UNIFORM,
    compute_privacy: bool = False,
    privacy_suite: Optional["AttackSuite"] = None,
    keep_network: bool = False,
    backend: Optional[ShardBackend] = None,
) -> SAPSessionResult:
    """The batch protocol internals (see :func:`run_sap_session`).

    ``backend`` optionally points the privacy-profiling fan-out at an
    externally owned worker pool (the serving engine's shared one) instead
    of building a fresh pool from ``config.shard_backend``; the choice
    cannot affect results.
    """
    scheme = PartitionScheme(scheme) if isinstance(scheme, str) else scheme
    master = np.random.default_rng(config.seed)

    # Common normalization: the providers' agreed domain bounds.
    normalizer = MinMaxNormalizer().fit(dataset.X)
    normalized = Dataset(
        name=dataset.name,
        X=normalizer.transform(dataset.X),
        y=dataset.y,
        feature_names=dataset.feature_names,
    )

    parts = partition(
        normalized, config.k, scheme, rng=np.random.default_rng(master.integers(2**32))
    )
    local_datasets = [
        normalized.subset(part, name=f"{dataset.name}/party{i}")
        for i, part in enumerate(parts)
    ]
    split_rng = np.random.default_rng(master.integers(2**32))
    test_masks = [
        stratified_test_mask(local.y, config.test_fraction, split_rng)
        for local in local_datasets
    ]

    # --- build the distributed system -------------------------------------
    network = Network(seed=int(master.integers(2**32)))
    providers: List[DataProvider] = []
    for index in range(config.k - 1):
        providers.append(
            DataProvider(
                name=config.provider_name(index),
                network=network,
                dataset=local_datasets[index],
                test_mask=test_masks[index],
                config=config,
                seed=int(master.integers(2**32)),
            )
        )
    coordinator = Coordinator(
        name=config.provider_name(config.k - 1),
        network=network,
        dataset=local_datasets[config.k - 1],
        test_mask=test_masks[config.k - 1],
        config=config,
        seed=int(master.integers(2**32)),
    )
    providers.append(coordinator)
    miner = ServiceProvider(
        name=config.miner_name,
        network=network,
        config=config,
        seed=int(master.integers(2**32)),
    )

    network.simulator.schedule(0.0, coordinator.start)
    network.run()

    if miner.result is None:
        raise RuntimeError("the protocol run did not complete")

    # --- optional privacy/risk profiles: dispatch early --------------------
    # The per-party attack-suite work is independent of the baseline fit
    # below, so it is submitted (not mapped) here and gathered after the
    # classifier exchange — the fan-out overlaps the blocking fit.  Seeds
    # are still drawn from ``master`` in provider order, so results are
    # bit-identical to the former blocking ``map``.
    profile_pool: Optional[ShardPool] = None
    profile_futures = None
    if compute_privacy:
        # ``privacy_suite=None`` is resolved to the fast suite inside the
        # shard workers, so the default never crosses a pickle boundary.
        profile_pool, profile_futures = _dispatch_privacy_profiles(
            providers, coordinator, config, privacy_suite, master, backend
        )

    try:
        # --- unperturbed baseline on the identical rows --------------------
        X_blocks = [local.X for local in local_datasets]
        y_blocks = [local.y for local in local_datasets]
        mask_blocks = list(test_masks)
        X_all = np.vstack(X_blocks)
        y_all = np.concatenate(y_blocks)
        mask_all = np.concatenate(mask_blocks)
        baseline_model = make_classifier(config.classifier)
        baseline_model.fit(X_all[~mask_all], y_all[~mask_all])
        accuracy_standard = accuracy_score(
            y_all[mask_all], baseline_model.predict(X_all[mask_all])
        )

        # --- identifiability bookkeeping -----------------------------------
        assert coordinator.plan is not None
        pairs: List[Tuple[str, str]] = []
        for source in range(config.k):
            forwarder = coordinator.plan.receiver_of_source(source)
            pairs.append(
                (config.provider_name(forwarder), config.provider_name(source))
            )

        # --- gather the overlapped privacy/risk profiles -------------------
        profiles: List[PartyRiskProfile] = []
        if profile_futures is not None:
            profiles = profile_futures.gather()
    finally:
        if profile_pool is not None:
            profile_pool.close()

    return SAPSessionResult(
        config=config,
        scheme=scheme,
        accuracy_perturbed=miner.result.accuracy,
        accuracy_standard=accuracy_standard,
        miner_result=miner.result,
        forwarder_source_pairs=pairs,
        messages_sent=network.messages_sent,
        bytes_sent=network.bytes_sent,
        virtual_duration=network.simulator.now,
        risk_profiles=profiles,
        network=network if keep_network else None,
    )


def _dispatch_privacy_profiles(
    providers: List[DataProvider],
    coordinator: Coordinator,
    config: SAPConfig,
    suite: Optional["AttackSuite"],
    master: np.random.Generator,
    backend: Optional[ShardBackend] = None,
) -> Tuple[ShardPool, "ShardFutures"]:
    """Fan the per-party risk estimation out without waiting for it.

    The per-party work — two attack-suite guarantees and a small optimizer
    run each — is independent across providers, so it is *submitted* to a
    :class:`~repro.sharding.engine.ShardPool` (``config.shards`` workers on
    ``config.shard_backend``) and runs while the caller fits the
    unperturbed baseline classifier.  Returns ``(pool, futures)``; the
    caller gathers the futures (ordered, one profile per provider) and
    closes the pool.  Seeds are pre-drawn from ``master`` in provider
    order and results are merged in the same order, so every backend —
    and the overlap itself — returns exactly the serial profiles.
    ``suite=None`` lets each worker build the default fast suite locally
    (nothing to pickle); a custom suite is shipped to the workers and must
    be picklable when the process backend is selected.
    """
    assert coordinator.target is not None
    tasks = []
    for provider in providers:
        tasks.append(
            {
                "party": provider.name,
                "X_cols": provider.dataset.columns(),
                "perturbation": provider.perturbation,
                # The miner holds the provider's table in the target space
                # with the inherited noise, so the effective global
                # perturbation is the target's rotation/translation at the
                # provider's noise level (applied in the worker).
                "target": coordinator.target,
                "noise_sigma": config.noise_sigma,
                "k": config.k,
                "optimizer_rounds": config.optimizer_rounds,
                "optimizer_local_steps": config.optimizer_local_steps,
                "rho_local_seed": int(master.integers(2**32)),
                "rho_global_seed": int(master.integers(2**32)),
                "optimizer_seed": int(master.integers(2**32)),
                "suite": suite,
            }
        )
    pool = ShardPool(
        ShardPlan(config.shards, n_parties=config.k),
        config.shard_backend if backend is None else backend,
    )
    try:
        futures = pool.submit_map(party_risk_task, tasks)
    except BaseException:
        pool.close()
        raise
    return pool, futures
