"""Geometric data perturbation ``G(X) = R X + Psi + Delta``.

This is the paper's Section 2 object.  ``X`` is the normalized dataset in
the paper's column orientation (``d x N``: columns are records), ``R`` a
``d x d`` random orthogonal matrix, ``Psi = t * 1'`` a rank-one random
translation with ``t ~ U[-1, 1]^d``, and ``Delta`` an i.i.d. noise matrix
"used to perturb distances".

Design notes
------------
* The rotation and translation are *parameters* (stored on the object); the
  noise matrix is drawn per application from a caller-supplied generator,
  because each transmitted table carries its own noise realization while
  the *level* (``noise_sigma``) is the protocol-wide "common noise
  component" the paper prescribes.
* :meth:`GeometricPerturbation.invert` exists for attack analysis and for
  proving adaptor identities; it recovers ``X + R^{-1} Delta`` — the noise
  is irrecoverable by design.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from .rotation import assert_rotation_shapes, haar_orthogonal, random_translation

__all__ = ["GeometricPerturbation", "sample_perturbation", "perturb_rows"]


@dataclass(frozen=True)
class GeometricPerturbation:
    """Parameters of one geometric perturbation ``G : (R, t, sigma)``.

    Attributes
    ----------
    rotation:
        Orthogonal ``d x d`` matrix ``R``.
    translation:
        Vector ``t`` of length ``d``; the paper's ``Psi`` is ``t * 1'``.
    noise_sigma:
        Standard deviation of the i.i.d. Gaussian noise ``Delta``.  ``0``
        gives a pure rotation + translation (the *target* perturbation in
        SAP "has no noise component").
    """

    rotation: np.ndarray
    translation: np.ndarray
    noise_sigma: float = 0.0

    def __post_init__(self) -> None:
        rotation = np.asarray(self.rotation, dtype=float)
        translation = np.asarray(self.translation, dtype=float)
        object.__setattr__(self, "rotation", rotation)
        object.__setattr__(self, "translation", translation)
        d = translation.shape[0]
        if translation.ndim != 1:
            raise ValueError("translation must be a vector")
        assert_rotation_shapes(rotation, d)
        if self.noise_sigma < 0:
            raise ValueError("noise_sigma must be >= 0")

    # ------------------------------------------------------------------
    # shape helpers
    # ------------------------------------------------------------------
    @property
    def dimension(self) -> int:
        """Number of data dimensions ``d``."""
        return self.translation.shape[0]

    def _check_columns(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=float)
        if X.ndim != 2 or X.shape[0] != self.dimension:
            raise ValueError(
                f"expected column-oriented data with {self.dimension} rows, "
                f"got shape {X.shape}"
            )
        return X

    # ------------------------------------------------------------------
    # forward / inverse maps (column orientation, d x N)
    # ------------------------------------------------------------------
    def apply(
        self,
        X: np.ndarray,
        rng: Optional[np.random.Generator] = None,
        return_noise: bool = False,
    ) -> np.ndarray | Tuple[np.ndarray, np.ndarray]:
        """Perturb ``X`` (``d x N``): ``R X + t 1' + Delta``.

        ``rng`` is required when ``noise_sigma > 0``; pass
        ``return_noise=True`` to also receive the drawn ``Delta`` (used by
        tests and by the complementary-noise analysis).
        """
        X = self._check_columns(X)
        rotated = self.rotation @ X + self.translation[:, None]
        if self.noise_sigma == 0.0:
            noise = np.zeros_like(rotated)
        else:
            if rng is None:
                raise ValueError("an rng is required when noise_sigma > 0")
            noise = rng.normal(scale=self.noise_sigma, size=rotated.shape)
        perturbed = rotated + noise
        if return_noise:
            return perturbed, noise
        return perturbed

    def transform_clean(self, X: np.ndarray) -> np.ndarray:
        """Rotation + translation only (what the *target* space applies)."""
        X = self._check_columns(X)
        return self.rotation @ X + self.translation[:, None]

    def invert(self, Y: np.ndarray) -> np.ndarray:
        """Recover ``R^{-1}(Y - t 1')`` = ``X + R^{-1} Delta``."""
        Y = self._check_columns(Y)
        return self.rotation.T @ (Y - self.translation[:, None])

    # ------------------------------------------------------------------
    # conveniences
    # ------------------------------------------------------------------
    def without_noise(self) -> "GeometricPerturbation":
        """The same rotation/translation with ``noise_sigma = 0``."""
        return GeometricPerturbation(
            rotation=self.rotation, translation=self.translation, noise_sigma=0.0
        )

    def with_rotation(self, rotation: np.ndarray) -> "GeometricPerturbation":
        """Copy with a different rotation (used by the optimizer's moves)."""
        return GeometricPerturbation(
            rotation=rotation,
            translation=self.translation,
            noise_sigma=self.noise_sigma,
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GeometricPerturbation):
            return NotImplemented
        return (
            np.array_equal(self.rotation, other.rotation)
            and np.array_equal(self.translation, other.translation)
            and self.noise_sigma == other.noise_sigma
        )


def sample_perturbation(
    d: int, rng: np.random.Generator, noise_sigma: float = 0.0
) -> GeometricPerturbation:
    """Draw a fresh random perturbation: Haar rotation, ``U[-1,1]`` translation."""
    return GeometricPerturbation(
        rotation=haar_orthogonal(d, rng),
        translation=random_translation(d, rng),
        noise_sigma=noise_sigma,
    )


def perturb_rows(
    perturbation: GeometricPerturbation,
    X_rows: np.ndarray,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Row-major convenience: perturb an ``(n, d)`` matrix, return ``(n, d)``."""
    X_rows = np.asarray(X_rows, dtype=float)
    if X_rows.ndim != 2:
        raise ValueError("X_rows must be 2-D")
    return np.asarray(perturbation.apply(X_rows.T, rng=rng)).T
