"""Random orthogonal (rotation) matrices and local moves over them.

The rotation component ``R`` of a geometric perturbation is a ``d x d``
random orthogonal matrix.  :func:`haar_orthogonal` samples from the Haar
(uniform) measure on the orthogonal group via the QR decomposition of a
Gaussian matrix with the standard sign correction (Mezzadri 2007), so
no direction is privileged.

The perturbation optimizer explores the neighbourhood of a rotation with
two orthogonality-preserving local moves: swapping two rows (which re-maps
which perturbed dimension carries which mixture) and applying a random
Givens rotation on a pair of coordinates.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = [
    "haar_orthogonal",
    "is_orthogonal",
    "swap_rows",
    "givens_perturbation",
    "random_translation",
    "rotation_distance",
    "assert_rotation_shapes",
]


def haar_orthogonal(d: int, rng: np.random.Generator) -> np.ndarray:
    """Sample a ``d x d`` orthogonal matrix from the Haar measure."""
    if d < 1:
        raise ValueError("dimension must be >= 1")
    gaussian = rng.normal(size=(d, d))
    q, r = np.linalg.qr(gaussian)
    # Sign correction: make the distribution exactly Haar rather than
    # biased by LAPACK's deterministic sign choices.
    signs = np.sign(np.diag(r))
    signs[signs == 0] = 1.0
    return q * signs


def is_orthogonal(R: np.ndarray, atol: float = 1e-8) -> bool:
    """Check ``R' R = I`` within tolerance."""
    R = np.asarray(R, dtype=float)
    if R.ndim != 2 or R.shape[0] != R.shape[1]:
        return False
    identity = np.eye(R.shape[0])
    return bool(np.allclose(R.T @ R, identity, atol=atol))


def swap_rows(R: np.ndarray, i: int, j: int) -> np.ndarray:
    """Return a copy of ``R`` with rows ``i`` and ``j`` exchanged.

    Row permutations of an orthogonal matrix are orthogonal; in perturbation
    terms the move re-assigns which output dimension receives which mixed
    component, which changes per-column privacy without touching distances.
    """
    d = R.shape[0]
    if not (0 <= i < d and 0 <= j < d):
        raise IndexError("row indices out of range")
    out = R.copy()
    out[[i, j]] = out[[j, i]]
    return out


def givens_perturbation(
    R: np.ndarray, rng: np.random.Generator, max_angle: float = np.pi / 4
) -> np.ndarray:
    """Left-multiply ``R`` by a random Givens rotation.

    Picks a random coordinate pair and angle in ``[-max_angle, max_angle]``;
    the result stays orthogonal and is a "small" move when the angle is
    small, giving the optimizer a continuous neighbourhood to climb in.
    """
    d = R.shape[0]
    if d < 2:
        return R.copy()
    i, j = rng.choice(d, size=2, replace=False)
    theta = rng.uniform(-max_angle, max_angle)
    c, s = np.cos(theta), np.sin(theta)
    out = R.copy()
    row_i, row_j = out[i].copy(), out[j].copy()
    out[i] = c * row_i - s * row_j
    out[j] = s * row_i + c * row_j
    return out


def random_translation(d: int, rng: np.random.Generator) -> np.ndarray:
    """The paper's translation vector: ``t[j] ~ U[-1, 1]`` per dimension."""
    if d < 1:
        raise ValueError("dimension must be >= 1")
    return rng.uniform(-1.0, 1.0, size=d)


def rotation_distance(R1: np.ndarray, R2: np.ndarray) -> float:
    """Frobenius distance between two rotations (used in tests/diagnostics)."""
    return float(np.linalg.norm(np.asarray(R1) - np.asarray(R2)))


def assert_rotation_shapes(R: np.ndarray, d: int) -> None:
    """Raise ``ValueError`` unless ``R`` is a ``d x d`` orthogonal matrix."""
    R = np.asarray(R)
    if R.shape != (d, d):
        raise ValueError(f"rotation must be {d}x{d}, got {R.shape}")
    if not is_orthogonal(R):
        raise ValueError("matrix is not orthogonal within tolerance")
