"""Multi-column privacy metrics.

The companion papers define privacy through the attacker's *reconstruction
error*: if the best attack recovers an estimate ``X_hat`` of the normalized
original ``X``, the privacy of column ``j`` is the standard deviation of
the estimation error on that column, normalized by the column's own spread
so that columns on different scales are comparable.  The paper's headline
quantity is the **minimum privacy guarantee** — the *worst* column's
privacy, because an adversary only needs one column to leak:

    rho = min_j  std(X_j - X_hat_j) / std(X_j)

A perturbation's guarantee is then the minimum over an attack suite
(:mod:`repro.attacks.resilience`): the strongest attack defines the
guarantee.  This module holds the attack-independent metric plumbing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

__all__ = [
    "column_privacy",
    "minimum_privacy_guarantee",
    "average_privacy_guarantee",
    "PrivacyReport",
    "naive_baseline_privacy",
    "combine_column_privacy",
]

_EPS = 1e-12


def column_privacy(X: np.ndarray, X_hat: np.ndarray) -> np.ndarray:
    """Per-column privacy: normalized std of the reconstruction error.

    Parameters
    ----------
    X / X_hat:
        Original and reconstructed data in the paper's ``d x N`` column
        orientation.  ``X`` must be the *normalized* table — the metric's
        comparability across columns depends on it.

    Returns
    -------
    numpy.ndarray
        Length-``d`` vector; entry ``j`` is
        ``std(X[j] - X_hat[j]) / std(X[j])``.  A constant column (zero
        spread) falls back to the raw error std so that leaking a constant
        still counts as zero privacy only when reconstructed exactly.
    """
    X = np.asarray(X, dtype=float)
    X_hat = np.asarray(X_hat, dtype=float)
    if X.shape != X_hat.shape:
        raise ValueError(f"shape mismatch: {X.shape} vs {X_hat.shape}")
    if X.ndim != 2:
        raise ValueError("expected 2-D column-oriented matrices")
    error_std = np.std(X - X_hat, axis=1)
    column_std = np.std(X, axis=1)
    scale = np.where(column_std > _EPS, column_std, 1.0)
    return error_std / scale


def minimum_privacy_guarantee(X: np.ndarray, X_hat: np.ndarray) -> float:
    """The paper's multi-column guarantee: the worst column's privacy."""
    return float(column_privacy(X, X_hat).min())


def average_privacy_guarantee(
    X: np.ndarray,
    X_hat: np.ndarray,
    weights: Optional[np.ndarray] = None,
) -> float:
    """The companion papers' second multi-column aggregate: the (optionally
    weighted) *average* column privacy.

    The announcement standardizes on the minimum guarantee ("by default we
    use the Minimum Privacy Guarantee"), but the ICDM'05/SDM'07 metrics
    section also tracks the average, and optimization trade-offs between
    the two are part of the design space this library exposes.

    Parameters
    ----------
    weights:
        Optional per-column importance weights (e.g. giving sensitive
        columns more say); normalized internally.
    """
    per_column = column_privacy(X, X_hat)
    if weights is None:
        return float(per_column.mean())
    weights = np.asarray(weights, dtype=float)
    if weights.shape != per_column.shape:
        raise ValueError(
            f"weights shape {weights.shape} does not match {per_column.shape}"
        )
    if weights.min() < 0 or weights.sum() <= 0:
        raise ValueError("weights must be non-negative and not all zero")
    return float(np.sum(per_column * weights) / weights.sum())


def naive_baseline_privacy(X: np.ndarray, rng: Optional[np.random.Generator] = None) -> float:
    """Privacy against an attacker with *no* access to the perturbed data.

    Such an attacker can still guess every value at the column mean; the
    resulting guarantee (exactly 1.0 under this metric) is the natural
    ceiling any perturbation can approach but not exceed against
    informed attacks.  Exposed for documentation/tests of the metric's
    calibration.
    """
    X = np.asarray(X, dtype=float)
    guess = np.repeat(X.mean(axis=1, keepdims=True), X.shape[1], axis=1)
    return minimum_privacy_guarantee(X, guess)


@dataclass
class PrivacyReport:
    """Privacy evaluation of one perturbation against a suite of attacks.

    Attributes
    ----------
    per_attack:
        Attack name -> minimum privacy guarantee under that attack.
    per_column_worst:
        Length-``d`` vector of per-column privacy under each column's own
        worst attack (diagnostic; the scalar guarantee is its min).
    """

    per_attack: Dict[str, float]
    per_column_worst: np.ndarray

    @property
    def guarantee(self) -> float:
        """The effective minimum privacy guarantee (worst attack, worst column)."""
        if not self.per_attack:
            raise ValueError("report contains no attacks")
        return min(self.per_attack.values())

    @property
    def strongest_attack(self) -> str:
        """Name of the attack achieving the lowest guarantee."""
        return min(self.per_attack, key=self.per_attack.get)

    def summary(self) -> str:
        """One line per attack, worst first (for reports and the CLI)."""
        ordered = sorted(self.per_attack.items(), key=lambda kv: kv[1])
        lines = [f"{name:<16} rho = {value:.4f}" for name, value in ordered]
        lines.append(f"{'guarantee':<16} rho = {self.guarantee:.4f}")
        return "\n".join(lines)


def combine_column_privacy(columns: Sequence[np.ndarray]) -> np.ndarray:
    """Element-wise minimum across per-attack column-privacy vectors."""
    stacked = np.vstack(list(columns))
    return stacked.min(axis=0)
