"""Pure protocol logic for the Space Adaptation Protocol.

This module contains the *decisions* of SAP — the random exchange plan and
its bookkeeping — with no transport attached, so the logic can be tested
exhaustively and reused both by the in-process session driver and by the
message-passing roles in :mod:`repro.parties`.

The exchange plan (Section 3)
-----------------------------
With providers ``DP_0 .. DP_{k-1}`` (0-based here; the paper's coordinator
``DP_k`` is index ``k-1``):

1. the coordinator draws a uniform permutation ``tau`` of ``0..k-1``;
   receiver ``i`` is assigned the dataset of source ``tau(i)``;
2. the coordinator must not receive data (it later holds the adaptor
   sequence, which together with a dataset would let it undo a
   perturbation), so its slot ``tau(k-1)`` is redirected to a uniformly
   random receiver ``j != k-1``;
3. every provider forwards what it received to the miner, each forwarded
   table labelled with an opaque random tag so the miner can pair it with
   the right (anonymously routed) space adaptor.

The resulting attribution probability at the miner is ``1/(k-1)``
(:func:`repro.core.risk.source_identifiability`); tests verify this
empirically via :func:`repro.simnet.adversary.empirical_identifiability`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

__all__ = ["ExchangePlan", "draw_exchange_plan"]


@dataclass(frozen=True)
class ExchangePlan:
    """One realization of SAP's random-exchange routing.

    Attributes
    ----------
    k:
        Number of data providers (including the coordinator).
    coordinator:
        Index of the coordinating provider (always ``k-1`` in this
        reproduction, mirroring the paper's "without loss of generality,
        DP_k").
    tau:
        The permutation: ``tau[i]`` is the source whose dataset receiver
        ``i`` is assigned.  Entry ``tau[coordinator]`` exists but is
        *redirected* (the coordinator receives nothing).
    redirect_receiver:
        The provider ``j != coordinator`` that additionally receives the
        dataset of source ``tau[coordinator]``.
    tags:
        Per-source opaque hex tags; a tag travels with the dataset and with
        its adaptor so the miner can join them without learning the source.
    """

    k: int
    coordinator: int
    tau: Tuple[int, ...]
    redirect_receiver: int
    tags: Tuple[str, ...]

    def __post_init__(self) -> None:
        if self.k < 2:
            raise ValueError("SAP requires at least 2 providers")
        if sorted(self.tau) != list(range(self.k)):
            raise ValueError("tau must be a permutation of 0..k-1")
        if self.coordinator != self.k - 1:
            raise ValueError("the coordinator is the last provider by convention")
        if not (0 <= self.redirect_receiver < self.k - 1):
            raise ValueError("the redirect receiver must be a non-coordinator")
        if len(self.tags) != self.k or len(set(self.tags)) != self.k:
            raise ValueError("need one distinct tag per source")

    # ------------------------------------------------------------------
    # routing queries
    # ------------------------------------------------------------------
    def receiver_of_source(self, source: int) -> int:
        """Which provider receives (and then forwards) ``source``'s dataset."""
        slot = self.tau.index(source)
        if slot == self.coordinator:
            return self.redirect_receiver
        return slot

    def sources_received_by(self, receiver: int) -> List[int]:
        """The sources whose datasets land at ``receiver`` (0, 1 or 2)."""
        if receiver == self.coordinator:
            return []
        sources = [self.tau[receiver]]
        if receiver == self.redirect_receiver:
            sources.append(self.tau[self.coordinator])
        return sources

    def forwarding_assignments(self) -> Dict[int, int]:
        """``source -> receiver`` for every provider's dataset."""
        return {source: self.receiver_of_source(source) for source in range(self.k)}

    def tag_of_source(self, source: int) -> str:
        """The opaque tag attached to ``source``'s dataset and adaptor."""
        return self.tags[source]

    def source_of_tag(self, tag: str) -> int:
        """Inverse tag lookup (coordinator-side only; the miner never calls
        this — it has no access to the plan)."""
        return self.tags.index(tag)

    def validate(self) -> None:
        """Re-check the structural invariants (used by property tests)."""
        delivered = sorted(
            source
            for receiver in range(self.k)
            for source in self.sources_received_by(receiver)
        )
        if delivered != list(range(self.k)):
            raise ValueError("every dataset must be delivered exactly once")
        if self.sources_received_by(self.coordinator):
            raise ValueError("the coordinator must not receive any dataset")


def draw_exchange_plan(k: int, rng: np.random.Generator) -> ExchangePlan:
    """Sample the paper's randomized exchange plan for ``k`` providers."""
    if k < 2:
        raise ValueError("SAP requires at least 2 providers")
    coordinator = k - 1
    tau = tuple(int(x) for x in rng.permutation(k))
    if k == 2:
        redirect_receiver = 0
    else:
        redirect_receiver = int(rng.integers(k - 1))
    tags = tuple(rng.bytes(12).hex() for _ in range(k))
    plan = ExchangePlan(
        k=k,
        coordinator=coordinator,
        tau=tau,
        redirect_receiver=redirect_receiver,
        tags=tags,
    )
    plan.validate()
    return plan
