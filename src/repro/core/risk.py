"""The paper's risk model: identifiability, satisfaction, breach risk.

Implements every quantity Section 2-3 defines:

* ``pi_i`` — **source identifiability**, the probability the adversary
  attributes a received table to provider ``DP_i``.  SAP's random exchange
  reduces it to ``1/(k-1)`` at the miner.
* ``O_i = rho_bar_i / b_i`` — **optimality rate**, how close the provider's
  average optimized guarantee sits to its empirical bound.
* ``s_i = rho^G_i / rho_i`` — **satisfaction level** of the unified
  perturbation relative to the locally optimal one.
* eq. (1): ``R^G_i = pi_i (1 - s_i rho_i / b_i)`` — risk of privacy breach
  under a unified perturbation with identifiability ``pi_i``.
* eq. (2): ``R^SAP_i = max{ (b_i - rho_i)/b_i,
  (b_i - s_i rho_i)/b_i * 1/(k-1) }`` — the overall SAP risk combining the
  provider-side view (a peer holds your locally-perturbed table and knows
  it is yours: identifiability 1, local guarantee ``rho_i``) and the
  miner-side view (identifiability ``1/(k-1)``, unified guarantee
  ``s_i rho_i``).

Figure 4's lower bound on the number of parties
------------------------------------------------
The two-page announcement states the relationship between ``k``, the
expected satisfaction ``s0`` and the optimality rate without deriving the
plotted bound.  We reconstruct it from eq. (1): a provider expecting
satisfaction ``s0`` tolerates a residual breach risk of at most
``1 - s0`` (perfect satisfaction tolerates none); approximating
``rho_i / b_i`` by the measurable optimality rate ``O`` and requiring the
miner-view risk to stay within tolerance,

    (1 - s0 * O) / (k - 1) <= 1 - s0
    =>  k >= 1 + (1 - s0 * O) / (1 - s0)

which reproduces the figure's qualitative content: the bound grows with
``s0``, diverges as ``s0 -> 1``, and at fixed ``s0`` datasets with lower
optimality rate need more parties.  The derivation choice is documented in
DESIGN.md (substitution table) and EXPERIMENTS.md.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

__all__ = [
    "source_identifiability",
    "optimality_rate",
    "satisfaction_level",
    "risk_of_breach",
    "sap_risk",
    "standalone_risk",
    "minimum_parties",
    "PartyRiskProfile",
    "mean_satisfaction",
]


def source_identifiability(k: int) -> float:
    """``pi_i = 1/(k-1)`` after SAP's random exchange among ``k`` providers."""
    if k < 2:
        raise ValueError("the protocol needs at least 2 data providers")
    return 1.0 / (k - 1)


def optimality_rate(rho_bar: float, b: float) -> float:
    """``O = rho_bar / b``; requires ``0 <= rho_bar <= b`` and ``b > 0``."""
    if b <= 0:
        raise ValueError("the privacy bound b must be positive")
    if rho_bar < 0 or rho_bar > b + 1e-12:
        raise ValueError(f"rho_bar={rho_bar} must lie in [0, b={b}]")
    return min(rho_bar / b, 1.0)


def satisfaction_level(rho_global: float, rho_local: float) -> float:
    """``s_i = rho^G_i / rho_i`` — how much of the local guarantee survives.

    Values above 1 are possible (the unified perturbation may, by luck,
    protect a provider better than its own optimum) and are preserved.
    """
    if rho_local <= 0:
        raise ValueError("the local privacy guarantee must be positive")
    if rho_global < 0:
        raise ValueError("the global privacy guarantee must be >= 0")
    return rho_global / rho_local


def risk_of_breach(pi: float, s: float, rho: float, b: float) -> float:
    """Equation (1): ``R^G_i = pi_i * (1 - s_i * rho_i / b_i)``.

    The result is clamped below at 0: an over-satisfied provider
    (``s * rho > b``) has no residual risk rather than a negative one.
    """
    if not 0.0 <= pi <= 1.0:
        raise ValueError("identifiability must be a probability")
    if b <= 0:
        raise ValueError("the privacy bound b must be positive")
    if s < 0 or rho < 0:
        raise ValueError("satisfaction and privacy guarantee must be >= 0")
    return pi * max(0.0, 1.0 - s * rho / b)


def standalone_risk(rho: float, b: float) -> float:
    """Risk when a provider submits directly (``pi = 1``, ``s = 1``)."""
    return risk_of_breach(1.0, 1.0, rho, b)


def sap_risk(b: float, rho: float, s: float, k: int) -> float:
    """Equation (2): the overall risk of privacy breach under SAP.

    ``max`` of the provider-side term (a peer holds your locally-perturbed
    table, knowing it is yours) and the miner-side term (anonymized to
    ``1/(k-1)`` but adapted to the unified perturbation with satisfaction
    ``s``).
    """
    provider_view = risk_of_breach(1.0, 1.0, rho, b)
    miner_view = risk_of_breach(source_identifiability(k), s, rho, b)
    return max(provider_view, miner_view)


def minimum_parties(s0: float, opt_rate: float, k_cap: int = 10_000) -> int:
    """Figure 4: the least ``k`` for which SAP meets satisfaction ``s0``.

    See the module docstring for the derivation:
    ``k >= 1 + (1 - s0 * O) / (1 - s0)``.

    Parameters
    ----------
    s0:
        Expected satisfaction level, in ``[0, 1)`` (the bound diverges at
        1; values >= 1 raise).
    opt_rate:
        The dataset's optimality rate ``O`` in ``(0, 1]``.
    k_cap:
        Safety ceiling; the returned k never exceeds it.

    Returns
    -------
    int
        The smallest admissible number of parties (at least 2 — the
        protocol is only defined for k >= 2).
    """
    if not 0.0 <= s0 < 1.0:
        raise ValueError("s0 must lie in [0, 1); the bound diverges at 1")
    if not 0.0 < opt_rate <= 1.0:
        raise ValueError("opt_rate must lie in (0, 1]")
    bound = 1.0 + (1.0 - s0 * opt_rate) / (1.0 - s0)
    k = max(2, int(math.ceil(bound - 1e-9)))
    return min(k, k_cap)


@dataclass(frozen=True)
class PartyRiskProfile:
    """All risk quantities for one provider in one SAP run.

    A convenience record produced by the session layer: collects the
    measured privacy values and evaluates both equations.
    """

    party: str
    rho_local: float
    rho_global: float
    b: float
    k: int

    @property
    def satisfaction(self) -> float:
        """``s_i`` for this run."""
        return satisfaction_level(self.rho_global, self.rho_local)

    @property
    def identifiability(self) -> float:
        """``pi_i = 1/(k-1)``."""
        return source_identifiability(self.k)

    @property
    def breach_risk(self) -> float:
        """Equation (1) evaluated at this party's values."""
        return risk_of_breach(
            self.identifiability, self.satisfaction, self.rho_local, self.b
        )

    @property
    def overall_risk(self) -> float:
        """Equation (2) evaluated at this party's values."""
        return sap_risk(self.b, self.rho_local, self.satisfaction, self.k)

    def summary(self) -> str:
        """One-line report row."""
        return (
            f"{self.party:<10} rho={self.rho_local:.3f} rho_G={self.rho_global:.3f} "
            f"s={self.satisfaction:.3f} pi={self.identifiability:.3f} "
            f"R_eq1={self.breach_risk:.3f} R_sap={self.overall_risk:.3f}"
        )


def mean_satisfaction(profiles: Sequence[PartyRiskProfile]) -> float:
    """Average satisfaction across a run's providers."""
    if not profiles:
        raise ValueError("no profiles")
    return sum(p.satisfaction for p in profiles) / len(profiles)
