"""Randomized perturbation optimization.

The companion paper [2] shows that drawing a random rotation and keeping it
is wasteful: privacy guarantees vary a lot across rotations (Figure 2 of
the announcement), so each provider should *search*.  The optimizer here
reproduces that algorithm family:

* every **round** starts from a fresh Haar-random rotation (a random
  restart);
* a round performs **local hill climbing** over orthogonality-preserving
  moves — row swaps (re-assigning which output dimension carries which
  mixture) and small random Givens rotations — accepting a move when the
  attack-suite privacy guarantee improves;
* the result of a round is an *optimized privacy guarantee* ``rho^(i)``;
  across ``n`` rounds the paper derives
  ``rho_bar = mean(rho^(i))`` and the empirical bound
  ``b_hat = max(rho^(i))``, whose ratio is the **optimality rate**
  ``O = rho_bar / b_hat`` used by Figures 3 and 4.

The evaluation suite is injectable: optimization loops default to the fast
attack suite, while reported numbers use the full suite (see
:mod:`repro.attacks.resilience`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional

import numpy as np

from .perturbation import GeometricPerturbation, sample_perturbation
from .rotation import givens_perturbation, swap_rows

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (attacks -> core)
    from ..attacks.resilience import AttackSuite

__all__ = ["OptimizationResult", "PerturbationOptimizer"]


@dataclass
class OptimizationResult:
    """Outcome of an n-round randomized optimization.

    Attributes
    ----------
    best:
        The perturbation achieving the highest guarantee across rounds.
    best_privacy:
        Its guarantee (this is the provider's local ``rho_i``).
    round_privacies:
        The per-round optimized guarantees ``rho^(1..n)``.
    random_privacies:
        Guarantees of the *unoptimized* random restarts (the "random
        perturbations" curve of Figure 2).
    """

    best: GeometricPerturbation
    best_privacy: float
    round_privacies: List[float] = field(default_factory=list)
    random_privacies: List[float] = field(default_factory=list)

    @property
    def rho_bar(self) -> float:
        """Mean optimized privacy guarantee across rounds."""
        return float(np.mean(self.round_privacies))

    @property
    def b_hat(self) -> float:
        """Empirical privacy bound ``max{rho^(i)}`` (the paper's b-hat)."""
        return float(np.max(self.round_privacies))

    @property
    def optimality_rate(self) -> float:
        """``O = rho_bar / b_hat`` — the efficiency of optimization."""
        b = self.b_hat
        return float(self.rho_bar / b) if b > 0 else 0.0

    def summary(self) -> str:
        """Short multi-line description (used by examples and the CLI)."""
        return (
            f"rounds          : {len(self.round_privacies)}\n"
            f"best privacy    : {self.best_privacy:.4f}\n"
            f"rho_bar (mean)  : {self.rho_bar:.4f}\n"
            f"b_hat (max)     : {self.b_hat:.4f}\n"
            f"optimality rate : {self.optimality_rate:.4f}"
        )


class PerturbationOptimizer:
    """Random-restart + local-search optimizer for geometric perturbations.

    Parameters
    ----------
    n_rounds:
        Number of random restarts (the paper's ``n``; it uses 100 for the
        optimality-rate estimates, which remains tractable with the fast
        suite).
    local_steps:
        Hill-climbing proposals per round; each is a row swap or a random
        Givens rotation, accepted only on improvement.
    noise_sigma:
        Noise level of every candidate perturbation (the protocol-wide
        common noise component).
    suite:
        Attack suite scoring candidates; defaults to the fast suite.
    seed:
        Seed for the optimizer's own generator (restarts, proposals, and
        the per-candidate noise/context draws).
    """

    def __init__(
        self,
        n_rounds: int = 20,
        local_steps: int = 10,
        noise_sigma: float = 0.05,
        suite: Optional["AttackSuite"] = None,
        seed: int = 0,
    ) -> None:
        if n_rounds < 1:
            raise ValueError("n_rounds must be >= 1")
        if local_steps < 0:
            raise ValueError("local_steps must be >= 0")
        self.n_rounds = n_rounds
        self.local_steps = local_steps
        self.noise_sigma = noise_sigma
        if suite is None:
            # Imported lazily: repro.attacks itself depends on repro.core.
            from ..attacks.resilience import fast_suite

            suite = fast_suite()
        self.suite = suite
        self.seed = seed

    # ------------------------------------------------------------------
    def _score(
        self,
        perturbation: GeometricPerturbation,
        X: np.ndarray,
        eval_seed: int,
    ) -> float:
        # A fixed per-call seed makes candidate comparisons within a round
        # use identical noise/known-sample draws — hill climbing on a
        # stochastic objective would otherwise chase noise.
        rng = np.random.default_rng(eval_seed)
        return self.suite.guarantee(perturbation, X, rng)

    def optimize(self, X: np.ndarray) -> OptimizationResult:
        """Run the full n-round optimization on table ``X`` (``d x N``)."""
        X = np.asarray(X, dtype=float)
        if X.ndim != 2:
            raise ValueError("X must be 2-D (d x N)")
        d = X.shape[0]
        rng = np.random.default_rng(self.seed)

        best_overall: Optional[GeometricPerturbation] = None
        best_overall_privacy = -np.inf
        round_privacies: List[float] = []
        random_privacies: List[float] = []

        for round_index in range(self.n_rounds):
            eval_seed = int(rng.integers(2**32))
            candidate = sample_perturbation(d, rng, noise_sigma=self.noise_sigma)
            current_privacy = self._score(candidate, X, eval_seed)
            random_privacies.append(current_privacy)

            for _ in range(self.local_steps):
                if d >= 2 and rng.random() < 0.5:
                    i, j = rng.choice(d, size=2, replace=False)
                    proposal_rotation = swap_rows(candidate.rotation, int(i), int(j))
                else:
                    proposal_rotation = givens_perturbation(candidate.rotation, rng)
                proposal = candidate.with_rotation(proposal_rotation)
                proposal_privacy = self._score(proposal, X, eval_seed)
                if proposal_privacy > current_privacy:
                    candidate = proposal
                    current_privacy = proposal_privacy

            round_privacies.append(current_privacy)
            if current_privacy > best_overall_privacy:
                best_overall = candidate
                best_overall_privacy = current_privacy

        assert best_overall is not None  # n_rounds >= 1
        return OptimizationResult(
            best=best_overall,
            best_privacy=float(best_overall_privacy),
            round_privacies=round_privacies,
            random_privacies=random_privacies,
        )

    def random_baseline(self, X: np.ndarray, n_samples: int) -> List[float]:
        """Guarantees of purely random perturbations (Figure 2 baseline)."""
        X = np.asarray(X, dtype=float)
        d = X.shape[0]
        rng = np.random.default_rng(self.seed + 1)
        values = []
        for _ in range(n_samples):
            eval_seed = int(rng.integers(2**32))
            candidate = sample_perturbation(d, rng, noise_sigma=self.noise_sigma)
            values.append(self._score(candidate, X, eval_seed))
        return values
