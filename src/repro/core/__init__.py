"""The paper's primary contribution: geometric perturbation + SAP."""

from .adaptation import SpaceAdaptor, complementary_noise, compute_adaptor
from .normalization import MinMaxNormalizer, ZScoreNormalizer
from .optimizer import OptimizationResult, PerturbationOptimizer
from .perturbation import GeometricPerturbation, perturb_rows, sample_perturbation
from .privacy import (
    PrivacyReport,
    average_privacy_guarantee,
    column_privacy,
    combine_column_privacy,
    minimum_privacy_guarantee,
    naive_baseline_privacy,
)
from .protocol import ExchangePlan, draw_exchange_plan
from .risk import (
    PartyRiskProfile,
    mean_satisfaction,
    minimum_parties,
    optimality_rate,
    risk_of_breach,
    sap_risk,
    satisfaction_level,
    source_identifiability,
    standalone_risk,
)
from .rotation import (
    givens_perturbation,
    haar_orthogonal,
    is_orthogonal,
    random_translation,
    rotation_distance,
    swap_rows,
)
from .session import SAPSessionResult, run_sap_session, stratified_test_mask

__all__ = [
    "GeometricPerturbation",
    "sample_perturbation",
    "perturb_rows",
    "MinMaxNormalizer",
    "ZScoreNormalizer",
    "haar_orthogonal",
    "is_orthogonal",
    "swap_rows",
    "givens_perturbation",
    "random_translation",
    "rotation_distance",
    "column_privacy",
    "minimum_privacy_guarantee",
    "average_privacy_guarantee",
    "naive_baseline_privacy",
    "combine_column_privacy",
    "PrivacyReport",
    "PerturbationOptimizer",
    "OptimizationResult",
    "SpaceAdaptor",
    "compute_adaptor",
    "complementary_noise",
    "ExchangePlan",
    "draw_exchange_plan",
    "source_identifiability",
    "optimality_rate",
    "satisfaction_level",
    "risk_of_breach",
    "standalone_risk",
    "sap_risk",
    "minimum_parties",
    "PartyRiskProfile",
    "mean_satisfaction",
    "SAPSessionResult",
    "run_sap_session",
    "stratified_test_mask",
]
