"""Descriptive statistics for datasets.

The attack-context model assumes the adversary knows the original columns'
marginal statistics; this module is the library's own view of the same
quantities, used by the CLI (``repro datasets --detail <name>``), by
examples, and by tests that calibrate synthetic tables against their UCI
originals' published characteristics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from .schema import Dataset

__all__ = ["ColumnStats", "column_statistics", "class_balance", "describe"]


@dataclass(frozen=True)
class ColumnStats:
    """Marginal summary of one feature column."""

    name: str
    minimum: float
    maximum: float
    mean: float
    std: float
    skewness: float
    n_distinct: int

    @property
    def looks_binary(self) -> bool:
        """True when the column takes at most two distinct values."""
        return self.n_distinct <= 2


def column_statistics(dataset: Dataset) -> Tuple[ColumnStats, ...]:
    """Per-column marginal statistics, in column order."""
    stats = []
    for j, name in enumerate(dataset.feature_names):
        column = dataset.X[:, j]
        std = float(column.std())
        if std > 1e-12:
            skewness = float(np.mean(((column - column.mean()) / std) ** 3))
        else:
            skewness = 0.0
        stats.append(
            ColumnStats(
                name=name,
                minimum=float(column.min()),
                maximum=float(column.max()),
                mean=float(column.mean()),
                std=std,
                skewness=skewness,
                n_distinct=int(len(np.unique(column))),
            )
        )
    return tuple(stats)


def class_balance(dataset: Dataset) -> Dict[int, float]:
    """Label -> fraction of rows, sorted by label."""
    balance = {}
    for label in dataset.classes:
        balance[int(label)] = float((dataset.y == label).mean())
    return balance


def describe(dataset: Dataset, max_columns: int = 40) -> str:
    """Multi-line ASCII description: shape, class balance, column table."""
    lines = [
        f"dataset  : {dataset.name}",
        f"shape    : {dataset.n_rows} rows x {dataset.n_features} columns",
    ]
    balance = class_balance(dataset)
    rendered = ", ".join(
        f"{label}: {fraction:.1%}" for label, fraction in balance.items()
    )
    lines.append(f"classes  : {rendered}")
    lines.append("")
    header = (
        f"{'column':<10}{'min':>9}{'max':>9}{'mean':>9}{'std':>9}"
        f"{'skew':>9}{'distinct':>10}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for stats in column_statistics(dataset)[:max_columns]:
        lines.append(
            f"{stats.name:<10}{stats.minimum:>9.3f}{stats.maximum:>9.3f}"
            f"{stats.mean:>9.3f}{stats.std:>9.3f}{stats.skewness:>9.3f}"
            f"{stats.n_distinct:>10}"
        )
    if dataset.n_features > max_columns:
        lines.append(f"... ({dataset.n_features - max_columns} more columns)")
    return "\n".join(lines)
