"""Dataset schema objects.

The paper evaluates on 12 UCI machine-learning datasets.  This environment
has no network access, so :mod:`repro.datasets` generates *synthetic
stand-ins* whose schema — row count, dimensionality, number of classes,
class priors, and feature kinds — matches the published characteristics of
each UCI dataset (see :mod:`repro.datasets.registry`).  The experiments in
the paper exercise rotation-invariance, multi-column privacy metrics, and
partition skew; all of these depend only on the schema-level shape captured
here, not on the particular UCI values.

:class:`DatasetSpec` describes a dataset to synthesize; :class:`Dataset` is
the realized table handed to the perturbation and mining code.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

import numpy as np

__all__ = ["FeatureKind", "DatasetSpec", "Dataset", "normalize_dataset"]


class FeatureKind(enum.Enum):
    """The value domain of one feature column."""

    CONTINUOUS = "continuous"
    INTEGER = "integer"
    BINARY = "binary"


@dataclass(frozen=True)
class DatasetSpec:
    """Recipe for one synthetic dataset.

    Attributes
    ----------
    name:
        Registry key (lowercase, e.g. ``"diabetes"``).
    n_rows / n_features / n_classes:
        Table shape, matching the UCI original.
    class_priors:
        Class proportions (sums to 1).  Heavily skewed for e.g. Shuttle.
    feature_kinds:
        Per-column domains; length ``n_features``.  Binary columns model
        datasets like Votes whose features are yes/no votes.
    class_separation:
        Distance between class mean vectors in units of the within-class
        standard deviation.  Calibrated per dataset so baseline classifier
        accuracy lands in a realistic band for the original data.
    noise_dims:
        Number of purely uninformative columns appended (no class signal),
        modelling the irrelevant attributes real tables carry.
    description:
        Human-readable provenance note (what the UCI original is).
    """

    name: str
    n_rows: int
    n_features: int
    n_classes: int
    class_priors: Tuple[float, ...]
    feature_kinds: Tuple[FeatureKind, ...]
    class_separation: float = 3.0
    noise_dims: int = 0
    description: str = ""

    def __post_init__(self) -> None:
        if self.n_rows <= 0 or self.n_features <= 0 or self.n_classes <= 1:
            raise ValueError(f"degenerate spec for {self.name!r}")
        if len(self.class_priors) != self.n_classes:
            raise ValueError(
                f"{self.name!r}: {len(self.class_priors)} priors for "
                f"{self.n_classes} classes"
            )
        if abs(sum(self.class_priors) - 1.0) > 1e-9:
            raise ValueError(f"{self.name!r}: class priors must sum to 1")
        if len(self.feature_kinds) != self.n_features:
            raise ValueError(
                f"{self.name!r}: {len(self.feature_kinds)} feature kinds for "
                f"{self.n_features} features"
            )
        if self.noise_dims < 0 or self.noise_dims >= self.n_features:
            raise ValueError(f"{self.name!r}: invalid noise_dims")


def _default_feature_names(n: int) -> Tuple[str, ...]:
    return tuple(f"f{i}" for i in range(n))


@dataclass
class Dataset:
    """A realized table: ``X`` is ``(n_rows, n_features)``, ``y`` is labels.

    Rows are records (the layout classifiers prefer); the paper's ``d x N``
    column orientation is available via :meth:`columns`.
    """

    name: str
    X: np.ndarray
    y: np.ndarray
    feature_names: Tuple[str, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        self.X = np.asarray(self.X, dtype=float)
        self.y = np.asarray(self.y)
        if self.X.ndim != 2:
            raise ValueError("X must be 2-D (rows are records)")
        if self.y.shape != (self.X.shape[0],):
            raise ValueError(
                f"y has shape {self.y.shape}, expected ({self.X.shape[0]},)"
            )
        if not self.feature_names:
            self.feature_names = _default_feature_names(self.X.shape[1])
        if len(self.feature_names) != self.X.shape[1]:
            raise ValueError("feature_names length must match X columns")

    # ------------------------------------------------------------------
    # shape helpers
    # ------------------------------------------------------------------
    @property
    def n_rows(self) -> int:
        """Number of records."""
        return self.X.shape[0]

    @property
    def n_features(self) -> int:
        """Number of columns."""
        return self.X.shape[1]

    @property
    def classes(self) -> np.ndarray:
        """Sorted unique labels."""
        return np.unique(self.y)

    def columns(self) -> np.ndarray:
        """The paper's ``d x N`` orientation (columns are records)."""
        return self.X.T.copy()

    # ------------------------------------------------------------------
    # manipulation
    # ------------------------------------------------------------------
    def subset(self, indices: Sequence[int] | np.ndarray, name: Optional[str] = None) -> "Dataset":
        """A new dataset holding the given rows (copied)."""
        idx = np.asarray(indices, dtype=int)
        return Dataset(
            name=name if name is not None else self.name,
            X=self.X[idx].copy(),
            y=self.y[idx].copy(),
            feature_names=self.feature_names,
        )

    def train_test_split(
        self, test_fraction: float, rng: np.random.Generator
    ) -> Tuple["Dataset", "Dataset"]:
        """Stratified split into train and test datasets.

        Stratification keeps every class represented on both sides whenever
        a class has at least two members, which matters for the skewed
        datasets (Shuttle, Ecoli).
        """
        if not 0.0 < test_fraction < 1.0:
            raise ValueError("test_fraction must be in (0, 1)")
        train_idx: list[int] = []
        test_idx: list[int] = []
        for label in self.classes:
            members = np.flatnonzero(self.y == label)
            members = members[rng.permutation(len(members))]
            n_test = int(round(len(members) * test_fraction))
            if len(members) >= 2:
                n_test = min(max(n_test, 1), len(members) - 1)
            else:
                n_test = 0
            test_idx.extend(members[:n_test].tolist())
            train_idx.extend(members[n_test:].tolist())
        train_order = np.array(sorted(train_idx), dtype=int)
        test_order = np.array(sorted(test_idx), dtype=int)
        return (
            self.subset(train_order, name=f"{self.name}[train]"),
            self.subset(test_order, name=f"{self.name}[test]"),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Dataset {self.name!r} n={self.n_rows} d={self.n_features} "
            f"classes={len(self.classes)}>"
        )


def normalize_dataset(dataset: Dataset) -> Dataset:
    """Min-max normalize a dataset's features into ``[0, 1]``.

    The paper's perturbation is defined over *normalized* data; in the
    multiparty setting the bounds model the providers' agreed common
    domain knowledge.  Returns a new :class:`Dataset`; labels and names
    are preserved.
    """
    from ..core.normalization import MinMaxNormalizer

    normalizer = MinMaxNormalizer().fit(dataset.X)
    return Dataset(
        name=dataset.name,
        X=normalizer.transform(dataset.X),
        y=dataset.y.copy(),
        feature_names=dataset.feature_names,
    )
