"""Synthesis of datasets from :class:`~repro.datasets.schema.DatasetSpec`.

Each class is a Gaussian blob: the class mean vectors are placed at
controlled pairwise separation (in within-class standard-deviation units)
and each class gets a random anisotropic covariance, so the resulting
classification problems are non-trivially shaped but solvable — mirroring
the accuracy bands the UCI originals produce.  Binary and integer feature
kinds are realized by quantizing the latent Gaussian columns, which keeps
cross-column correlation structure (a property the ICA attack in
:mod:`repro.attacks.ica` relies on).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .schema import Dataset, DatasetSpec, FeatureKind

__all__ = ["synthesize", "class_means", "sample_covariance_factor"]


def class_means(
    n_classes: int, n_features: int, separation: float, rng: np.random.Generator
) -> np.ndarray:
    """Mean vectors with controlled pairwise separation.

    Directions are drawn uniformly at random and re-scaled so that the
    *minimum* pairwise distance between class means is ``separation``.
    Returns an ``(n_classes, n_features)`` array.
    """
    directions = rng.normal(size=(n_classes, n_features))
    directions /= np.linalg.norm(directions, axis=1, keepdims=True)
    # Spread the raw means, then rescale to hit the minimum-distance target.
    means = directions * separation
    min_dist = np.inf
    for i in range(n_classes):
        for j in range(i + 1, n_classes):
            min_dist = min(min_dist, float(np.linalg.norm(means[i] - means[j])))
    if min_dist <= 1e-12:
        # Random directions collided (only possible for tiny d); fall back to
        # axis-aligned placement which always separates.
        means = np.zeros((n_classes, n_features))
        for i in range(n_classes):
            means[i, i % n_features] = separation * (1 + i // n_features)
        return means
    return means * (separation / min_dist)


def sample_covariance_factor(
    n_features: int, rng: np.random.Generator, condition: float = 3.0
) -> np.ndarray:
    """A factor ``L`` such that ``L L'`` is a random covariance.

    Built as ``Q diag(s) `` with ``Q`` a random rotation and singular values
    ``s`` log-spaced within ``[1/condition, 1]``, giving anisotropic but
    well-conditioned class clouds.
    """
    gaussian = rng.normal(size=(n_features, n_features))
    q, _ = np.linalg.qr(gaussian)
    scales = np.exp(
        rng.uniform(np.log(1.0 / condition), 0.0, size=n_features)
    )
    return q * scales


def _quantize_features(X: np.ndarray, spec: DatasetSpec) -> np.ndarray:
    """Apply per-column feature kinds to the latent continuous table."""
    out = X.copy()
    for j, kind in enumerate(spec.feature_kinds):
        column = out[:, j]
        if kind is FeatureKind.BINARY:
            out[:, j] = (column > np.median(column)).astype(float)
        elif kind is FeatureKind.INTEGER:
            # Map to a small integer scale (1..10), like survey/count columns.
            lo, hi = column.min(), column.max()
            span = hi - lo if hi > lo else 1.0
            out[:, j] = np.rint(1 + 9 * (column - lo) / span)
    return out


def synthesize(spec: DatasetSpec, seed: Optional[int] = None) -> Dataset:
    """Generate a dataset realizing ``spec``.

    Parameters
    ----------
    spec:
        The schema to realize.
    seed:
        Generator seed; the same ``(spec, seed)`` pair always yields the
        identical table.

    Notes
    -----
    The informative block of columns carries the class structure; the last
    ``spec.noise_dims`` columns are pure noise.  Class sizes follow
    ``spec.class_priors`` exactly (largest-remainder rounding) so skewed
    datasets like Shuttle reproduce their published imbalance.
    """
    rng = np.random.default_rng(seed)
    informative = spec.n_features - spec.noise_dims

    means = class_means(spec.n_classes, informative, spec.class_separation, rng)
    factors = [
        sample_covariance_factor(informative, rng) for _ in range(spec.n_classes)
    ]

    counts = _apportion(spec.n_rows, spec.class_priors)
    rows = []
    labels = []
    for label, (count, mean, factor) in enumerate(zip(counts, means, factors)):
        latent = rng.normal(size=(count, informative)) @ factor.T + mean
        if spec.noise_dims:
            noise = rng.normal(size=(count, spec.noise_dims))
            latent = np.hstack([latent, noise])
        rows.append(latent)
        labels.append(np.full(count, label, dtype=int))

    X = np.vstack(rows)
    y = np.concatenate(labels)
    order = rng.permutation(spec.n_rows)
    X, y = X[order], y[order]
    X = _quantize_features(X, spec)
    return Dataset(name=spec.name, X=X, y=y)


def _apportion(total: int, priors: tuple[float, ...]) -> list[int]:
    """Largest-remainder apportionment of ``total`` rows to class priors."""
    raw = [total * p for p in priors]
    counts = [int(np.floor(v)) for v in raw]
    remainder = total - sum(counts)
    by_frac = sorted(
        range(len(priors)), key=lambda i: raw[i] - counts[i], reverse=True
    )
    for i in by_frac[:remainder]:
        counts[i] += 1
    # Guarantee at least 2 rows per class so stratified splits always work.
    for i in range(len(counts)):
        while counts[i] < 2:
            donor = int(np.argmax(counts))
            counts[donor] -= 1
            counts[i] += 1
    return counts
