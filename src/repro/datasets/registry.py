"""The 12 named datasets used in the paper's experiments.

Each entry mirrors the published schema of the UCI original (rows, columns,
classes, class balance, feature domains).  The values themselves are
synthetic — see the module docstring of :mod:`repro.datasets.schema` for
why this substitution preserves the experiments' behaviour.

Shuttle is the one deliberate size deviation: the UCI original has 58,000
rows; we cap the synthetic stand-in at 2,000 rows (same 7-class extreme
skew) to keep the full benchmark suite laptop-scale, matching how the
paper's companion work subsampled it for perturbation experiments.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from .schema import Dataset, DatasetSpec, FeatureKind
from .synthesis import synthesize

__all__ = ["DATASET_SPECS", "DATASET_NAMES", "load_dataset", "dataset_summary"]

_C = FeatureKind.CONTINUOUS
_I = FeatureKind.INTEGER
_B = FeatureKind.BINARY


def _kinds(*groups: Tuple[FeatureKind, int]) -> Tuple[FeatureKind, ...]:
    kinds: list[FeatureKind] = []
    for kind, count in groups:
        kinds.extend([kind] * count)
    return tuple(kinds)


DATASET_SPECS: Dict[str, DatasetSpec] = {
    "breast_w": DatasetSpec(
        name="breast_w",
        n_rows=699,
        n_features=9,
        n_classes=2,
        class_priors=(0.655, 0.345),
        feature_kinds=_kinds((_I, 9)),
        class_separation=2.9,
        description=(
            "Wisconsin breast cancer: 699 rows, 9 integer cytology features "
            "(1-10 scale), benign/malignant 65/35."
        ),
    ),
    "credit_a": DatasetSpec(
        name="credit_a",
        n_rows=690,
        n_features=14,
        n_classes=2,
        class_priors=(0.555, 0.445),
        feature_kinds=_kinds((_C, 6), (_B, 4), (_I, 4)),
        class_separation=1.9,
        noise_dims=3,
        description=(
            "Australian credit approval: 690 rows, 14 mixed features, "
            "approved/rejected 55.5/44.5."
        ),
    ),
    "credit_g": DatasetSpec(
        name="credit_g",
        n_rows=1000,
        n_features=24,
        n_classes=2,
        class_priors=(0.70, 0.30),
        feature_kinds=_kinds((_C, 7), (_I, 13), (_B, 4)),
        class_separation=1.6,
        noise_dims=6,
        description=(
            "German credit (numeric encoding): 1000 rows, 24 features, "
            "good/bad 70/30."
        ),
    ),
    "diabetes": DatasetSpec(
        name="diabetes",
        n_rows=768,
        n_features=8,
        n_classes=2,
        class_priors=(0.651, 0.349),
        feature_kinds=_kinds((_C, 6), (_I, 2)),
        class_separation=1.5,
        noise_dims=1,
        description=(
            "Pima Indians diabetes: 768 rows, 8 physiological features, "
            "negative/positive 65/35."
        ),
    ),
    "ecoli": DatasetSpec(
        name="ecoli",
        n_rows=336,
        n_features=7,
        n_classes=8,
        class_priors=(0.425, 0.229, 0.155, 0.104, 0.059, 0.012, 0.008, 0.008),
        feature_kinds=_kinds((_C, 7)),
        class_separation=2.6,
        description=(
            "E. coli protein localization: 336 rows, 7 continuous features, "
            "8 sites with heavy skew (cp 42.5% .. imL 0.6%)."
        ),
    ),
    "hepatitis": DatasetSpec(
        name="hepatitis",
        n_rows=155,
        n_features=19,
        n_classes=2,
        class_priors=(0.794, 0.206),
        feature_kinds=_kinds((_B, 12), (_C, 5), (_I, 2)),
        class_separation=1.9,
        noise_dims=4,
        description=(
            "Hepatitis prognosis: 155 rows, 19 mostly-boolean clinical "
            "features, live/die 79/21."
        ),
    ),
    "heart": DatasetSpec(
        name="heart",
        n_rows=270,
        n_features=13,
        n_classes=2,
        class_priors=(0.556, 0.444),
        feature_kinds=_kinds((_C, 6), (_I, 4), (_B, 3)),
        class_separation=1.7,
        noise_dims=2,
        description=(
            "Statlog heart disease: 270 rows, 13 features, absent/present "
            "55.6/44.4."
        ),
    ),
    "ionosphere": DatasetSpec(
        name="ionosphere",
        n_rows=351,
        n_features=34,
        n_classes=2,
        class_priors=(0.641, 0.359),
        feature_kinds=_kinds((_C, 34)),
        class_separation=2.2,
        noise_dims=8,
        description=(
            "Ionosphere radar returns: 351 rows, 34 continuous pulse "
            "features, good/bad 64/36."
        ),
    ),
    "iris": DatasetSpec(
        name="iris",
        n_rows=150,
        n_features=4,
        n_classes=3,
        class_priors=(1 / 3, 1 / 3, 1 / 3),
        feature_kinds=_kinds((_C, 4)),
        class_separation=2.7,
        description="Iris: 150 rows, 4 continuous features, 3 balanced species.",
    ),
    "shuttle": DatasetSpec(
        name="shuttle",
        n_rows=2000,
        n_features=9,
        n_classes=7,
        class_priors=(0.786, 0.118, 0.062, 0.017, 0.009, 0.005, 0.003),
        feature_kinds=_kinds((_I, 9)),
        class_separation=3.2,
        description=(
            "Statlog shuttle (subsampled from 58k to 2k rows): 9 integer "
            "sensor features, 7 classes, Rad-Flow ~79%."
        ),
    ),
    "votes": DatasetSpec(
        name="votes",
        n_rows=435,
        n_features=16,
        n_classes=2,
        class_priors=(0.614, 0.386),
        feature_kinds=_kinds((_B, 16)),
        class_separation=2.4,
        description=(
            "Congressional voting records: 435 rows, 16 yes/no votes, "
            "democrat/republican 61/39."
        ),
    ),
    "wine": DatasetSpec(
        name="wine",
        n_rows=178,
        n_features=13,
        n_classes=3,
        class_priors=(0.331, 0.399, 0.270),
        feature_kinds=_kinds((_C, 13)),
        class_separation=2.6,
        description=(
            "Wine cultivars: 178 rows, 13 continuous chemical features, "
            "3 classes 33/40/27."
        ),
    ),
}

DATASET_NAMES: Tuple[str, ...] = tuple(DATASET_SPECS)

# The three "typical datasets" the paper singles out for Figures 3 and 4.
FIGURE3_DATASETS: Tuple[str, ...] = ("diabetes", "shuttle", "votes")


def load_dataset(name: str, seed: Optional[int] = None) -> Dataset:
    """Load (synthesize) one of the 12 named datasets.

    Parameters
    ----------
    name:
        Case-insensitive registry key; see :data:`DATASET_NAMES`.
    seed:
        Synthesis seed.  Defaults to a stable per-dataset seed so that
        every experiment in the repository sees the same table.
    """
    key = name.lower()
    if key not in DATASET_SPECS:
        raise KeyError(
            f"unknown dataset {name!r}; available: {', '.join(DATASET_NAMES)}"
        )
    spec = DATASET_SPECS[key]
    if seed is None:
        # Stable per-dataset default: hash-free, readable, reproducible.
        seed = 7_000 + sorted(DATASET_SPECS).index(key)
    return synthesize(spec, seed=seed)


def dataset_summary() -> str:
    """ASCII table describing all registered datasets (used by the CLI)."""
    header = f"{'name':<12}{'rows':>6}{'dims':>6}{'classes':>9}  description"
    lines = [header, "-" * len(header)]
    for key in DATASET_NAMES:
        spec = DATASET_SPECS[key]
        lines.append(
            f"{spec.name:<12}{spec.n_rows:>6}{spec.n_features:>6}"
            f"{spec.n_classes:>9}  {spec.description}"
        )
    return "\n".join(lines)
