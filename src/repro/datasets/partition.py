"""Partitioning a pooled dataset into per-provider sub-datasets.

The paper's experiments split each dataset "into several randomly sized
sub-datasets, simulating the distributed datasets from the data providers"
and distinguish two partition distributions:

* **Uniform** — every local dataset is (approximately) a uniform random
  sample of the pooled data, so local class proportions match the global
  ones.
* **Class** (skewed) — local datasets are biased toward particular classes,
  modelling organizations whose populations differ (e.g. hospitals seeing
  different case mixes).  Implemented with a per-party Dirichlet draw over
  class proportions.

Both partitioners return disjoint row-index arrays covering the pool.
"""

from __future__ import annotations

import enum
from typing import List, Optional, Sequence

import numpy as np

from .schema import Dataset

__all__ = [
    "PartitionScheme",
    "partition_uniform",
    "partition_by_class",
    "partition",
    "random_sizes",
]


class PartitionScheme(enum.Enum):
    """The two partition distributions studied in Figures 3, 5 and 6."""

    UNIFORM = "uniform"
    CLASS = "class"


def random_sizes(
    total: int,
    k: int,
    rng: np.random.Generator,
    min_size: int = 2,
    concentration: float = 5.0,
) -> np.ndarray:
    """Randomly sized but non-degenerate partition sizes summing to ``total``.

    Sizes follow a Dirichlet(``concentration``) draw (moderately uneven, as
    in "randomly sized sub-datasets"), then are adjusted so each part keeps
    at least ``min_size`` rows.
    """
    if k <= 0:
        raise ValueError("k must be positive")
    if total < k * min_size:
        raise ValueError(
            f"cannot split {total} rows into {k} parts of >= {min_size} rows"
        )
    proportions = rng.dirichlet(np.full(k, concentration))
    sizes = np.maximum(np.rint(proportions * total).astype(int), min_size)
    # Repair rounding drift while respecting the minimum size.
    while sizes.sum() > total:
        candidates = np.flatnonzero(sizes > min_size)
        sizes[candidates[rng.integers(len(candidates))]] -= 1
    while sizes.sum() < total:
        sizes[rng.integers(k)] += 1
    return sizes


def partition_uniform(
    dataset: Dataset,
    k: int,
    rng: np.random.Generator,
    min_size: int = 2,
) -> List[np.ndarray]:
    """Split rows into ``k`` near-uniform random samples of random size."""
    sizes = random_sizes(dataset.n_rows, k, rng, min_size=min_size)
    order = rng.permutation(dataset.n_rows)
    parts: List[np.ndarray] = []
    start = 0
    for size in sizes:
        parts.append(np.sort(order[start : start + size]))
        start += size
    return parts


def partition_by_class(
    dataset: Dataset,
    k: int,
    rng: np.random.Generator,
    skew: float = 0.5,
    min_size: int = 2,
) -> List[np.ndarray]:
    """Split rows so each party's class mix is skewed.

    Parameters
    ----------
    skew:
        Dirichlet concentration for the per-party class-proportion draw.
        Smaller values give more extreme skew; ``0.5`` makes most parties
        dominated by one or two classes, matching the paper's "Class"
        partition distribution.

    Notes
    -----
    Every row is assigned to exactly one party.  Assignment is done class
    by class: the rows of each class are dealt to parties proportionally to
    the parties' (random) affinity for that class.  A final repair pass
    tops up parties that fell below ``min_size`` with rows taken from the
    largest parties, so downstream code can always rely on non-empty local
    datasets.
    """
    if k <= 0:
        raise ValueError("k must be positive")
    if dataset.n_rows < k * min_size:
        raise ValueError(
            f"cannot split {dataset.n_rows} rows into {k} parts of >= {min_size}"
        )
    classes = dataset.classes
    # affinity[p, c] = party p's preference weight for class c
    affinity = rng.dirichlet(np.full(k, skew), size=len(classes)).T

    assignments: List[List[int]] = [[] for _ in range(k)]
    for c_index, label in enumerate(classes):
        members = np.flatnonzero(dataset.y == label)
        members = members[rng.permutation(len(members))]
        weights = affinity[:, c_index]
        weights = weights / weights.sum()
        counts = _apportion_counts(len(members), weights)
        start = 0
        for party, count in enumerate(counts):
            assignments[party].extend(members[start : start + count].tolist())
            start += count

    _repair_min_size(assignments, min_size, rng)
    return [np.array(sorted(rows), dtype=int) for rows in assignments]


def _apportion_counts(total: int, weights: np.ndarray) -> List[int]:
    raw = weights * total
    counts = np.floor(raw).astype(int)
    remainder = total - counts.sum()
    order = np.argsort(-(raw - counts))
    for i in order[:remainder]:
        counts[i] += 1
    return counts.tolist()


def _repair_min_size(
    assignments: List[List[int]], min_size: int, rng: np.random.Generator
) -> None:
    """Move rows from the largest parties into any party below ``min_size``."""
    for party, rows in enumerate(assignments):
        while len(rows) < min_size:
            donor = max(range(len(assignments)), key=lambda p: len(assignments[p]))
            if donor == party or len(assignments[donor]) <= min_size:
                raise ValueError("cannot satisfy min_size with this configuration")
            take = rng.integers(len(assignments[donor]))
            rows.append(assignments[donor].pop(int(take)))


def partition(
    dataset: Dataset,
    k: int,
    scheme: PartitionScheme | str,
    rng: Optional[np.random.Generator] = None,
    seed: Optional[int] = None,
    **kwargs,
) -> List[np.ndarray]:
    """Dispatch to the partitioner named by ``scheme``.

    Exactly one of ``rng`` and ``seed`` should be provided (``seed`` wins
    when both are given, for experiment-driver convenience).
    """
    if seed is not None:
        rng = np.random.default_rng(seed)
    if rng is None:
        raise ValueError("provide an rng or a seed")
    scheme = PartitionScheme(scheme) if isinstance(scheme, str) else scheme
    if scheme is PartitionScheme.UNIFORM:
        return partition_uniform(dataset, k, rng, **kwargs)
    return partition_by_class(dataset, k, rng, **kwargs)


def describe_partition(dataset: Dataset, parts: Sequence[np.ndarray]) -> str:
    """ASCII summary of a partition's sizes and class mixes (for reports)."""
    lines = []
    classes = dataset.classes
    for i, part in enumerate(parts):
        labels = dataset.y[part]
        mix = "/".join(str(int((labels == c).sum())) for c in classes)
        lines.append(f"party {i}: {len(part):>5} rows  class mix {mix}")
    return "\n".join(lines)
