"""Synthetic stand-ins for the paper's 12 UCI datasets, plus partitioners.

See :mod:`repro.datasets.schema` for why synthesis is a faithful
substitution in this reproduction, and :mod:`repro.datasets.registry` for
the per-dataset schemas.
"""

from .partition import (
    PartitionScheme,
    describe_partition,
    partition,
    partition_by_class,
    partition_uniform,
    random_sizes,
)
from .registry import (
    DATASET_NAMES,
    DATASET_SPECS,
    FIGURE3_DATASETS,
    dataset_summary,
    load_dataset,
)
from .schema import Dataset, DatasetSpec, FeatureKind, normalize_dataset
from .statistics import ColumnStats, class_balance, column_statistics, describe
from .synthesis import synthesize

__all__ = [
    "Dataset",
    "DatasetSpec",
    "FeatureKind",
    "normalize_dataset",
    "ColumnStats",
    "column_statistics",
    "class_balance",
    "describe",
    "synthesize",
    "load_dataset",
    "dataset_summary",
    "DATASET_SPECS",
    "DATASET_NAMES",
    "FIGURE3_DATASETS",
    "PartitionScheme",
    "partition",
    "partition_uniform",
    "partition_by_class",
    "random_sizes",
    "describe_partition",
]
