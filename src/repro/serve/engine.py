"""The multi-session serving engine.

:class:`MiningService` (alias :data:`Engine`) is the long-lived front door
the ROADMAP's serving milestone asks for: it owns **one** shared, metered
shard-worker pool and runs many concurrent :class:`~repro.serve.spec.SessionSpec`
workloads over it — batch protocol runs and stream sessions side by side —
with

* **admission control**: at most ``max_inflight`` sessions execute
  concurrently, at most ``queue_limit`` more may wait, and anything beyond
  that is rejected with a friendly :class:`AdmissionError` instead of an
  unbounded backlog;
* **per-tenant isolation**: every spec's seed is namespaced by its tenant
  (see :meth:`SessionSpec.resolved_seed`), and each tenant can carry a
  :class:`TenantPolicy` bounding its concurrent sessions, total accepted
  sessions, and privacy/attack-suite evaluations;
* **deterministic results**: a session executed by the service is
  bit-identical to running the same spec alone through the legacy
  one-shot entry points, because the shared pool only changes *where*
  pure shard tasks run, never what they compute or how results merge.

:func:`execute_spec` is the single execution path underneath everything:
the legacy :func:`repro.run_sap_session` / :func:`repro.run_stream_session`
wrappers call it inline with no service around them, and the service calls
it on a driver thread with the shared pool plugged in.
"""

from __future__ import annotations

import logging
import threading
import time
from concurrent.futures import CancelledError, Future, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..checkpoint import (
    CheckpointError,
    Checkpointer,
    SessionEvicted,
    load_checkpoint,
)
from ..core.session import SAPSessionResult, _execute_sap_session
from ..datasets.partition import PartitionScheme
from ..datasets.registry import load_dataset
from ..datasets.schema import Dataset
from ..obs import Telemetry, pool_collector, service_collector
from ..sharding.backends import MeteredBackend, ShardBackend, make_backend
from ..streaming.sources import StreamSource
from ..streaming.stream_session import StreamSessionResult, _execute_stream_session
from .spec import SessionSpec

_LOG = logging.getLogger("repro.serve.engine")

__all__ = [
    "AdmissionError",
    "TenantPolicy",
    "SessionHandle",
    "TenantStats",
    "PoolStats",
    "ServiceStats",
    "MiningService",
    "Engine",
    "execute_spec",
]

#: result type either kind of session produces
SessionResult = Union[SAPSessionResult, StreamSessionResult]


class AdmissionError(ValueError):
    """A session was refused admission (capacity or tenant budget).

    Subclasses :class:`ValueError` so the CLI's friendly exit-2 handling
    applies without special-casing.
    """


@dataclass(frozen=True)
class TenantPolicy:
    """Per-tenant admission budgets (``None`` means unbounded).

    Attributes
    ----------
    max_active:
        Most sessions the tenant may have queued or running at once.
    max_sessions:
        Most sessions the service will ever accept from the tenant.
    privacy_budget:
        Most sessions *with privacy/attack-suite evaluation enabled* the
        service will accept — the attack suite is the expensive, revealing
        part of a run, so it is budgeted separately, in the spirit of
        per-trust-level perturbation budgets.
    """

    max_active: Optional[int] = None
    max_sessions: Optional[int] = None
    privacy_budget: Optional[int] = None

    def __post_init__(self) -> None:
        for name in ("max_active", "max_sessions", "privacy_budget"):
            value = getattr(self, name)
            if value is not None and value < 0:
                raise ValueError(f"{name} must be >= 0 when set, got {value}")


def execute_spec(
    spec: SessionSpec,
    backend: Optional[ShardBackend] = None,
    dataset: Optional[Dataset] = None,
    source: Optional[StreamSource] = None,
    privacy_suite: Optional[Any] = None,
    keep_network: bool = False,
    telemetry: Optional[Telemetry] = None,
    checkpointer: Optional[Checkpointer] = None,
    resume_from: Optional[str] = None,
) -> SessionResult:
    """Run one spec to completion and return its native result object.

    Parameters
    ----------
    spec:
        What to run.
    backend:
        Optional already-built shard backend to fan shard tasks out to —
        the sharing hook of :class:`MiningService`.  ``None`` lets the
        session build (and own) the backend the spec names.  Results are
        identical either way.
    dataset / source:
        Optional pre-built inputs (the legacy wrappers pass the objects
        they were handed); by default they are materialized from the spec.
    privacy_suite / keep_network:
        Batch-only runtime extras, forwarded verbatim to the session
        internals (not part of the declarative spec).
    telemetry:
        Optional :class:`repro.obs.Telemetry` bundle overriding
        ``spec.telemetry`` — the injection hook :class:`MiningService`
        uses to nest a session's spans under its ``drive`` span.  Never
        affects results.
    checkpointer / resume_from:
        Durable-session hooks (streaming only): a
        :class:`repro.checkpoint.Checkpointer` to save round-boundary
        checkpoints into, and/or a checkpoint file to restore before
        ingesting.  Batch sessions are one protocol round and finish or
        fail atomically, so checkpointing them is refused.
    """
    if spec.kind == "batch" and (checkpointer is not None or resume_from is not None):
        raise CheckpointError(
            "checkpointing is streaming-only: a batch session is a single "
            "protocol round with nothing to resume"
        )
    tel = telemetry if telemetry is not None else spec.telemetry
    span = None
    if tel is not None:
        tel.metrics.counter(
            "repro_sessions_total", "Sessions executed, by kind.",
            kind=spec.kind,
        ).inc()
        if tel.enabled:
            span = tel.span(
                "session", kind=spec.kind, label=spec.display_label,
                tenant=spec.tenant,
            )
            tel = tel.child(span)
    try:
        if spec.kind == "batch":
            if dataset is None:
                dataset = (
                    spec.dataset
                    if isinstance(spec.dataset, Dataset)
                    else load_dataset(spec.dataset)
                )
            result = _execute_sap_session(
                dataset,
                spec.to_sap_config(),
                scheme=PartitionScheme(spec.scheme),
                compute_privacy=spec.effective_privacy,
                privacy_suite=privacy_suite,
                keep_network=keep_network,
                backend=backend,
            )
        else:
            if source is None:
                source = spec.make_source()
            config = spec.to_stream_config()
            if config.telemetry is not tel:
                config = replace(config, telemetry=tel)
            result = _execute_stream_session(
                source,
                config,
                backend=backend,
                checkpointer=checkpointer,
                resume_from=resume_from,
            )
    except BaseException as exc:
        if span is not None:
            span.end(error=type(exc).__name__)
        raise
    if span is not None:
        span.end()
    return result


def _result_traffic(result: SessionResult) -> Tuple[int, int, int]:
    """``(records, messages, bytes)`` of one result, both kinds unified."""
    if isinstance(result, StreamSessionResult):
        return (
            result.records_processed,
            result.messages_sent + result.data_messages_sent,
            result.bytes_sent + result.data_bytes_sent,
        )
    records = result.miner_result.n_train + result.miner_result.n_test
    return (records, result.messages_sent, result.bytes_sent)


class SessionHandle:
    """One submitted session's lifecycle: ``submit -> poll -> result/cancel``.

    Handles are created by :meth:`MiningService.submit`; they expose the
    session's status, block on its result, and cancel it while it is still
    queued.  All state transitions happen under the service's lock.
    """

    def __init__(self, spec: SessionSpec, session_id: int) -> None:
        self.spec = spec
        self.session_id = session_id
        self.submitted_at = time.perf_counter()
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        # Tracing: the span covering the time this session waits for a
        # driver slot (set by the owning service when tracing is on).
        self._queue_span: Optional[Any] = None
        self._future: "Future[SessionResult]" = Future()
        self._running = False
        # Durable-session hooks, set by the owning service at submit time.
        self._checkpointer: Optional[Checkpointer] = None
        self._resume_from: Optional[str] = None
        # Set by the owning service; lets cancel() release the admission
        # slot immediately instead of when a driver reaches the dead item.
        self._on_cancel = None
        self._cancel_accounted = False
        # Guards the cancel() winner election: Future.cancel() returns
        # True for *every* caller once the future is cancelled, so without
        # this lock two racing cancellers would both claim the win (and
        # both fire the slot-release callback).
        self._cancel_lock = threading.Lock()
        self._cancel_claimed = False

    # -- state, derived from the future plus the running flag -----------
    def poll(self) -> str:
        """Status: queued | running | completed | failed | cancelled | evicted."""
        if self._future.cancelled():
            return "cancelled"
        if self._future.done():
            exc = self._future.exception()
            if exc is None:
                return "completed"
            return "evicted" if isinstance(exc, SessionEvicted) else "failed"
        return "running" if self._running else "queued"

    def done(self) -> bool:
        """True once the session finished, failed, or was cancelled."""
        return self._future.done()

    def wait(self, timeout: Optional[float] = None) -> str:
        """Block until the session leaves the queue/running states."""
        try:
            # ``exception`` blocks without re-raising the session's own
            # failure (that is ``result``'s job).
            self._future.exception(timeout=timeout)
        except (CancelledError, FutureTimeoutError):
            pass
        return self.poll()

    def result(self, timeout: Optional[float] = None) -> SessionResult:
        """Block for, then return, the session's result.

        Re-raises the session's exception if it failed and
        :class:`concurrent.futures.CancelledError` if it was cancelled.
        """
        return self._future.result(timeout=timeout)

    def cancel(self) -> bool:
        """Cancel the session if it is still queued; returns success.

        Idempotent and race-free: however many threads call it, exactly
        one observes ``True`` (the one whose call actually cancelled the
        session) and the admission-slot release fires exactly once —
        ``concurrent.futures.Future.cancel`` alone reports ``True`` to
        every caller on an already-cancelled future, which would release
        the slot once per caller.
        """
        with self._cancel_lock:
            if self._cancel_claimed or not self._future.cancel():
                return False
            self._cancel_claimed = True
            callback = self._on_cancel
        if callback is not None:
            callback(self)
        return True

    @property
    def queue_seconds(self) -> float:
        """Wall-clock time spent waiting for a driver slot."""
        if self.started_at is None:
            return 0.0
        return self.started_at - self.submitted_at

    @property
    def wall_seconds(self) -> float:
        """Wall-clock execution time (0 until the session starts)."""
        if self.started_at is None:
            return 0.0
        end = self.finished_at if self.finished_at is not None else time.perf_counter()
        return end - self.started_at


@dataclass
class TenantStats:
    """One tenant's aggregate service counters."""

    tenant: str
    submitted: int = 0
    rejected: int = 0
    completed: int = 0
    failed: int = 0
    cancelled: int = 0
    evicted: int = 0
    active: int = 0
    privacy_sessions: int = 0
    records: int = 0
    messages: int = 0
    bytes: int = 0
    busy_seconds: float = 0.0

    def throughput(self, elapsed_seconds: float) -> float:
        """Completed sessions per second of service lifetime."""
        if elapsed_seconds <= 0:
            return 0.0
        return self.completed / elapsed_seconds


@dataclass(frozen=True)
class PoolStats:
    """The shared shard pool's demand counters."""

    backend: str
    workers: int
    tasks: int
    batches: int
    busy_seconds: float
    utilization: float


@dataclass
class ServiceStats:
    """A point-in-time snapshot of the whole service."""

    elapsed_seconds: float
    submitted: int
    rejected: int
    completed: int
    failed: int
    cancelled: int
    evicted: int
    active: int
    records: int
    messages: int
    bytes: int
    tenants: Tuple[TenantStats, ...]
    pool: PoolStats

    @property
    def sessions_per_second(self) -> float:
        """Completed sessions per second of service lifetime."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.completed / self.elapsed_seconds

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly snapshot (used by ``repro serve --json``)."""
        return {
            "elapsed_seconds": self.elapsed_seconds,
            "submitted": self.submitted,
            "rejected": self.rejected,
            "completed": self.completed,
            "failed": self.failed,
            "cancelled": self.cancelled,
            "evicted": self.evicted,
            "active": self.active,
            "sessions_per_second": self.sessions_per_second,
            "records": self.records,
            "messages": self.messages,
            "bytes": self.bytes,
            "tenants": {
                t.tenant: {
                    "submitted": t.submitted,
                    "rejected": t.rejected,
                    "completed": t.completed,
                    "failed": t.failed,
                    "cancelled": t.cancelled,
                    "evicted": t.evicted,
                    "privacy_sessions": t.privacy_sessions,
                    "records": t.records,
                    "messages": t.messages,
                    "bytes": t.bytes,
                    "busy_seconds": t.busy_seconds,
                    "sessions_per_second": t.throughput(self.elapsed_seconds),
                }
                for t in self.tenants
            },
            "pool": {
                "backend": self.pool.backend,
                "workers": self.pool.workers,
                "tasks": self.pool.tasks,
                "batches": self.pool.batches,
                "busy_seconds": self.pool.busy_seconds,
                "utilization": self.pool.utilization,
            },
        }

    def summary(self) -> str:
        """Multi-line service report, matching the session summaries' style."""
        lines = [
            f"sessions          : {self.completed} completed / "
            f"{self.failed} failed / {self.cancelled} cancelled / "
            f"{self.evicted} evicted / "
            f"{self.rejected} rejected ({self.submitted} accepted)",
            f"service rate      : {self.sessions_per_second:.2f} sessions/s "
            f"over {self.elapsed_seconds:.2f} s",
            f"records mined     : {self.records}",
            f"simnet traffic    : {self.messages} msgs / {self.bytes} bytes",
            f"shard pool        : {self.pool.backend}, {self.pool.workers} workers, "
            f"{self.pool.tasks} tasks in {self.pool.batches} batches",
            f"pool utilization  : {self.pool.utilization * 100:.1f}% "
            f"({self.pool.busy_seconds:.2f} busy s)",
        ]
        for t in sorted(self.tenants, key=lambda t: t.tenant):
            lines.append(
                f"tenant {t.tenant:<11}: {t.completed}/{t.submitted} done, "
                f"{t.rejected} rejected, {t.records} records, "
                f"{t.messages} msgs / {t.bytes} bytes"
            )
        return "\n".join(lines)


@dataclass
class _TenantLedger:
    """Mutable per-tenant accounting, guarded by the service lock."""

    policy: TenantPolicy
    stats: TenantStats


class MiningService:
    """Long-lived engine running many concurrent sessions over one pool.

    Parameters
    ----------
    max_inflight:
        Driver threads — sessions executing concurrently.
    queue_limit:
        Sessions allowed to wait beyond the in-flight ones; ``None`` is
        unbounded, ``0`` rejects anything that cannot start immediately.
    shard_backend / shard_workers:
        The shared physical worker pool every session's shard tasks run
        on (``serial``/``thread``/``process``; workers default to
        ``max_inflight``).  It overrides the per-spec ``shard_backend``,
        which is sound because session results are backend-independent.
    tenants:
        Optional ``{tenant: TenantPolicy}`` budgets; unlisted tenants are
        unbounded.
    telemetry:
        Optional :class:`repro.obs.Telemetry` bundle.  When present, the
        service registers pool/service collectors on its registry (the
        public :meth:`stats` dicts stay the source of truth), counts
        admissions/rejections, and — if the tracer is enabled — emits a
        ``queue`` span per admitted session and a ``drive`` span around
        each execution, with the session's own spans nested beneath.  A
        spec carrying its own bundle overrides the service's for that
        session.

    Use as a context manager, or call :meth:`close` when done.
    """

    def __init__(
        self,
        max_inflight: int = 4,
        queue_limit: Optional[int] = None,
        shard_backend: str = "thread",
        shard_workers: Optional[int] = None,
        tenants: Optional[Mapping[str, TenantPolicy]] = None,
        telemetry: Optional[Telemetry] = None,
        checkpoint_dir: Optional[str] = None,
        checkpoint_retain: Optional[int] = None,
    ) -> None:
        if max_inflight < 1:
            raise ValueError("max_inflight must be a positive integer")
        if queue_limit is not None and queue_limit < 0:
            raise ValueError("queue_limit must be >= 0 when set")
        if checkpoint_retain is not None and checkpoint_retain < 1:
            raise ValueError("checkpoint_retain must be >= 1 when set")
        self.max_inflight = max_inflight
        self.queue_limit = queue_limit
        # Durable sessions: with a checkpoint directory, stream sessions
        # become evictable (checkpoint + abandon, freeing their slot) and
        # resumable (re-admitted from the file, bit-identical results).
        self.checkpoint_dir = checkpoint_dir
        self.checkpoint_retain = checkpoint_retain
        workers = max_inflight if shard_workers is None else shard_workers
        if workers < 1:
            raise ValueError("shard_workers must be a positive integer")
        self.pool = MeteredBackend(make_backend(shard_backend, workers))
        # Pre-fork/pre-start the shared pool's workers from this thread,
        # before any driver threads exist: forking a multi-threaded process
        # can leave child workers holding another thread's locks.
        self.pool.warm()
        self._drivers = ThreadPoolExecutor(
            max_workers=max_inflight, thread_name_prefix="repro-serve"
        )
        self._lock = threading.Lock()
        # Unsettled sessions only, keyed by session id: settled handles are
        # evicted so a long-lived service does not pin every past result in
        # memory (callers keep their own handle if they want the result).
        self._handles: Dict[int, SessionHandle] = {}
        self._active = 0
        self._ledgers: Dict[str, _TenantLedger] = {}
        for tenant, policy in dict(tenants or {}).items():
            self._ledgers[tenant] = _TenantLedger(policy, TenantStats(tenant))
        self._next_id = 0
        self._records = 0
        self._messages = 0
        self._bytes = 0
        self._rejected = 0
        self._started = time.perf_counter()
        self._closed = False
        self.telemetry = telemetry
        if telemetry is not None:
            if not isinstance(telemetry, Telemetry):
                raise ValueError(
                    f"telemetry must be a repro.obs.Telemetry bundle or "
                    f"None, got {type(telemetry).__name__}"
                )
            telemetry.metrics.register_collector(pool_collector(self.pool))
            telemetry.metrics.register_collector(service_collector(self))

    # ------------------------------------------------------------------
    # admission + submission
    # ------------------------------------------------------------------
    def _ledger(self, tenant: str) -> _TenantLedger:
        ledger = self._ledgers.get(tenant)
        if ledger is None:
            ledger = _TenantLedger(TenantPolicy(), TenantStats(tenant))
            self._ledgers[tenant] = ledger
        return ledger

    def _admit(self, spec: SessionSpec) -> SessionHandle:
        """Admission control; called under the lock.  Raises or admits."""
        if self._closed:
            raise AdmissionError("service is closed; no new sessions accepted")
        ledger = self._ledger(spec.tenant)
        stats = ledger.stats
        policy = ledger.policy
        capacity = (
            None
            if self.queue_limit is None
            else self.max_inflight + self.queue_limit
        )
        if capacity is not None and self._active >= capacity:
            stats.rejected += 1
            self._rejected += 1
            raise AdmissionError(
                f"service at capacity: {self._active} sessions in flight "
                f"(max_inflight={self.max_inflight}, "
                f"queue_limit={self.queue_limit}); retry later"
            )
        if policy.max_active is not None and stats.active >= policy.max_active:
            stats.rejected += 1
            self._rejected += 1
            raise AdmissionError(
                f"tenant {spec.tenant!r} already has {stats.active} active "
                f"sessions (max_active={policy.max_active})"
            )
        if policy.max_sessions is not None and stats.submitted >= policy.max_sessions:
            stats.rejected += 1
            self._rejected += 1
            raise AdmissionError(
                f"tenant {spec.tenant!r} exhausted its session budget "
                f"({policy.max_sessions})"
            )
        if (
            spec.effective_privacy
            and policy.privacy_budget is not None
            and stats.privacy_sessions >= policy.privacy_budget
        ):
            stats.rejected += 1
            self._rejected += 1
            raise AdmissionError(
                f"tenant {spec.tenant!r} exhausted its privacy-evaluation "
                f"budget ({policy.privacy_budget})"
            )
        handle = SessionHandle(spec, self._next_id)
        handle._on_cancel = self._release_cancelled
        self._next_id += 1
        stats.submitted += 1
        stats.active += 1
        self._active += 1
        if spec.effective_privacy:
            stats.privacy_sessions += 1
        self._handles[handle.session_id] = handle
        return handle

    def submit(
        self,
        spec: Union[SessionSpec, Mapping[str, Any]],
        dataset: Optional[Dataset] = None,
        source: Optional[StreamSource] = None,
        resume_from: Optional[str] = None,
        checkpoint_every: Optional[int] = None,
    ) -> SessionHandle:
        """Admit one spec and schedule it; returns its :class:`SessionHandle`.

        Raises :class:`AdmissionError` when the service or the spec's
        tenant is out of capacity/budget.  ``spec`` may be a plain mapping
        (one workload-file entry); ``dataset``/``source`` optionally
        short-circuit input materialization.

        When the service has a ``checkpoint_dir``, stream sessions get a
        :class:`~repro.checkpoint.Checkpointer` (saving every
        ``checkpoint_every`` windows; ``None`` saves only on eviction) and
        become :meth:`evict`-able; ``resume_from`` restores one from a
        checkpoint file — re-entering admission control like any new
        session.
        """
        if not isinstance(spec, SessionSpec):
            spec = SessionSpec.from_mapping(spec)
        tel = spec.telemetry if spec.telemetry is not None else self.telemetry
        if checkpoint_every is not None and self.checkpoint_dir is None:
            raise CheckpointError(
                "checkpoint_every needs a service checkpoint_dir to save into"
            )
        if spec.kind == "batch" and (
            resume_from is not None or checkpoint_every is not None
        ):
            raise CheckpointError(
                "checkpointing is streaming-only: a batch session is a single "
                "protocol round with nothing to resume"
            )
        try:
            with self._lock:
                handle = self._admit(spec)
                if self.checkpoint_dir is not None and spec.kind == "stream":
                    handle._checkpointer = Checkpointer(
                        directory=self.checkpoint_dir,
                        every=checkpoint_every,
                        label=f"session-{handle.session_id}",
                        spec_mapping=spec.to_mapping(),
                        telemetry=tel,
                        retain=self.checkpoint_retain,
                    )
                handle._resume_from = resume_from
                # The queue span opens before scheduling so the driver
                # thread can never observe the handle without it.
                if tel is not None and tel.enabled:
                    handle._queue_span = tel.tracer.span(
                        "queue", parent=tel.parent,
                        session=handle.session_id, tenant=spec.tenant,
                    )
                # Scheduled under the lock so a concurrent close() cannot
                # shut the driver pool down between admission and
                # scheduling.
                self._drivers.submit(self._drive, handle, dataset, source)
        except AdmissionError as exc:
            if self.telemetry is not None:
                self.telemetry.metrics.counter(
                    "repro_serve_rejected_total",
                    "Sessions refused admission.",
                ).inc()
            _LOG.warning(
                "rejected session for tenant %r: %s", spec.tenant, exc
            )
            raise
        if self.telemetry is not None:
            self.telemetry.metrics.counter(
                "repro_serve_admitted_total", "Sessions admitted."
            ).inc()
        _LOG.info(
            "admitted session %d (%s)", handle.session_id, spec.display_label
        )
        return handle

    def _drive(
        self,
        handle: SessionHandle,
        dataset: Optional[Dataset],
        source: Optional[StreamSource],
    ) -> None:
        """Driver-thread body: run the session, settle the handle, account."""
        spec = handle.spec
        tel = spec.telemetry if spec.telemetry is not None else self.telemetry
        qspan = handle._queue_span
        if not handle._future.set_running_or_notify_cancel():
            # Cancelled while queued; cancel() normally accounted for it
            # already, so this only covers a cancel that raced past it.
            if qspan is not None:
                qspan.end(outcome="cancelled")
            self._release_cancelled(handle)
            return
        if qspan is not None:
            qspan.end(outcome="started")
        handle._running = True
        handle.started_at = time.perf_counter()
        drive_span = None
        exec_tel = tel
        if tel is not None and tel.enabled:
            drive_span = tel.tracer.span(
                "drive", parent=tel.parent, session=handle.session_id,
                tenant=spec.tenant, kind=spec.kind,
            )
            exec_tel = tel.child(drive_span)
        try:
            result = execute_spec(
                handle.spec, backend=self.pool, dataset=dataset,
                source=source, telemetry=exec_tel,
                checkpointer=handle._checkpointer,
                resume_from=handle._resume_from,
            )
        except SessionEvicted as exc:
            # A requested checkpoint-and-abandon, not a failure: the slot
            # frees exactly like a completion and the handle's "result" is
            # the SessionEvicted naming the file to resume from.  Same
            # ordering contract as the paths below.
            if drive_span is not None:
                drive_span.end(outcome="evicted")
            _LOG.info("session %d evicted: %s", handle.session_id, exc)
            handle.finished_at = time.perf_counter()
            with self._lock:
                stats = self._ledger(handle.spec.tenant).stats
                stats.active -= 1
                stats.evicted += 1
                self._active -= 1
            if tel is not None:
                tel.metrics.counter(
                    "repro_checkpoints_total",
                    "Checkpoint operations by outcome.",
                    outcome="evicted",
                ).inc()
            handle._future.set_exception(exc)
            with self._lock:
                self._settle(handle)
            return
        except BaseException as exc:
            if drive_span is not None:
                drive_span.end(error=type(exc).__name__)
            _LOG.warning("session %d failed: %s", handle.session_id, exc)
            handle.finished_at = time.perf_counter()
            # Ordering contract: account first (so a caller who observed the
            # result sees consistent stats), then settle the future, then
            # evict — drain() stops waiting on a handle once it leaves
            # _handles, so eviction must never precede the result becoming
            # observable.
            with self._lock:
                stats = self._ledger(handle.spec.tenant).stats
                stats.active -= 1
                stats.failed += 1
                self._active -= 1
            handle._future.set_exception(exc)
            with self._lock:
                self._settle(handle)
            return
        if drive_span is not None:
            drive_span.end()
        handle.finished_at = time.perf_counter()
        records, messages, nbytes = _result_traffic(result)
        # Same ordering contract as the failure path above.
        with self._lock:
            stats = self._ledger(handle.spec.tenant).stats
            stats.active -= 1
            stats.completed += 1
            stats.records += records
            stats.messages += messages
            stats.bytes += nbytes
            stats.busy_seconds += handle.wall_seconds
            self._records += records
            self._messages += messages
            self._bytes += nbytes
            self._active -= 1
        handle._future.set_result(result)
        with self._lock:
            self._settle(handle)

    # ------------------------------------------------------------------
    # convenience drivers
    # ------------------------------------------------------------------
    def run(
        self, specs: Sequence[Union[SessionSpec, Mapping[str, Any]]]
    ) -> List[SessionResult]:
        """Submit a whole workload, wait, and return results in order.

        If a spec is refused admission mid-list, the already-admitted
        sessions are cancelled where still queued and awaited where
        running, then the :class:`AdmissionError` is re-raised — nothing
        is left running unreachably.  Use :meth:`submit` directly to
        handle rejections per session instead.
        """
        handles: List[SessionHandle] = []
        try:
            for spec in specs:
                handles.append(self.submit(spec))
        except AdmissionError:
            for handle in handles:
                handle.cancel()
            for handle in handles:
                handle.wait()
            raise
        return [handle.result() for handle in handles]

    def _settle(self, handle: SessionHandle) -> None:
        """Evict one handle whose future has settled; called under the lock."""
        self._handles.pop(handle.session_id, None)

    def _release_cancelled(self, handle: SessionHandle) -> None:
        """Account one queued-then-cancelled session and free its slot.

        Reached from :meth:`SessionHandle.cancel` (immediately) *and* from
        the driver that later pops the dead work item; the accounting flag
        makes the two paths idempotent.
        """
        with self._lock:
            if handle._cancel_accounted:
                return
            handle._cancel_accounted = True
            stats = self._ledger(handle.spec.tenant).stats
            stats.active -= 1
            stats.cancelled += 1
            self._active -= 1
            self._settle(handle)

    def drain(self, timeout: Optional[float] = None) -> None:
        """Block until every admitted session has settled."""
        deadline = None if timeout is None else time.perf_counter() + timeout
        with self._lock:
            pending = list(self._handles.values())
        for handle in pending:
            remaining = (
                None if deadline is None else max(0.0, deadline - time.perf_counter())
            )
            handle.wait(timeout=remaining)

    # ------------------------------------------------------------------
    # durable sessions: evict + resume
    # ------------------------------------------------------------------
    def evict(
        self, session_id: int, timeout: Optional[float] = None
    ) -> Optional[str]:
        """Checkpoint and abandon one live stream session, freeing its slot.

        The session checkpoints at its next round boundary and raises
        :class:`~repro.checkpoint.SessionEvicted` through its handle
        (status ``"evicted"``).  Returns the checkpoint path to
        :meth:`resume` from — or ``None`` if the session completed (or
        failed) before reaching a boundary, in which case there is nothing
        to resume.
        """
        with self._lock:
            handle = self._handles.get(session_id)
        if handle is None:
            raise CheckpointError(
                f"no live session {session_id} to evict (completed sessions "
                f"settle and leave the service)"
            )
        checkpointer = handle._checkpointer
        if checkpointer is None:
            raise CheckpointError(
                f"session {session_id} is not evictable: the service needs a "
                f"checkpoint_dir (and the session must be a stream)"
            )
        checkpointer.request_evict()
        status = handle.wait(timeout=timeout)
        if status == "evicted":
            return handle._future.exception().path
        return None

    def resume(
        self,
        checkpoint_path: str,
        source: Optional[StreamSource] = None,
        checkpoint_every: Optional[int] = None,
    ) -> SessionHandle:
        """Re-admit an evicted session from its checkpoint file.

        The spec embedded at save time is re-submitted with
        ``resume_from`` pointing at the file, so the resumed session goes
        through admission control (capacity, tenant budgets) exactly like
        a new one — and its result is bit-identical to the uninterrupted
        run.
        """
        ckpt = load_checkpoint(checkpoint_path)
        spec_mapping = ckpt.spec
        if spec_mapping is None:
            raise CheckpointError(
                f"checkpoint {checkpoint_path!r} carries no session spec; it "
                f"was not written by a serving engine and cannot be re-admitted"
            )
        spec = SessionSpec.from_mapping(spec_mapping)
        return self.submit(
            spec,
            source=source,
            resume_from=checkpoint_path,
            checkpoint_every=checkpoint_every,
        )

    @property
    def handles(self) -> Tuple[SessionHandle, ...]:
        """The *unsettled* sessions' handles, in submission order.

        Settled handles are evicted from the service so a long-lived
        deployment does not accumulate every past result; the caller's own
        reference from :meth:`submit` stays valid forever.
        """
        with self._lock:
            return tuple(self._handles.values())

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def stats(self) -> ServiceStats:
        """A consistent snapshot of service, tenant, and pool counters."""
        with self._lock:
            elapsed = time.perf_counter() - self._started
            tenants = tuple(
                TenantStats(**vars(ledger.stats)) for ledger in self._ledgers.values()
            )
            submitted = sum(t.submitted for t in tenants)
            completed = sum(t.completed for t in tenants)
            failed = sum(t.failed for t in tenants)
            cancelled = sum(t.cancelled for t in tenants)
            evicted = sum(t.evicted for t in tenants)
            active = self._active
            # utilization() advances the occupancy clock up to "now" under
            # the metering lock; reading busy_seconds *after* it keeps the
            # two figures consistent while dispatches are mid-flight.
            utilization = self.pool.utilization(elapsed)
            pool = PoolStats(
                backend=self.pool.name,
                workers=self.pool.n_workers,
                tasks=self.pool.tasks_dispatched,
                batches=self.pool.batches_dispatched,
                busy_seconds=self.pool.busy_seconds,
                utilization=utilization,
            )
            return ServiceStats(
                elapsed_seconds=elapsed,
                submitted=submitted,
                rejected=self._rejected,
                completed=completed,
                failed=failed,
                cancelled=cancelled,
                evicted=evicted,
                active=active,
                records=self._records,
                messages=self._messages,
                bytes=self._bytes,
                tenants=tenants,
                pool=pool,
            )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(
        self, wait: bool = True, park: bool = False
    ) -> Optional[List[str]]:
        """Stop admitting, drain driver threads, release the shared pool.

        With ``park=True`` (needs a ``checkpoint_dir``), live checkpointable
        sessions are *parked* instead of waited out: each gets an eviction
        request, checkpoints at its next round boundary, and abandons.
        Returns the written checkpoint paths (resume each with
        :meth:`resume` on another service); non-checkpointable sessions —
        batch sessions, streams on a service without a checkpoint
        directory — still run to settlement.  Plain ``close()`` returns
        ``None``.
        """
        if park and self.checkpoint_dir is None:
            raise CheckpointError(
                "close(park=True) needs a service checkpoint_dir to park "
                "sessions into"
            )
        with self._lock:
            if self._closed:
                return [] if park else None
            self._closed = True
            pending = list(self._handles.values())
        parked: List[str] = []
        if park:
            # Signal every parkable session first, then wait: sessions
            # reach their next boundary concurrently instead of serially.
            for handle in pending:
                if handle._checkpointer is not None:
                    handle._checkpointer.request_evict()
            for handle in pending:
                if handle.wait() == "evicted":
                    parked.append(handle._future.exception().path)
        self._drivers.shutdown(wait=wait)
        self.pool.close()
        return parked if park else None

    def __enter__(self) -> "MiningService":
        """Context-manager entry: the service itself."""
        return self

    def __exit__(self, *exc_info: object) -> None:
        """Context-manager exit: close the service and its pool."""
        self.close()


#: canonical short name for :class:`MiningService`
Engine = MiningService
