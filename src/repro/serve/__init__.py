"""Unified Session API and multi-session serving engine.

The paper frames the Space Adaptation Protocol as a *service* many data
providers join; this package is that service's front door:

* :mod:`~repro.serve.spec` — :class:`SessionSpec`, one declarative
  description unifying batch protocol runs and stream sessions (dataset
  or stream scenario, protocol knobs, classifier, shard policy, tenant),
  JSON-round-trippable for workload files;
* :mod:`~repro.serve.engine` — :func:`execute_spec` (the single
  execution path the legacy one-shot wrappers also use) and
  :class:`MiningService` / :data:`Engine`, the long-lived serving engine
  that runs many concurrent sessions over one shared, metered shard-worker
  pool with admission control (:class:`AdmissionError`), per-tenant
  namespaced seeds and budgets (:class:`TenantPolicy`), per-session
  lifecycle handles (:class:`SessionHandle`), and aggregate service
  statistics (:class:`ServiceStats`).

Determinism carries through from the sharding layer: a session executed
by the service is bit-identical to running the same spec alone through
:func:`repro.run_sap_session` / :func:`repro.run_stream_session`.
"""

from .engine import (
    AdmissionError,
    Engine,
    MiningService,
    PoolStats,
    ServiceStats,
    SessionHandle,
    TenantPolicy,
    TenantStats,
    execute_spec,
)
from .spec import SESSION_KINDS, SessionSpec

__all__ = [
    "SESSION_KINDS",
    "SessionSpec",
    "execute_spec",
    "MiningService",
    "Engine",
    "SessionHandle",
    "TenantPolicy",
    "TenantStats",
    "PoolStats",
    "ServiceStats",
    "AdmissionError",
]
