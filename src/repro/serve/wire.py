"""Wire views of serving results and stats — the remoteable engine surface.

A process replica (:mod:`repro.cluster.replica`) runs a
:class:`~repro.serve.engine.MiningService` behind a framed byte protocol,
so everything the engine hands back — session results, service stats —
must cross the boundary as data the checkpoint codec can carry
(:mod:`repro.checkpoint.codec`: scalars, strings, bytes, lists, dicts,
ndarrays).  This module is that translation, and nothing else: no
sockets, no framing, no engine state.

The contract mirrors the checkpoint layer's: a round-trip through
``result_to_wire`` / ``result_from_wire`` preserves every
result-affecting field **bit-identically** (accuracies, deviation series,
traffic counters, ingest ledgers), which is what lets the cluster's
determinism invariant survive the process hop.  Deliberately dropped on
the wire — exactly the fields the in-process path also refuses to share:

* ``SAPSessionResult.network`` (the simnet observation ledger is a local
  debugging attachment, never part of the measured outcome);
* ``MinerResult.model`` (a fitted classifier object; the service phase
  re-fits from the pooled rows when needed).
"""

from __future__ import annotations

from typing import Any, Dict, Union

from ..core.risk import PartyRiskProfile
from ..core.session import SAPSessionResult
from ..datasets.partition import PartitionScheme
from ..parties.config import ClassifierSpec, SAPConfig
from ..parties.miner import MinerResult
from ..streaming.ingest import IngestStats, ProviderGate
from ..streaming.stream_session import (
    ReadaptationEvent,
    StreamSessionResult,
    StreamWindowStats,
    stream_config_from_mapping,
    stream_config_mapping,
)
from .engine import PoolStats, ServiceStats, TenantStats

__all__ = [
    "WireError",
    "result_to_wire",
    "result_from_wire",
    "stats_to_wire",
    "stats_from_wire",
]

SessionResult = Union[SAPSessionResult, StreamSessionResult]


class WireError(ValueError):
    """A payload does not describe a result/stats object this build knows."""


# ----------------------------------------------------------------------
# session results
# ----------------------------------------------------------------------
def _sap_config_to_wire(config: SAPConfig) -> Dict[str, Any]:
    return {
        "k": config.k,
        "noise_sigma": float(config.noise_sigma),
        "classifier": config.classifier.name,
        "classifier_params": dict(config.classifier.params),
        "test_fraction": float(config.test_fraction),
        "optimize_locally": config.optimize_locally,
        "optimizer_rounds": config.optimizer_rounds,
        "optimizer_local_steps": config.optimizer_local_steps,
        "target_candidates": config.target_candidates,
        "round_timeout": config.round_timeout,
        "shards": config.shards,
        "shard_backend": config.shard_backend,
        "seed": config.seed,
    }


def _sap_config_from_wire(mapping: Dict[str, Any]) -> SAPConfig:
    kwargs = dict(mapping)
    kwargs["classifier"] = ClassifierSpec(
        name=kwargs.pop("classifier"),
        params=dict(kwargs.pop("classifier_params")),
    )
    return SAPConfig(**kwargs)


def _miner_result_to_wire(miner: MinerResult) -> Dict[str, Any]:
    return {
        "accuracy": miner.accuracy,
        "n_train": miner.n_train,
        "n_test": miner.n_test,
        "classifier_name": miner.classifier_name,
        "per_tag_rows": dict(miner.per_tag_rows),
        "pooled_features": miner.pooled_features,
        "pooled_labels": miner.pooled_labels,
        "pooled_test_mask": miner.pooled_test_mask,
        # ``model`` stays home: a fitted classifier is not wire data.
    }


def _batch_to_wire(result: SAPSessionResult) -> Dict[str, Any]:
    return {
        "kind": "batch",
        "config": _sap_config_to_wire(result.config),
        "scheme": result.scheme.value,
        "accuracy_perturbed": result.accuracy_perturbed,
        "accuracy_standard": result.accuracy_standard,
        "miner_result": _miner_result_to_wire(result.miner_result),
        "forwarder_source_pairs": [
            list(pair) for pair in result.forwarder_source_pairs
        ],
        "messages_sent": result.messages_sent,
        "bytes_sent": result.bytes_sent,
        "virtual_duration": result.virtual_duration,
        "risk_profiles": [
            {
                "party": p.party,
                "rho_local": p.rho_local,
                "rho_global": p.rho_global,
                "b": p.b,
                "k": p.k,
            }
            for p in result.risk_profiles
        ],
    }


def _batch_from_wire(mapping: Dict[str, Any]) -> SAPSessionResult:
    return SAPSessionResult(
        config=_sap_config_from_wire(mapping["config"]),
        scheme=PartitionScheme(mapping["scheme"]),
        accuracy_perturbed=mapping["accuracy_perturbed"],
        accuracy_standard=mapping["accuracy_standard"],
        miner_result=MinerResult(**mapping["miner_result"]),
        forwarder_source_pairs=[
            tuple(pair) for pair in mapping["forwarder_source_pairs"]
        ],
        messages_sent=mapping["messages_sent"],
        bytes_sent=mapping["bytes_sent"],
        virtual_duration=mapping["virtual_duration"],
        risk_profiles=[
            PartyRiskProfile(**profile) for profile in mapping["risk_profiles"]
        ],
        network=None,
    )


def _ingest_to_wire(ingest: IngestStats) -> Dict[str, Any]:
    return {
        "providers": [
            {
                "provider": gate.provider,
                "name": gate.name,
                "records": gate.records,
                "late": gate.late,
                "dropped": gate.dropped,
                "readmitted": gate.readmitted,
                "upserted": gate.upserted,
                "max_skew": gate.max_skew,
            }
            for gate in ingest.providers
        ],
        "records": ingest.records,
        "late": ingest.late,
        "dropped": ingest.dropped,
        "readmitted": ingest.readmitted,
        "upserted": ingest.upserted,
        "max_skew": ingest.max_skew,
    }


def _ingest_from_wire(mapping: Dict[str, Any]) -> IngestStats:
    kwargs = dict(mapping)
    kwargs["providers"] = tuple(
        ProviderGate(**gate) for gate in kwargs["providers"]
    )
    return IngestStats(**kwargs)


def _stream_to_wire(result: StreamSessionResult) -> Dict[str, Any]:
    return {
        "kind": "stream",
        "config": stream_config_mapping(result.config),
        "source_name": result.source_name,
        "source_kind": result.source_kind,
        "records_processed": result.records_processed,
        "windows": [
            {
                "index": w.index,
                "n_records": w.n_records,
                "accuracy_perturbed": w.accuracy_perturbed,
                "accuracy_baseline": w.accuracy_baseline,
                "drift_statistic": w.drift_statistic,
                "drift_kind": w.drift_kind,
                "readapted": w.readapted,
                "revision": w.revision,
            }
            for w in result.windows
        ],
        "events": [
            {
                "window": e.window,
                "reason": e.reason,
                "statistic": e.statistic,
                "latency": e.latency,
                "messages": e.messages,
                "bytes": e.bytes,
                "virtual_duration": e.virtual_duration,
                "privacy_guarantee": e.privacy_guarantee,
            }
            for e in result.events
        ],
        "accuracy_perturbed": result.accuracy_perturbed,
        "accuracy_baseline": result.accuracy_baseline,
        "wall_seconds": result.wall_seconds,
        "messages_sent": result.messages_sent,
        "bytes_sent": result.bytes_sent,
        "data_messages_sent": result.data_messages_sent,
        "data_bytes_sent": result.data_bytes_sent,
        "shard_records": list(result.shard_records),
        "ingest": (
            None if result.ingest is None else _ingest_to_wire(result.ingest)
        ),
        "provider_records": list(result.provider_records),
        "overlap": result.overlap,
    }


def _stream_from_wire(mapping: Dict[str, Any]) -> StreamSessionResult:
    return StreamSessionResult(
        config=stream_config_from_mapping(mapping["config"]),
        source_name=mapping["source_name"],
        source_kind=mapping["source_kind"],
        records_processed=mapping["records_processed"],
        windows=[StreamWindowStats(**w) for w in mapping["windows"]],
        events=[ReadaptationEvent(**e) for e in mapping["events"]],
        accuracy_perturbed=mapping["accuracy_perturbed"],
        accuracy_baseline=mapping["accuracy_baseline"],
        wall_seconds=mapping["wall_seconds"],
        messages_sent=mapping["messages_sent"],
        bytes_sent=mapping["bytes_sent"],
        data_messages_sent=mapping["data_messages_sent"],
        data_bytes_sent=mapping["data_bytes_sent"],
        shard_records=tuple(mapping["shard_records"]),
        ingest=(
            None
            if mapping["ingest"] is None
            else _ingest_from_wire(mapping["ingest"])
        ),
        provider_records=tuple(mapping["provider_records"]),
        overlap=mapping["overlap"],
    )


def result_to_wire(result: SessionResult) -> Dict[str, Any]:
    """Flatten one session result into codec-safe data (keyed by kind)."""
    if isinstance(result, SAPSessionResult):
        return _batch_to_wire(result)
    if isinstance(result, StreamSessionResult):
        return _stream_to_wire(result)
    raise WireError(
        f"cannot serialize a {type(result).__name__}; expected a batch or "
        f"stream session result"
    )


def result_from_wire(mapping: Dict[str, Any]) -> SessionResult:
    """Rebuild the exact result object :func:`result_to_wire` flattened."""
    kind = mapping.get("kind") if isinstance(mapping, dict) else None
    if kind == "batch":
        return _batch_from_wire(mapping)
    if kind == "stream":
        return _stream_from_wire(mapping)
    raise WireError(f"unknown result kind {kind!r} on the wire")


# ----------------------------------------------------------------------
# service stats
# ----------------------------------------------------------------------
_TENANT_FIELDS = (
    "tenant", "submitted", "rejected", "completed", "failed", "cancelled",
    "evicted", "active", "privacy_sessions", "records", "messages", "bytes",
    "busy_seconds",
)


def stats_to_wire(stats: ServiceStats) -> Dict[str, Any]:
    """Flatten one :class:`ServiceStats` snapshot into codec-safe data."""
    return {
        "elapsed_seconds": stats.elapsed_seconds,
        "submitted": stats.submitted,
        "rejected": stats.rejected,
        "completed": stats.completed,
        "failed": stats.failed,
        "cancelled": stats.cancelled,
        "evicted": stats.evicted,
        "active": stats.active,
        "records": stats.records,
        "messages": stats.messages,
        "bytes": stats.bytes,
        "tenants": [
            {name: getattr(t, name) for name in _TENANT_FIELDS}
            for t in stats.tenants
        ],
        "pool": {
            "backend": stats.pool.backend,
            "workers": stats.pool.workers,
            "tasks": stats.pool.tasks,
            "batches": stats.pool.batches,
            "busy_seconds": stats.pool.busy_seconds,
            "utilization": stats.pool.utilization,
        },
    }


def stats_from_wire(mapping: Dict[str, Any]) -> ServiceStats:
    """Rebuild the :class:`ServiceStats` :func:`stats_to_wire` flattened."""
    kwargs = dict(mapping)
    kwargs["tenants"] = tuple(TenantStats(**t) for t in kwargs["tenants"])
    kwargs["pool"] = PoolStats(**kwargs["pool"])
    return ServiceStats(**kwargs)
