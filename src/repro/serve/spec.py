"""The unified, declarative description of one mining session.

A :class:`SessionSpec` says *what* to run — batch protocol or stream,
which dataset or stream scenario, the protocol knobs, the classifier, and
the shard policy — without saying *how* or *where*.  The same spec can be

* executed inline (:func:`repro.serve.engine.execute_spec`), which is
  exactly what the legacy :func:`repro.run_sap_session` /
  :func:`repro.run_stream_session` wrappers do today;
* submitted to a :class:`repro.serve.engine.MiningService`, which runs
  many specs concurrently over one shared worker pool; or
* written down in a JSON workload file (``repro serve --workload``),
  round-tripping through :meth:`SessionSpec.from_mapping` /
  :meth:`SessionSpec.to_mapping`.

Multi-tenancy is part of the description: every spec names a ``tenant``,
and :meth:`SessionSpec.resolved_seed` namespaces the seed per tenant —
two tenants submitting byte-identical workloads draw disjoint randomness,
mirroring the per-trust-level perturbation copies of the multi-level-trust
line of work.  The ``"default"`` tenant resolves to the raw seed, which is
what keeps the legacy wrappers bit-identical to the pre-redesign API.

Every field is validated at construction with a friendly
:class:`ValueError` (no deep tracebacks at run time), and specs are frozen
— a submitted workload cannot be mutated behind the engine's back.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, fields, replace
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple, Union

from ..datasets.partition import PartitionScheme
from ..obs import Telemetry
from ..datasets.schema import Dataset
from ..parties.config import CLASSIFIER_NAMES, ClassifierSpec, SAPConfig
from ..sharding.backends import BACKENDS
from ..sharding.plan import SHARD_STRATEGIES
from ..streaming.drift import DETECTOR_KINDS
from ..streaming.ingest import LATE_POLICIES
from ..streaming.normalizer import NORMALIZER_KINDS
from ..streaming.online_miner import ONLINE_CLASSIFIERS
from ..streaming.sources import STREAM_KINDS, StreamSource, make_stream
from ..streaming.stream_session import StreamConfig, TrustChange
from ..streaming.windows import WINDOW_KINDS

__all__ = ["SESSION_KINDS", "SessionSpec"]

#: workload kinds a spec can describe
SESSION_KINDS = ("batch", "stream")

#: the tenant whose seeds are *not* namespaced (legacy-compatible)
DEFAULT_TENANT = "default"


def _require_positive(name: str, value: int, minimum: int = 1) -> None:
    """Friendly shared check for integer knobs."""
    if not isinstance(value, int) or isinstance(value, bool) or value < minimum:
        raise ValueError(f"{name} must be an integer >= {minimum}, got {value!r}")


def _require_choice(name: str, value: str, choices: Sequence[str]) -> None:
    """Friendly shared check for name-keyed knobs."""
    if value not in choices:
        raise ValueError(
            f"unknown {name} {value!r}; available: {', '.join(choices)}"
        )


@dataclass(frozen=True)
class SessionSpec:
    """One declarative mining-session description (batch or stream).

    Attributes
    ----------
    kind:
        ``"batch"`` (one-shot Space Adaptation Protocol run) or
        ``"stream"`` (windowed online run with drift re-adaptation).
    dataset:
        Registry dataset name (see :data:`repro.datasets.DATASET_NAMES`),
        or an in-memory :class:`~repro.datasets.schema.Dataset` when the
        spec is built programmatically by the legacy wrappers.
    tenant:
        Namespace for seeds and service budgets; ``"default"`` keeps the
        raw seed (legacy behaviour).
    label:
        Optional display name for reports; defaults to
        ``"<tenant>/<kind>:<dataset>"``.
    k / noise_sigma / classifier / classifier_params / seed:
        The protocol knobs shared by both kinds.  ``classifier`` is a
        batch classifier name for ``kind="batch"`` and an online one for
        ``kind="stream"``; ``None`` picks the kind's default (``"knn"``
        for both).  ``k=None`` picks the kind's default (5 batch, 3
        stream).
    compute_privacy:
        Run the privacy/attack-suite evaluation.  ``None`` picks the
        kind's legacy default — ``False`` for batch
        (:func:`~repro.core.session.run_sap_session`'s default) and
        ``True`` for stream (:class:`~repro.streaming.StreamConfig`'s
        default).
    scheme / test_fraction / compute_privacy / optimize_locally /
    optimizer_rounds / optimizer_local_steps / target_candidates /
    round_timeout:
        Batch-only knobs, mirroring :class:`repro.parties.SAPConfig`.
    stream / windows / window_size / window_kind / window_step /
    normalizer / detector / detector_params / readapt_cooldown /
    trust_changes / n_records / watermark_delay / late_policy / skew:
        Stream-only knobs, mirroring :class:`repro.streaming.StreamConfig`
        plus the synthetic source scenario (``stream``) and length
        (``n_records``; defaults to ``windows x window_size``).
        ``watermark_delay`` / ``late_policy`` / ``skew`` are the
        event-time ingestion knobs: watermark lag before a window seals,
        what to do with records that arrive after their window sealed,
        and the bounded out-of-order transport simulation.
    shards / shard_backend / shard_plan:
        Shard policy.  ``shards`` is the *logical* shard count (affects
        rounds and routing, never results); ``shard_backend`` is used when
        the spec runs standalone — a :class:`~repro.serve.engine.MiningService`
        substitutes its own shared pool, which is sound because results
        are backend-independent by construction.
    overlap:
        Stream-only: pipeline rounds over the shard backend (dispatch
        round ``N+1``'s transforms while round ``N``'s predictions are in
        flight).  ``None`` — the default — enables overlap whenever the
        executing backend can actually overlap work (thread/process
        pools, including a serving engine's shared pool); ``False``
        forces serial dispatch.  ``True`` requests it but is ignored on
        an inline/serial backend, whose dispatches complete at submit
        time anyway.  Never affects results, only scheduling.
    telemetry:
        Optional :class:`repro.obs.Telemetry` bundle carried into
        execution (spans + metrics).  Excluded from equality/repr and
        from :meth:`to_mapping` — telemetry is a runtime attachment, not
        part of the workload description — and it never affects results.
    """

    kind: str = "batch"
    dataset: Union[str, Dataset] = "iris"
    tenant: str = DEFAULT_TENANT
    label: Optional[str] = None
    seed: int = 0
    k: Optional[int] = None
    noise_sigma: float = 0.05
    classifier: Optional[str] = None
    classifier_params: Tuple[Tuple[str, Any], ...] = ()
    compute_privacy: Optional[bool] = None
    # batch-only
    scheme: str = "uniform"
    test_fraction: float = 0.3
    optimize_locally: bool = False
    optimizer_rounds: int = 8
    optimizer_local_steps: int = 5
    target_candidates: int = 1
    round_timeout: Optional[float] = None
    # stream-only
    stream: str = "stationary"
    windows: int = 8
    window_size: int = 64
    window_kind: str = "tumbling"
    window_step: Optional[int] = None
    normalizer: str = "minmax"
    detector: str = "meanvar"
    detector_params: Tuple[Tuple[str, Any], ...] = ()
    readapt_cooldown: int = 2
    trust_changes: Tuple[TrustChange, ...] = ()
    n_records: Optional[int] = None
    watermark_delay: int = 0
    late_policy: str = "drop"
    skew: int = 0
    # shard policy
    shards: int = 1
    shard_backend: str = "serial"
    shard_plan: str = "round_robin"
    overlap: Optional[bool] = None
    telemetry: Optional[Telemetry] = field(
        default=None, compare=False, repr=False
    )

    def __post_init__(self) -> None:
        _require_choice("session kind", self.kind, SESSION_KINDS)
        if not isinstance(self.tenant, str) or not self.tenant:
            raise ValueError(f"tenant must be a non-empty string, got {self.tenant!r}")
        if self.k is not None:
            _require_positive("k", self.k, minimum=2)
        if self.noise_sigma < 0:
            raise ValueError("noise_sigma must be >= 0")
        _require_choice("partition scheme", self.scheme, [s.value for s in PartitionScheme])
        if not 0.0 < self.test_fraction < 1.0:
            raise ValueError(
                f"test_fraction must be in (0, 1), got {self.test_fraction!r}"
            )
        _require_positive("optimizer_rounds", self.optimizer_rounds)
        _require_positive("optimizer_local_steps", self.optimizer_local_steps)
        _require_positive("target_candidates", self.target_candidates)
        if self.round_timeout is not None and self.round_timeout <= 0:
            raise ValueError("round_timeout must be positive when set")
        _require_choice("stream kind", self.stream, STREAM_KINDS)
        _require_positive("windows", self.windows)
        _require_positive("window_size", self.window_size, minimum=2)
        _require_choice("window kind", self.window_kind, WINDOW_KINDS)
        if self.window_step is not None:
            _require_positive("window_step", self.window_step)
        _require_choice("normalizer", self.normalizer, NORMALIZER_KINDS)
        _require_choice("drift detector", self.detector, DETECTOR_KINDS)
        _require_positive("readapt_cooldown", self.readapt_cooldown, minimum=0)
        if self.n_records is not None:
            _require_positive("n_records", self.n_records)
        _require_positive("watermark_delay", self.watermark_delay, minimum=0)
        _require_choice("late policy", self.late_policy, LATE_POLICIES)
        _require_positive("skew", self.skew, minimum=0)
        _require_positive("shards", self.shards)
        _require_choice("shard backend", self.shard_backend, BACKENDS)
        _require_choice("shard plan", self.shard_plan, SHARD_STRATEGIES)
        if self.overlap is not None and not isinstance(self.overlap, bool):
            raise ValueError(
                f"overlap must be true, false, or null (auto), got "
                f"{self.overlap!r}"
            )
        if self.telemetry is not None and not isinstance(
            self.telemetry, Telemetry
        ):
            raise ValueError(
                f"telemetry must be a repro.obs.Telemetry bundle or None, "
                f"got {type(self.telemetry).__name__}"
            )
        names = CLASSIFIER_NAMES if self.kind == "batch" else ONLINE_CLASSIFIERS
        if self.classifier is not None:
            _require_choice(f"{self.kind} classifier", self.classifier, names)
        # Normalize freely-given mappings/pair-sequences to hashable tuples.
        for name in ("classifier_params", "detector_params"):
            value = getattr(self, name)
            pairs = value.items() if isinstance(value, Mapping) else value
            object.__setattr__(self, name, tuple(tuple(p) for p in pairs))
        changes = []
        for change in self.trust_changes:
            if isinstance(change, TrustChange):
                changes.append(change)
            elif isinstance(change, Mapping):
                changes.append(TrustChange(**change))
            else:
                window, party, trust = change
                changes.append(
                    TrustChange(window=int(window), party=int(party), trust=float(trust))
                )
        object.__setattr__(self, "trust_changes", tuple(changes))

    # ------------------------------------------------------------------
    # derived views
    # ------------------------------------------------------------------
    @property
    def dataset_name(self) -> str:
        """Name of the dataset, whether given by name or as an object."""
        return self.dataset if isinstance(self.dataset, str) else self.dataset.name

    @property
    def display_label(self) -> str:
        """Report label: the explicit one, or ``tenant/kind:dataset``."""
        if self.label:
            return self.label
        return f"{self.tenant}/{self.kind}:{self.dataset_name}"

    @property
    def effective_k(self) -> int:
        """Provider count with the kind's default applied (5 batch, 3 stream)."""
        if self.k is not None:
            return self.k
        return 5 if self.kind == "batch" else 3

    @property
    def effective_classifier(self) -> str:
        """Classifier name with the kind's default applied (``"knn"``)."""
        return self.classifier if self.classifier is not None else "knn"

    @property
    def effective_privacy(self) -> bool:
        """Privacy-evaluation flag with the kind's legacy default applied."""
        if self.compute_privacy is not None:
            return self.compute_privacy
        return self.kind == "stream"

    @property
    def effective_records(self) -> int:
        """Stream length: explicit ``n_records`` or ``windows x window_size``."""
        if self.n_records is not None:
            return self.n_records
        return self.windows * self.window_size

    def resolved_seed(self) -> int:
        """The per-tenant namespaced master seed.

        The ``"default"`` tenant keeps the raw seed, so specs built by the
        legacy wrappers reproduce the pre-redesign randomness exactly.
        Every other tenant folds its name into a SHA-256 digest with the
        seed, giving each tenant an independent, deterministic seed stream
        over the same workload.
        """
        if self.tenant == DEFAULT_TENANT:
            return self.seed
        digest = hashlib.sha256(
            f"repro.serve/{self.tenant}\x00{self.seed}".encode()
        ).digest()
        return int.from_bytes(digest[:8], "big") % (2**63)

    def for_tenant(self, tenant: str) -> "SessionSpec":
        """A copy of this spec namespaced under another tenant."""
        return replace(self, tenant=tenant)

    # ------------------------------------------------------------------
    # conversion to the execution-layer configs
    # ------------------------------------------------------------------
    def to_sap_config(self) -> SAPConfig:
        """The batch :class:`~repro.parties.SAPConfig` this spec describes."""
        if self.kind != "batch":
            raise ValueError(f"spec {self.display_label!r} is not a batch session")
        return SAPConfig(
            k=self.effective_k,
            noise_sigma=self.noise_sigma,
            classifier=ClassifierSpec(
                self.effective_classifier, dict(self.classifier_params)
            ),
            test_fraction=self.test_fraction,
            optimize_locally=self.optimize_locally,
            optimizer_rounds=self.optimizer_rounds,
            optimizer_local_steps=self.optimizer_local_steps,
            target_candidates=self.target_candidates,
            round_timeout=self.round_timeout,
            shards=self.shards,
            shard_backend=self.shard_backend,
            seed=self.resolved_seed(),
        )

    def to_stream_config(self) -> StreamConfig:
        """The :class:`~repro.streaming.StreamConfig` this spec describes."""
        if self.kind != "stream":
            raise ValueError(f"spec {self.display_label!r} is not a stream session")
        return StreamConfig(
            k=self.effective_k,
            window_size=self.window_size,
            window_kind=self.window_kind,
            window_step=self.window_step,
            noise_sigma=self.noise_sigma,
            classifier=self.effective_classifier,
            classifier_params=self.classifier_params,
            normalizer=self.normalizer,
            detector=self.detector,
            detector_params=self.detector_params,
            readapt_cooldown=self.readapt_cooldown,
            trust_changes=self.trust_changes,
            compute_privacy=self.effective_privacy,
            shards=self.shards,
            shard_backend=self.shard_backend,
            shard_plan=self.shard_plan,
            overlap=self.overlap,
            watermark_delay=self.watermark_delay,
            late_policy=self.late_policy,
            skew=self.skew,
            seed=self.resolved_seed(),
            telemetry=self.telemetry,
        )

    def make_source(self) -> StreamSource:
        """Build the stream source this spec describes (stream kind only)."""
        if self.kind != "stream":
            raise ValueError(f"spec {self.display_label!r} is not a stream session")
        return make_stream(
            self.dataset,
            kind=self.stream,
            n_records=self.effective_records,
            seed=self.resolved_seed() % (2**32),
        )

    # ------------------------------------------------------------------
    # construction from the legacy configs (the thin-wrapper path)
    # ------------------------------------------------------------------
    @classmethod
    def from_batch(
        cls,
        dataset: Union[str, Dataset],
        config: SAPConfig,
        scheme: Union[PartitionScheme, str] = PartitionScheme.UNIFORM,
        compute_privacy: bool = False,
        tenant: str = DEFAULT_TENANT,
    ) -> "SessionSpec":
        """Lift a legacy ``(dataset, SAPConfig)`` pair into a spec."""
        scheme = PartitionScheme(scheme) if isinstance(scheme, str) else scheme
        return cls(
            kind="batch",
            dataset=dataset,
            tenant=tenant,
            seed=config.seed,
            k=config.k,
            noise_sigma=config.noise_sigma,
            classifier=config.classifier.name,
            classifier_params=tuple(config.classifier.params.items()),
            compute_privacy=compute_privacy,
            scheme=scheme.value,
            test_fraction=config.test_fraction,
            optimize_locally=config.optimize_locally,
            optimizer_rounds=config.optimizer_rounds,
            optimizer_local_steps=config.optimizer_local_steps,
            target_candidates=config.target_candidates,
            round_timeout=config.round_timeout,
            shards=config.shards,
            shard_backend=config.shard_backend,
        )

    @classmethod
    def from_stream(
        cls,
        source: StreamSource,
        config: StreamConfig,
        tenant: str = DEFAULT_TENANT,
    ) -> "SessionSpec":
        """Lift a legacy ``(source, StreamConfig)`` pair into a spec.

        The session driver only requires ``name``/``kind``/``dimension``
        and iteration from a source, so duck-typed sources remain
        accepted: pool/record-count/scenario fields are read when present
        and fall back to descriptive defaults otherwise (the source object
        itself — not the spec — is what gets executed).
        """
        pool = getattr(source, "pool", None)
        kind = getattr(source, "kind", "stationary")
        return cls(
            kind="stream",
            dataset=pool if pool is not None else getattr(source, "name", "stream"),
            tenant=tenant,
            seed=config.seed,
            k=config.k,
            noise_sigma=config.noise_sigma,
            classifier=config.classifier,
            classifier_params=config.classifier_params,
            compute_privacy=config.compute_privacy,
            stream=kind if kind in STREAM_KINDS else "stationary",
            n_records=getattr(source, "n_records", None),
            window_size=config.window_size,
            window_kind=config.window_kind,
            window_step=config.window_step,
            normalizer=config.normalizer,
            detector=config.detector,
            detector_params=config.detector_params,
            readapt_cooldown=config.readapt_cooldown,
            trust_changes=config.trust_changes,
            shards=config.shards,
            shard_backend=config.shard_backend,
            shard_plan=config.shard_plan,
            overlap=config.overlap,
            watermark_delay=config.watermark_delay,
            late_policy=config.late_policy,
            skew=config.skew,
            telemetry=config.telemetry,
        )

    # ------------------------------------------------------------------
    # JSON workload round trip
    # ------------------------------------------------------------------
    @classmethod
    def from_mapping(cls, mapping: Mapping[str, Any]) -> "SessionSpec":
        """Build a spec from a plain mapping (one workload-file entry).

        Unknown keys raise a friendly :class:`ValueError` naming the key,
        so a typo in a workload file fails loudly at load time rather than
        silently running defaults.
        """
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(mapping) - known)
        if unknown:
            raise ValueError(
                f"unknown session spec field(s): {', '.join(unknown)}; "
                f"available: {', '.join(sorted(known))}"
            )
        # Mappings in *_params fields are normalized by __post_init__.
        return cls(**dict(mapping))

    def to_mapping(self) -> Dict[str, Any]:
        """The JSON-friendly inverse of :meth:`from_mapping`."""
        payload: Dict[str, Any] = {
            "kind": self.kind,
            "dataset": self.dataset_name,
            "tenant": self.tenant,
            "seed": self.seed,
            "k": self.effective_k,
            "noise_sigma": self.noise_sigma,
            "classifier": self.effective_classifier,
            "compute_privacy": self.effective_privacy,
            "shards": self.shards,
            "shard_backend": self.shard_backend,
            "shard_plan": self.shard_plan,
        }
        if self.label:
            payload["label"] = self.label
        if self.classifier_params:
            payload["classifier_params"] = dict(self.classifier_params)
        if self.kind == "batch":
            payload["scheme"] = self.scheme
            payload["test_fraction"] = self.test_fraction
            payload["optimize_locally"] = self.optimize_locally
            payload["optimizer_rounds"] = self.optimizer_rounds
            payload["optimizer_local_steps"] = self.optimizer_local_steps
            payload["target_candidates"] = self.target_candidates
            if self.round_timeout is not None:
                payload["round_timeout"] = self.round_timeout
        else:
            payload.update(
                stream=self.stream,
                windows=self.windows,
                window_size=self.window_size,
                window_kind=self.window_kind,
                normalizer=self.normalizer,
                detector=self.detector,
                readapt_cooldown=self.readapt_cooldown,
                n_records=self.effective_records,
                overlap=self.overlap,
                watermark_delay=self.watermark_delay,
                late_policy=self.late_policy,
                skew=self.skew,
            )
            if self.window_step is not None:
                payload["window_step"] = self.window_step
            if self.detector_params:
                payload["detector_params"] = dict(self.detector_params)
            if self.trust_changes:
                payload["trust_changes"] = [
                    {"window": c.window, "party": c.party, "trust": c.trust}
                    for c in self.trust_changes
                ]
        return payload
