"""From-scratch classifier substrate (KNN, SVM/SMO, linear baselines).

These learners are the "data mining service" side of the paper: they train
on perturbed data in the unified target space and — being distance or
inner-product based — are invariant to the rotation + translation part of a
geometric perturbation.
"""

from .base import Classifier, validate_Xy
from .bayes import GaussianNaiveBayes
from .kernels import (
    linear_kernel,
    pairwise_sq_distances,
    polynomial_kernel,
    rbf_kernel,
    resolve_gamma,
)
from .knn import KNNClassifier
from .lda import LinearDiscriminantAnalysis
from .linear import AveragedPerceptron, LinearSVMClassifier, PegasosSVM
from .metrics import (
    accuracy_deviation,
    accuracy_score,
    confusion_matrix,
    cross_val_accuracy,
    holdout_accuracy,
    stratified_kfold_indices,
)
from .multiclass import OneVsOneClassifier
from .svm import BinarySVM, SVMClassifier
from .tree import DecisionTreeClassifier

__all__ = [
    "Classifier",
    "validate_Xy",
    "KNNClassifier",
    "GaussianNaiveBayes",
    "LinearDiscriminantAnalysis",
    "DecisionTreeClassifier",
    "BinarySVM",
    "SVMClassifier",
    "OneVsOneClassifier",
    "AveragedPerceptron",
    "PegasosSVM",
    "LinearSVMClassifier",
    "linear_kernel",
    "polynomial_kernel",
    "rbf_kernel",
    "resolve_gamma",
    "pairwise_sq_distances",
    "accuracy_score",
    "accuracy_deviation",
    "confusion_matrix",
    "cross_val_accuracy",
    "holdout_accuracy",
    "stratified_kfold_indices",
]
