"""Kernel functions for the SVM learners.

The rotation-invariance claim at the heart of the paper holds exactly for
kernels that depend only on Euclidean geometry: the RBF kernel depends on
pairwise distances and the linear/polynomial kernels on inner products,
both of which an orthogonal transform preserves.  (Translation additionally
preserves distances, hence RBF; inner products shift, which is why the
paper's analysis centres on distance-based learners like KNN and SVM-RBF.)
"""

from __future__ import annotations

from typing import Callable, Union

import numpy as np

__all__ = [
    "Kernel",
    "linear_kernel",
    "polynomial_kernel",
    "rbf_kernel",
    "resolve_gamma",
    "pairwise_sq_distances",
]

Kernel = Callable[[np.ndarray, np.ndarray], np.ndarray]


def pairwise_sq_distances(X: np.ndarray, Z: np.ndarray) -> np.ndarray:
    """Squared Euclidean distances between rows of ``X`` and rows of ``Z``.

    Uses the expansion ``|x - z|^2 = |x|^2 + |z|^2 - 2 x.z`` and clamps tiny
    negatives produced by floating-point cancellation.
    """
    x_sq = np.sum(X * X, axis=1)[:, None]
    z_sq = np.sum(Z * Z, axis=1)[None, :]
    sq = x_sq + z_sq - 2.0 * (X @ Z.T)
    np.maximum(sq, 0.0, out=sq)
    return sq


def resolve_gamma(gamma: Union[float, str], X: np.ndarray) -> float:
    """Resolve an RBF bandwidth specification against training data.

    ``"scale"`` is ``1 / (d * mean_j var(X_j))`` — the mean per-column
    variance (trace of the covariance over ``d``) rather than the grand
    variance some libraries use, because the trace is *invariant under
    rotation and translation*: the miner resolves the same bandwidth on
    perturbed data as it would have on the original, which keeps the
    SVM-RBF pipeline exactly rotation-invariant end to end.  ``"auto"`` is
    ``1 / d``; a float passes through.
    """
    if isinstance(gamma, str):
        d = X.shape[1]
        if gamma == "scale":
            variance = float(X.var(axis=0).mean())
            return 1.0 / (d * variance) if variance > 0 else 1.0 / d
        if gamma == "auto":
            return 1.0 / d
        raise ValueError(f"unknown gamma spec {gamma!r}")
    if gamma <= 0:
        raise ValueError("gamma must be positive")
    return float(gamma)


def linear_kernel(X: np.ndarray, Z: np.ndarray) -> np.ndarray:
    """Plain inner-product kernel."""
    return X @ Z.T


def polynomial_kernel(
    X: np.ndarray, Z: np.ndarray, degree: int = 3, coef0: float = 1.0
) -> np.ndarray:
    """Polynomial kernel ``(x.z + coef0)^degree``."""
    if degree < 1:
        raise ValueError("degree must be >= 1")
    return (X @ Z.T + coef0) ** degree


def rbf_kernel(X: np.ndarray, Z: np.ndarray, gamma: float = 1.0) -> np.ndarray:
    """Gaussian radial basis function kernel ``exp(-gamma |x - z|^2)``."""
    if gamma <= 0:
        raise ValueError("gamma must be positive")
    return np.exp(-gamma * pairwise_sq_distances(X, Z))
