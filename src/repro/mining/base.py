"""Classifier interface shared by every learner in :mod:`repro.mining`.

The geometric-perturbation argument in the paper is about a *family* of
classifiers (distance/inner-product based learners), so the library keeps
them behind one small contract: ``fit(X, y) -> self`` and
``predict(X) -> labels``.  Everything trains on row-major ``(n, d)``
matrices.
"""

from __future__ import annotations

import abc
from typing import Optional, Tuple

import numpy as np

__all__ = ["Classifier", "check_fitted", "validate_Xy"]


def validate_Xy(X: np.ndarray, y: Optional[np.ndarray] = None) -> Tuple[np.ndarray, Optional[np.ndarray]]:
    """Coerce and sanity-check a training or prediction matrix.

    Returns float64 ``X`` (2-D) and, when given, ``y`` as a 1-D array of the
    same length.  Raises ``ValueError`` on shape mismatch or non-finite
    entries — perturbed data with NaNs means an upstream bug and must not
    silently propagate into a model.
    """
    X = np.asarray(X, dtype=float)
    if X.ndim == 1:
        X = X.reshape(1, -1)
    if X.ndim != 2:
        raise ValueError(f"X must be 2-D, got shape {X.shape}")
    if not np.isfinite(X).all():
        raise ValueError("X contains non-finite values")
    if y is None:
        return X, None
    y = np.asarray(y)
    if y.shape != (X.shape[0],):
        raise ValueError(f"y has shape {y.shape}, expected ({X.shape[0]},)")
    return X, y


def check_fitted(classifier: "Classifier") -> None:
    """Raise if ``classifier`` has not been fitted yet."""
    if not getattr(classifier, "_fitted", False):
        raise RuntimeError(
            f"{type(classifier).__name__} must be fitted before predicting"
        )


class Classifier(abc.ABC):
    """Abstract base class for all classifiers.

    Subclasses set ``self._fitted = True`` at the end of :meth:`fit` and may
    expose extra introspection attributes (support vectors, weights, ...).
    """

    _fitted: bool = False

    @abc.abstractmethod
    def fit(self, X: np.ndarray, y: np.ndarray) -> "Classifier":
        """Train on rows ``X`` with labels ``y``; returns ``self``."""

    @abc.abstractmethod
    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict a label for each row of ``X``."""

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Accuracy on ``(X, y)`` (fraction of exact label matches)."""
        X, y = validate_Xy(X, y)
        predictions = self.predict(X)
        return float(np.mean(predictions == y))

    @property
    def classes_(self) -> np.ndarray:
        """Sorted class labels seen during :meth:`fit`."""
        check_fitted(self)
        return self._classes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        status = "fitted" if self._fitted else "unfitted"
        return f"<{type(self).__name__} {status}>"
