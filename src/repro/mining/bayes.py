"""Gaussian naive Bayes — a deliberately *non*-invariant control learner.

The ICDM'05 companion paper classifies learners by whether geometric
perturbation preserves their models.  Naive Bayes conditions on individual
columns, so a rotation — which mixes columns — changes its model: it is one
of the classifiers the paper says geometric perturbation is *not* suitable
for.  The library ships it as a negative control: the invariance benchmark
shows KNN/SVM agreeing exactly across perturbation while NB (and the
decision tree) drift.
"""

from __future__ import annotations

import numpy as np

from .base import Classifier, check_fitted, validate_Xy

__all__ = ["GaussianNaiveBayes"]


class GaussianNaiveBayes(Classifier):
    """Per-column Gaussian class-conditional model with shared priors.

    Parameters
    ----------
    var_smoothing:
        Fraction of the largest per-column variance added to every variance
        for numerical stability (handles constant columns, e.g. binary
        features that are pure within a class).
    """

    def __init__(self, var_smoothing: float = 1e-9) -> None:
        if var_smoothing < 0:
            raise ValueError("var_smoothing must be >= 0")
        self.var_smoothing = var_smoothing

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GaussianNaiveBayes":
        X, y = validate_Xy(X, y)
        self._classes, y_index = np.unique(y, return_inverse=True)
        n_classes = len(self._classes)
        n, d = X.shape

        self._theta = np.zeros((n_classes, d))
        self._var = np.zeros((n_classes, d))
        self._log_prior = np.zeros(n_classes)
        epsilon = self.var_smoothing * float(X.var(axis=0).max() or 1.0)
        for c in range(n_classes):
            members = X[y_index == c]
            self._theta[c] = members.mean(axis=0)
            self._var[c] = members.var(axis=0) + epsilon + 1e-12
            self._log_prior[c] = np.log(len(members) / n)
        self._fitted = True
        return self

    def predict_log_proba(self, X: np.ndarray) -> np.ndarray:
        """Unnormalized per-class log posterior for each row."""
        check_fitted(self)
        X, _ = validate_Xy(X)
        n_classes = self._theta.shape[0]
        scores = np.empty((X.shape[0], n_classes))
        for c in range(n_classes):
            log_likelihood = -0.5 * (
                np.log(2.0 * np.pi * self._var[c])
                + (X - self._theta[c]) ** 2 / self._var[c]
            ).sum(axis=1)
            scores[:, c] = self._log_prior[c] + log_likelihood
        return scores

    def predict(self, X: np.ndarray) -> np.ndarray:
        check_fitted(self)
        scores = self.predict_log_proba(X)
        return self._classes[np.argmax(scores, axis=1)]
