"""K-nearest-neighbour classifier.

KNN is the paper's first representative learner (Figure 5): it classifies
by Euclidean distance alone, so it is *exactly* invariant under the
rotation + translation part of a geometric perturbation and degrades only
with the additive-noise component.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .base import Classifier, check_fitted, validate_Xy
from .kernels import pairwise_sq_distances

__all__ = ["KNNClassifier"]


class KNNClassifier(Classifier):
    """Majority-vote K-nearest-neighbour classifier.

    Parameters
    ----------
    n_neighbors:
        Number of neighbours consulted (the paper's experiments use small
        odd values; 5 is the default here).
    weights:
        ``"uniform"`` for plain majority vote or ``"distance"`` for
        inverse-distance weighting (a standard refinement; used by the
        ablation benchmarks).
    batch_size:
        Prediction computes a distance block of ``batch_size x n_train`` at
        a time to bound memory on larger tables.
    """

    def __init__(
        self,
        n_neighbors: int = 5,
        weights: str = "uniform",
        batch_size: int = 512,
    ) -> None:
        if n_neighbors < 1:
            raise ValueError("n_neighbors must be >= 1")
        if weights not in ("uniform", "distance"):
            raise ValueError("weights must be 'uniform' or 'distance'")
        self.n_neighbors = n_neighbors
        self.weights = weights
        self.batch_size = batch_size
        self._X: Optional[np.ndarray] = None
        self._y_index: Optional[np.ndarray] = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "KNNClassifier":
        X, y = validate_Xy(X, y)
        self._classes, y_index = np.unique(y, return_inverse=True)
        self._X = X.copy()
        self._y_index = y_index
        self._fitted = True
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        check_fitted(self)
        X, _ = validate_Xy(X)
        k = min(self.n_neighbors, self._X.shape[0])
        n_classes = len(self._classes)
        out = np.empty(X.shape[0], dtype=self._classes.dtype)

        for start in range(0, X.shape[0], self.batch_size):
            block = X[start : start + self.batch_size]
            sq = pairwise_sq_distances(block, self._X)
            neighbour_idx = np.argpartition(sq, kth=k - 1, axis=1)[:, :k]
            rows = np.arange(block.shape[0])[:, None]
            neighbour_sq = sq[rows, neighbour_idx]
            neighbour_labels = self._y_index[neighbour_idx]

            if self.weights == "uniform":
                vote_weights = np.ones_like(neighbour_sq)
            else:
                vote_weights = 1.0 / (np.sqrt(neighbour_sq) + 1e-12)

            votes = np.zeros((block.shape[0], n_classes))
            for c in range(n_classes):
                votes[:, c] = np.where(neighbour_labels == c, vote_weights, 0.0).sum(
                    axis=1
                )
            # Ties break toward the smaller class label (argmax is stable),
            # which keeps predictions deterministic run to run.
            out[start : start + block.shape[0]] = self._classes[
                np.argmax(votes, axis=1)
            ]
        return out
