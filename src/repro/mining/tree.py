"""CART decision tree — the second non-invariant control learner.

Axis-parallel splits are the textbook example of a model geometric
perturbation destroys: a rotation turns one-column thresholds into oblique
boundaries the tree can only approximate with many splits.  The ICDM'05
companion paper explicitly excludes decision trees from the
perturbation-suitable family; this implementation exists so the invariance
benchmark can *show* that exclusion rather than assert it.

The implementation is a standard greedy CART with Gini impurity,
midpoint thresholds, and depth/size stopping rules — deterministic given
its inputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .base import Classifier, check_fitted, validate_Xy

__all__ = ["DecisionTreeClassifier"]


@dataclass
class _Node:
    """One tree node; leaves carry a class index, internal nodes a split."""

    prediction: int
    feature: int = -1
    threshold: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None


def _gini(counts: np.ndarray) -> float:
    total = counts.sum()
    if total == 0:
        return 0.0
    fractions = counts / total
    return float(1.0 - np.sum(fractions * fractions))


class DecisionTreeClassifier(Classifier):
    """Greedy CART classifier.

    Parameters
    ----------
    max_depth:
        Maximum tree depth (root at depth 0).
    min_samples_split:
        Nodes smaller than this become leaves.
    min_impurity_decrease:
        Minimum Gini gain for a split to be kept.
    """

    def __init__(
        self,
        max_depth: int = 8,
        min_samples_split: int = 4,
        min_impurity_decrease: float = 1e-7,
    ) -> None:
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        if min_samples_split < 2:
            raise ValueError("min_samples_split must be >= 2")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_impurity_decrease = min_impurity_decrease

    # ------------------------------------------------------------------
    def fit(self, X: np.ndarray, y: np.ndarray) -> "DecisionTreeClassifier":
        X, y = validate_Xy(X, y)
        self._classes, y_index = np.unique(y, return_inverse=True)
        self._root = self._build(X, y_index, depth=0)
        self.n_nodes_ = self._count(self._root)
        self._fitted = True
        return self

    def _build(self, X: np.ndarray, y_index: np.ndarray, depth: int) -> _Node:
        counts = np.bincount(y_index, minlength=len(self._classes))
        prediction = int(np.argmax(counts))
        node = _Node(prediction=prediction)
        if (
            depth >= self.max_depth
            or len(y_index) < self.min_samples_split
            or counts.max() == len(y_index)
        ):
            return node

        best_gain = self.min_impurity_decrease
        best: Optional[tuple] = None
        parent_impurity = _gini(counts)
        n = len(y_index)
        for feature in range(X.shape[1]):
            order = np.argsort(X[:, feature], kind="stable")
            values = X[order, feature]
            labels = y_index[order]
            left_counts = np.zeros(len(self._classes))
            right_counts = counts.astype(float).copy()
            for i in range(n - 1):
                left_counts[labels[i]] += 1
                right_counts[labels[i]] -= 1
                if values[i] == values[i + 1]:
                    continue
                n_left = i + 1
                n_right = n - n_left
                gain = parent_impurity - (
                    n_left / n * _gini(left_counts)
                    + n_right / n * _gini(right_counts)
                )
                if gain > best_gain:
                    best_gain = gain
                    best = (feature, (values[i] + values[i + 1]) / 2.0)

        if best is None:
            return node
        feature, threshold = best
        mask = X[:, feature] <= threshold
        node.feature = feature
        node.threshold = float(threshold)
        node.left = self._build(X[mask], y_index[mask], depth + 1)
        node.right = self._build(X[~mask], y_index[~mask], depth + 1)
        return node

    # ------------------------------------------------------------------
    def predict(self, X: np.ndarray) -> np.ndarray:
        check_fitted(self)
        X, _ = validate_Xy(X)
        out = np.empty(X.shape[0], dtype=int)
        for i, row in enumerate(X):
            node = self._root
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right
            out[i] = node.prediction
        return self._classes[out]

    # ------------------------------------------------------------------
    def _count(self, node: _Node) -> int:
        if node.is_leaf:
            return 1
        return 1 + self._count(node.left) + self._count(node.right)

    @property
    def depth_(self) -> int:
        """Realized depth of the fitted tree."""
        check_fitted(self)

        def walk(node: _Node) -> int:
            if node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        return walk(self._root)
