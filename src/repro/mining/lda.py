"""Linear discriminant analysis — invariant to rotation + translation.

LDA classifies by Mahalanobis-style distances to class means under a
shared covariance.  An orthogonal transform rotates the means and the
covariance together, so the discriminant scores — hence the predictions —
are unchanged: LDA sits with KNN and SVM on the *invariant* side of the
ICDM'05 classification (up to the regularization term, which is isotropic
and therefore also invariant).
"""

from __future__ import annotations

import numpy as np

from .base import Classifier, check_fitted, validate_Xy

__all__ = ["LinearDiscriminantAnalysis"]


class LinearDiscriminantAnalysis(Classifier):
    """Multiclass LDA with a pooled, regularized covariance estimate.

    Parameters
    ----------
    shrinkage:
        Weight of the isotropic regularizer: the pooled covariance is
        ``(1 - shrinkage) * S + shrinkage * mean(diag(S)) * I``.  Keeps the
        estimate invertible for small or collinear tables (e.g. binary
        Votes columns within one party's slice).
    """

    def __init__(self, shrinkage: float = 0.1) -> None:
        if not 0.0 <= shrinkage <= 1.0:
            raise ValueError("shrinkage must be in [0, 1]")
        self.shrinkage = shrinkage

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LinearDiscriminantAnalysis":
        X, y = validate_Xy(X, y)
        self._classes, y_index = np.unique(y, return_inverse=True)
        n_classes = len(self._classes)
        n, d = X.shape

        self._means = np.zeros((n_classes, d))
        self._log_prior = np.zeros(n_classes)
        pooled = np.zeros((d, d))
        for c in range(n_classes):
            members = X[y_index == c]
            self._means[c] = members.mean(axis=0)
            centred = members - self._means[c]
            pooled += centred.T @ centred
            self._log_prior[c] = np.log(len(members) / n)
        pooled /= max(n - n_classes, 1)

        iso = np.trace(pooled) / d if d else 1.0
        covariance = (1 - self.shrinkage) * pooled + self.shrinkage * iso * np.eye(d)
        # Add a floor in case every class was a single point.
        covariance += 1e-10 * np.eye(d)
        self._precision = np.linalg.inv(covariance)
        self._fitted = True
        return self

    def decision_scores(self, X: np.ndarray) -> np.ndarray:
        """Per-class linear discriminant scores for each row."""
        check_fitted(self)
        X, _ = validate_Xy(X)
        # score_c(x) = x' P mu_c - mu_c' P mu_c / 2 + log prior_c
        projections = X @ self._precision @ self._means.T
        offsets = 0.5 * np.einsum(
            "cd,de,ce->c", self._means, self._precision, self._means
        )
        return projections - offsets[None, :] + self._log_prior[None, :]

    def predict(self, X: np.ndarray) -> np.ndarray:
        check_fitted(self)
        scores = self.decision_scores(X)
        return self._classes[np.argmax(scores, axis=1)]
