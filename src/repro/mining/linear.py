"""Linear classifier baselines: averaged perceptron and Pegasos linear SVM.

The companion paper [1] observes that linear classifiers, too, are
(approximately) invariant to rotation perturbation — a rotation of the
inputs simply rotates the learned weight vector.  These two small learners
back the ablation benchmarks that check the invariance claim beyond the
two headline classifiers.
"""

from __future__ import annotations

import numpy as np

from .base import Classifier, check_fitted, validate_Xy
from .multiclass import OneVsOneClassifier

__all__ = ["AveragedPerceptron", "PegasosSVM", "LinearSVMClassifier"]


class AveragedPerceptron(Classifier):
    """Binary averaged perceptron.

    Averaging the weight trajectory is the classic variance-reduction fix
    that makes the perceptron usable as a baseline learner.

    Parameters
    ----------
    epochs:
        Full passes over the (shuffled) training data.
    seed:
        Shuffle seed.
    """

    def __init__(self, epochs: int = 10, seed: int = 0) -> None:
        if epochs < 1:
            raise ValueError("epochs must be >= 1")
        self.epochs = epochs
        self.seed = seed

    def fit(self, X: np.ndarray, y: np.ndarray) -> "AveragedPerceptron":
        X, y = validate_Xy(X, y)
        self._classes = np.unique(y)
        if len(self._classes) == 1:
            self._constant = self._classes[0]
            self._fitted = True
            return self
        if len(self._classes) != 2:
            raise ValueError("AveragedPerceptron is binary; wrap in OneVsOne")
        self._constant = None
        signs = np.where(y == self._classes[1], 1.0, -1.0)

        rng = np.random.default_rng(self.seed)
        n, d = X.shape
        w = np.zeros(d)
        b = 0.0
        w_sum = np.zeros(d)
        b_sum = 0.0
        updates = 0
        for _ in range(self.epochs):
            for i in rng.permutation(n):
                if signs[i] * (X[i] @ w + b) <= 0:
                    w = w + signs[i] * X[i]
                    b = b + signs[i]
                    updates += 1
                w_sum += w
                b_sum += b
        total = self.epochs * n
        self._w = w_sum / total
        self._b = b_sum / total
        self.n_updates_ = updates
        self._fitted = True
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Signed distance proxy; positive favours ``classes_[1]``."""
        check_fitted(self)
        X, _ = validate_Xy(X)
        if self._constant is not None:
            return np.zeros(X.shape[0])
        return X @ self._w + self._b

    def predict(self, X: np.ndarray) -> np.ndarray:
        check_fitted(self)
        X, _ = validate_Xy(X)
        if self._constant is not None:
            return np.full(X.shape[0], self._constant)
        return np.where(
            self.decision_function(X) >= 0, self._classes[1], self._classes[0]
        )


class PegasosSVM(Classifier):
    """Binary linear SVM trained with the Pegasos subgradient method.

    Parameters
    ----------
    lam:
        Regularization strength (Pegasos' lambda).
    epochs:
        Passes over the data; the step count is ``epochs * n``.
    seed:
        Sampling seed.
    """

    def __init__(self, lam: float = 1e-3, epochs: int = 20, seed: int = 0) -> None:
        if lam <= 0:
            raise ValueError("lam must be positive")
        self.lam = lam
        self.epochs = epochs
        self.seed = seed

    def fit(self, X: np.ndarray, y: np.ndarray) -> "PegasosSVM":
        X, y = validate_Xy(X, y)
        self._classes = np.unique(y)
        if len(self._classes) == 1:
            self._constant = self._classes[0]
            self._fitted = True
            return self
        if len(self._classes) != 2:
            raise ValueError("PegasosSVM is binary; wrap in OneVsOne")
        self._constant = None
        signs = np.where(y == self._classes[1], 1.0, -1.0)

        rng = np.random.default_rng(self.seed)
        n, d = X.shape
        # Append a bias feature so the update rule stays the textbook one.
        Xb = np.hstack([X, np.ones((n, 1))])
        w = np.zeros(d + 1)
        t = 0
        for _ in range(self.epochs):
            for i in rng.permutation(n):
                t += 1
                eta = 1.0 / (self.lam * t)
                margin = signs[i] * (Xb[i] @ w)
                w = (1 - eta * self.lam) * w
                if margin < 1:
                    w = w + eta * signs[i] * Xb[i]
        self._w = w[:-1]
        self._b = float(w[-1])
        self._fitted = True
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Signed margin; positive favours ``classes_[1]``."""
        check_fitted(self)
        X, _ = validate_Xy(X)
        if self._constant is not None:
            return np.zeros(X.shape[0])
        return X @ self._w + self._b

    def predict(self, X: np.ndarray) -> np.ndarray:
        check_fitted(self)
        X, _ = validate_Xy(X)
        if self._constant is not None:
            return np.full(X.shape[0], self._constant)
        return np.where(
            self.decision_function(X) >= 0, self._classes[1], self._classes[0]
        )


def LinearSVMClassifier(
    lam: float = 1e-3, epochs: int = 20, seed: int = 0
) -> Classifier:
    """Multiclass-ready linear SVM (Pegasos wrapped in one-vs-one)."""
    return OneVsOneClassifier(
        lambda pair_seed: PegasosSVM(lam=lam, epochs=epochs, seed=pair_seed),
        seed=seed,
    )
