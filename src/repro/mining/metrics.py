"""Evaluation metrics and resampling helpers.

Figures 5 and 6 report *accuracy deviation*: the difference between a
classifier's accuracy when trained/tested on SAP-perturbed data and the
"standard accuracy" obtained on the original unperturbed data.  This module
provides the accuracy machinery plus stratified resampling used to make
those comparisons stable.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Tuple

import numpy as np

from .base import Classifier

__all__ = [
    "accuracy_score",
    "confusion_matrix",
    "stratified_kfold_indices",
    "cross_val_accuracy",
    "holdout_accuracy",
    "accuracy_deviation",
]


def accuracy_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of exact label matches."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape:
        raise ValueError(
            f"shape mismatch: y_true {y_true.shape} vs y_pred {y_pred.shape}"
        )
    if y_true.size == 0:
        raise ValueError("cannot score an empty label set")
    return float(np.mean(y_true == y_pred))


def confusion_matrix(y_true: np.ndarray, y_pred: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Return ``(labels, matrix)`` with ``matrix[i, j]`` counting
    true-label ``labels[i]`` predicted as ``labels[j]``."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    labels = np.unique(np.concatenate([y_true, y_pred]))
    index = {label: i for i, label in enumerate(labels)}
    matrix = np.zeros((len(labels), len(labels)), dtype=int)
    for t, p in zip(y_true, y_pred):
        matrix[index[t], index[p]] += 1
    return labels, matrix


def stratified_kfold_indices(
    y: np.ndarray, n_splits: int, rng: np.random.Generator
) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    """Yield ``(train_idx, test_idx)`` pairs with per-class balance.

    Classes with fewer members than ``n_splits`` simply appear in fewer
    folds' test sides — they are never dropped from training.
    """
    if n_splits < 2:
        raise ValueError("n_splits must be >= 2")
    y = np.asarray(y)
    folds: List[List[int]] = [[] for _ in range(n_splits)]
    for label in np.unique(y):
        members = np.flatnonzero(y == label)
        members = members[rng.permutation(len(members))]
        for i, row in enumerate(members):
            folds[i % n_splits].append(int(row))
    all_rows = np.arange(len(y))
    for fold in folds:
        test_idx = np.array(sorted(fold), dtype=int)
        train_idx = np.setdiff1d(all_rows, test_idx)
        yield train_idx, test_idx


def cross_val_accuracy(
    make_classifier: Callable[[], Classifier],
    X: np.ndarray,
    y: np.ndarray,
    n_splits: int = 5,
    seed: int = 0,
) -> float:
    """Mean stratified k-fold accuracy of a freshly built classifier."""
    rng = np.random.default_rng(seed)
    scores = []
    for train_idx, test_idx in stratified_kfold_indices(y, n_splits, rng):
        model = make_classifier()
        model.fit(X[train_idx], y[train_idx])
        scores.append(accuracy_score(y[test_idx], model.predict(X[test_idx])))
    return float(np.mean(scores))


def holdout_accuracy(
    make_classifier: Callable[[], Classifier],
    X_train: np.ndarray,
    y_train: np.ndarray,
    X_test: np.ndarray,
    y_test: np.ndarray,
) -> float:
    """Accuracy of a freshly built classifier on an explicit holdout."""
    model = make_classifier()
    model.fit(X_train, y_train)
    return accuracy_score(y_test, model.predict(X_test))


def accuracy_deviation(perturbed_accuracy: float, standard_accuracy: float) -> float:
    """Deviation in *percentage points*, as plotted in Figures 5 and 6.

    Negative values mean the perturbed pipeline lost accuracy relative to
    training on the original data.
    """
    return 100.0 * (perturbed_accuracy - standard_accuracy)
