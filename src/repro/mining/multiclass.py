"""One-vs-one reduction from multiclass to binary classification.

Several of the paper's datasets (Iris, Wine, Ecoli, Shuttle) are
multiclass; the SVM in :mod:`repro.mining.svm` is inherently binary.  The
standard one-vs-one reduction trains one binary learner per unordered class
pair and predicts by majority vote, with ties broken by aggregate decision
margin when the underlying learners expose one.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

import numpy as np

from .base import Classifier, check_fitted, validate_Xy

__all__ = ["OneVsOneClassifier"]


class OneVsOneClassifier(Classifier):
    """Train one binary classifier per class pair; vote at prediction time.

    Parameters
    ----------
    factory:
        Callable ``factory(seed) -> Classifier`` producing a fresh binary
        learner.  Each pair gets a distinct derived seed so per-pair
        randomization (e.g. SMO tie-breaks) is decorrelated.
    seed:
        Base seed for deriving per-pair seeds.
    """

    def __init__(self, factory: Callable[[int], Classifier], seed: int = 0) -> None:
        self.factory = factory
        self.seed = seed
        self._models: Dict[Tuple[int, int], Classifier] = {}

    def fit(self, X: np.ndarray, y: np.ndarray) -> "OneVsOneClassifier":
        X, y = validate_Xy(X, y)
        self._classes = np.unique(y)
        self._models = {}
        pair_index = 0
        for a in range(len(self._classes)):
            for b in range(a + 1, len(self._classes)):
                mask = (y == self._classes[a]) | (y == self._classes[b])
                model = self.factory(self.seed + pair_index)
                model.fit(X[mask], y[mask])
                self._models[(a, b)] = model
                pair_index += 1
        self._fitted = True
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        check_fitted(self)
        X, _ = validate_Xy(X)
        n_classes = len(self._classes)
        if n_classes == 1:
            return np.full(X.shape[0], self._classes[0])
        votes = np.zeros((X.shape[0], n_classes))
        margins = np.zeros((X.shape[0], n_classes))
        for (a, b), model in self._models.items():
            predictions = model.predict(X)
            votes[:, a] += predictions == self._classes[a]
            votes[:, b] += predictions == self._classes[b]
            if hasattr(model, "decision_function"):
                margin = model.decision_function(X)
                # Positive margin favours the learner's classes_[1]; map the
                # signed value back onto the global class indices.
                hi = model.classes_[-1]
                if hi == self._classes[b]:
                    margins[:, b] += margin
                    margins[:, a] -= margin
                else:
                    margins[:, a] += margin
                    margins[:, b] -= margin
        # Majority vote; break vote ties by aggregate margin, then by label
        # order (deterministic).
        best = np.argmax(votes + 1e-9 * np.tanh(margins), axis=1)
        return self._classes[best]

    @property
    def n_pairs_(self) -> int:
        """Number of trained pairwise models."""
        check_fitted(self)
        return len(self._models)

    def pair_models(self) -> List[Tuple[Tuple[int, int], Classifier]]:
        """The trained ``((class_index_a, class_index_b), model)`` pairs."""
        check_fitted(self)
        return list(self._models.items())
